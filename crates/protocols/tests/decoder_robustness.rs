//! Decoder-robustness sweep: every byte string an adversary can put on
//! the wire must decode to `Ok` or a typed [`CodecError`] — never a
//! panic, however it was built. The sweep harvests the real frames of
//! one lossless session per §III protocol and then attacks the
//! decoders three ways:
//!
//! * **truncation** — every prefix of every real frame;
//! * **mutation** — every byte of every real frame flipped (including
//!   the envelope protocol tag and each message enum's leading tag,
//!   driven through all 256 values);
//! * **random bytes** — seeded arbitrary buffers fed to every
//!   [`FromBytes`] impl in the wire vocabulary.
//!
//! Panic-freedom is the test: any `unwrap`/slice-index escape in a
//! decoder aborts the suite (`scripts/check_no_panics.sh` bounds the
//! panic sites that exist; this sweep demonstrates the decoding paths
//! reach none of them).

use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{
    run_wire_attestation, AttestationReport, AttestationRequest, AttestationVerifier,
    AttestingDevice, TimingModel,
};
use neuropuls_protocols::eke::{run_wire_exchange, EkeConfirm, EkeHello, EkeParty, EkeReply};
use neuropuls_protocols::mutual_auth::{
    run_wire_session, AuthRequest, Device, DeviceAuth, Verifier, VerifierConfirm,
};
use neuropuls_protocols::secure_nn::{run_wire_inference, NetworkOwner, SecureAccelerator};
use neuropuls_protocols::transport::Channel;
use neuropuls_protocols::wire::{
    decode_payload, AttestationMsg, EkeMsg, Envelope, MutualAuthMsg, NnChunk, SecureNnMsg,
    SessionConfig,
};
use neuropuls_puf::bits::Response;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::rng::{Rng, RngCore, SeedableRng};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::trace::Tracer;

/// Runs one lossless session of every §III protocol and returns every
/// frame that crossed the wire, in admission order.
fn harvest_frames() -> Vec<Vec<u8>> {
    let cfg = SessionConfig::default();
    let mut frames: Vec<Vec<u8>> = Vec::new();

    let mut channel = Channel::new();
    let (mut device, provisioned) = Device::provision(
        PhotonicPuf::reference(DieId(0xDEC0), 1),
        vec![0x5A; 1024],
        b"robustness-provision",
    )
    .expect("provisions");
    let mut verifier = Verifier::new(provisioned, b"robustness-verifier");
    let report = run_wire_session(
        &mut channel,
        &mut device,
        &mut verifier,
        1,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "{:?}", report.result);
    frames.extend(channel.transcript().iter().map(|(_, f)| f.clone()));

    let mut channel = Channel::new();
    let memory: Vec<u8> = (0..1024).map(|i| (i * 41 % 251) as u8).collect();
    let timing = TimingModel::photonic();
    let mut att_device = AttestingDevice::new(
        PhotonicPuf::reference(DieId(0xDEC1), 1),
        memory.clone(),
        timing,
    );
    let mut att_verifier =
        AttestationVerifier::new(PhotonicPuf::reference(DieId(0xDEC1), 2), memory, timing);
    let report = run_wire_attestation(
        &mut channel,
        &mut att_device,
        &mut att_verifier,
        2,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "{:?}", report.result);
    frames.extend(channel.transcript().iter().map(|(_, f)| f.clone()));

    let mut channel = Channel::new();
    let crp = Response::from_u64(0xDEC0DE, 63);
    let mut initiator = EkeParty::new(&crp, b"robustness-eke-init");
    let mut responder = EkeParty::new(&crp, b"robustness-eke-resp");
    let report = run_wire_exchange(
        &mut channel,
        &mut initiator,
        &mut responder,
        3,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "{:?}", report.result);
    frames.extend(channel.transcript().iter().map(|(_, f)| f.clone()));

    let mut channel = Channel::new();
    let key = [0xD3; 32];
    let mut owner = NetworkOwner::new(key, b"robustness-owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
    let net = NetworkConfig::mlp(&[4, 4], |_, o, i| if o == i { 1.0 } else { 0.0 });
    let network_blob = owner.cipher_network(&net);
    let input_blob = owner.cipher_input(&[1.0, -0.5, 0.25, 0.0]);
    let (report, output) = run_wire_inference(
        &mut channel,
        &mut accel,
        network_blob,
        input_blob,
        4,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "{:?}", report.result);
    assert!(output.is_some());
    frames.extend(channel.transcript().iter().map(|(_, f)| f.clone()));

    assert!(
        frames.len() >= 12,
        "harvest must cover all four protocol scripts, got {} frames",
        frames.len()
    );
    frames
}

/// Feeds `bytes` to every `FromBytes` impl in the wire vocabulary and
/// returns how many decoders accepted it. Each call must return — a
/// panic anywhere aborts the test.
fn poke_every_decoder(bytes: &[u8]) -> usize {
    let mut accepted = 0;
    macro_rules! poke {
        ($ty:ty) => {
            if decode_payload::<$ty>(bytes).is_ok() {
                accepted += 1;
            }
        };
    }
    if Envelope::from_bytes(bytes).is_ok() {
        accepted += 1;
    }
    poke!(AuthRequest);
    poke!(DeviceAuth);
    poke!(VerifierConfirm);
    poke!(AttestationRequest);
    poke!(AttestationReport);
    poke!(EkeHello);
    poke!(EkeReply);
    poke!(EkeConfirm);
    poke!(NnChunk);
    poke!(MutualAuthMsg);
    poke!(AttestationMsg);
    poke!(EkeMsg);
    poke!(SecureNnMsg);
    accepted
}

/// Opens a decoded envelope's payload with its protocol's message-enum
/// decoder; the result (either way) must be typed, not a panic.
fn open_by_protocol(envelope: &Envelope) -> bool {
    use neuropuls_protocols::wire::ProtocolId;
    match envelope.protocol {
        ProtocolId::MutualAuth => envelope.open::<MutualAuthMsg>().is_ok(),
        ProtocolId::Attestation => envelope.open::<AttestationMsg>().is_ok(),
        ProtocolId::Eke => envelope.open::<EkeMsg>().is_ok(),
        ProtocolId::SecureNn => envelope.open::<SecureNnMsg>().is_ok(),
    }
}

#[test]
fn every_valid_frame_decodes_and_reopens() {
    for frame in harvest_frames() {
        let envelope = Envelope::from_bytes(&frame).expect("harvested frame decodes");
        assert!(
            open_by_protocol(&envelope),
            "harvested payload must open as its protocol's message"
        );
    }
}

#[test]
fn truncated_frames_decode_to_typed_errors() {
    for frame in harvest_frames() {
        for len in 0..frame.len() {
            let prefix = &frame[..len];
            // A strict prefix of a frame can never satisfy the
            // exact-consumption rule, so the envelope decoder must
            // reject every one — with an error, not a panic.
            assert!(
                Envelope::from_bytes(prefix).is_err(),
                "strict prefix of length {len} decoded as a whole envelope"
            );
            poke_every_decoder(prefix);
        }
        // Truncating inside the payload while keeping the envelope
        // framing intact must surface when the message is opened.
        if let Ok(mut envelope) = Envelope::from_bytes(&frame) {
            while envelope.payload.pop().is_some() {
                open_by_protocol(&envelope);
            }
        }
    }
}

#[test]
fn single_byte_mutations_decode_to_typed_errors() {
    for frame in harvest_frames() {
        for pos in 0..frame.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut mutated = frame.clone();
                mutated[pos] ^= mask;
                if let Ok(envelope) = Envelope::from_bytes(&mutated) {
                    // Routing metadata may survive mutation; the
                    // payload decoder must still stay typed.
                    open_by_protocol(&envelope);
                }
                poke_every_decoder(&mutated);
            }
        }
    }
}

#[test]
fn message_tag_sweep_never_panics() {
    for frame in harvest_frames() {
        let Ok(envelope) = Envelope::from_bytes(&frame) else {
            continue;
        };
        // Drive the message enums' leading tag byte through all 256
        // values; unknown tags must be rejected as typed errors.
        for tag in 0u8..=255 {
            let mut payload = envelope.payload.clone();
            if payload.is_empty() {
                break;
            }
            payload[0] = tag;
            poke_every_decoder(&payload);
        }
        // The envelope's own protocol-id byte (offset 6, after the
        // 4-byte magic and u16 version), likewise: at most four of the
        // 256 values may decode, and reopening stays typed.
        let mut tag_accepts = 0;
        for tag in 0u8..=255 {
            let mut mutated = frame.clone();
            mutated[6] = tag;
            if let Ok(envelope) = Envelope::from_bytes(&mutated) {
                tag_accepts += 1;
                open_by_protocol(&envelope);
            }
        }
        assert_eq!(tag_accepts, 4, "exactly the four known protocol ids");
    }
}

#[test]
fn cross_spliced_frames_decode_to_typed_errors() {
    // Corpus splicing: cut two *different* harvested frames at seeded
    // random points and join the head of one to the tail of the other.
    // Splices keep long runs of valid structure — plausible magic,
    // version and length prefixes followed by another message's body —
    // which is exactly the shape that slips past prefix checks and
    // into a decoder's field-by-field path. Every splice must come
    // back from every decoder as Ok or a typed error, never a panic.
    let frames = harvest_frames();
    let mut rng = StdRng::seed_from_u64(0x000D_EC0D_E517);
    let mut accepted_total = 0usize;
    for _ in 0..2048 {
        let a = &frames[rng.gen_range(0..frames.len())];
        let b = &frames[rng.gen_range(0..frames.len())];
        let cut_a = rng.gen_range(0..=a.len());
        let cut_b = rng.gen_range(0..=b.len());
        let mut spliced = Vec::with_capacity(cut_a + b.len() - cut_b);
        spliced.extend_from_slice(&a[..cut_a]);
        spliced.extend_from_slice(&b[cut_b..]);
        accepted_total += poke_every_decoder(&spliced);
        if let Ok(envelope) = Envelope::from_bytes(&spliced) {
            // A splice that survives the framing layer (e.g. head and
            // tail cut at the same offset of same-length frames) must
            // still reopen as a typed result.
            open_by_protocol(&envelope);
        }
    }
    // Some splices reassemble into whole valid frames (both cuts at a
    // frame boundary, or same-shape frames); a flood of accepts would
    // mean the decoders are not length-checking the joined halves.
    assert!(
        accepted_total < 2048,
        "{accepted_total} spliced buffers decoded as valid messages"
    );
}

#[test]
fn seeded_random_bytes_never_panic_any_decoder() {
    let mut rng = StdRng::seed_from_u64(0x000D_EC0D_EB07);
    let mut accepted_total = 0usize;
    for _ in 0..2048 {
        let len = rng.gen_range(0..512);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        accepted_total += poke_every_decoder(&bytes);
        if let Ok(envelope) = Envelope::from_bytes(&bytes) {
            open_by_protocol(&envelope);
        }
    }
    // Random buffers essentially never satisfy a structured decoder's
    // exact-consumption rule; if many did, the decoders aren't
    // validating.
    assert!(
        accepted_total < 64,
        "{accepted_total} random buffers decoded as valid messages"
    );
}
