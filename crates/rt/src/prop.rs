//! Miniature property-based testing harness with seeded shrinking.
//!
//! A drop-in replacement for the subset of `proptest` the workspace
//! uses: the [`proptest!`](crate::proptest) macro, `any::<T>()`, range
//! strategies, `prop::collection::vec`, `prop::array::uniform*`, and
//! the `prop_assert*` macros. Every run is deterministic: the case
//! stream is seeded from a hash of the test name (override with the
//! `NEUROPULS_PROPTEST_SEED` environment variable), and failures are
//! greedily shrunk before being reported, together with the seed needed
//! to replay them.

use crate::rng::{Rng, SeedableRng, StdRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
    /// Upper bound on greedy shrink iterations after a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 4096,
        }
    }
}

/// A failed property check, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating (and shrinking) values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value from the seeded stream.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "simpler" candidates for a failing value; the
    /// runner keeps any candidate that still fails. An empty vector
    /// stops shrinking along this axis.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Full-domain strategy for a primitive, returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Clone + Debug + Sized {
    /// Draws a value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;

    /// Simpler candidates for shrinking (default: none).
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// The strategy generating any value of `T`, like `proptest::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_candidates()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }

            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                if v > 0 {
                    out.push(v - 1);
                }
                out.retain(|c| *c != v);
                out.dedup();
                out
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }

            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - v.signum()];
                out.retain(|c| *c != v);
                out.dedup();
                out
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }

    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Full-domain floats are rarely useful for physics properties;
        // mirror proptest's default of "reasonable" finite values.
        rng.gen_range(-1.0e9..1.0e9)
    }

    fn shrink_candidates(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 {
            return Vec::new();
        }
        vec![0.0, v / 2.0]
    }
}

// Half-open integer ranges as strategies, e.g. `0usize..600`.
macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == self.start {
                    return Vec::new();
                }
                let mid = self.start + (v - self.start) / 2;
                let mut out = vec![self.start, mid];
                out.push(v - 1);
                out.retain(|c| *c != v && self.contains(c));
                out.dedup();
                out
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == self.start {
                    return Vec::new();
                }
                let mid = self.start + (v - self.start) / 2.0;
                let mut out = vec![self.start, mid];
                out.retain(|c| *c != v && self.contains(c));
                out
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with an element strategy and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let min = self.len.start;
            // Structural shrinks first: shorter vectors are simpler.
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half != min && half != value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then element-wise shrinks, one position at a time.
            for i in 0..value.len().min(16) {
                for cand in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform32` and friends).
pub mod array {
    use super::*;

    /// Strategy producing `[S::Value; N]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    /// Array of `N` values, each drawn from `element`.
    pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
        UniformArray { element }
    }

    /// 12-element array strategy (nonces).
    pub fn uniform12<S: Strategy>(element: S) -> UniformArray<S, 12> {
        uniform(element)
    }

    /// 32-element array strategy (keys, digests).
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        uniform(element)
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            for i in 0..N.min(16) {
                if let Some(cand) = self.element.shrink(&value[i]).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

// Tuple strategies so the proptest! macro can bundle multiple
// arguments into one Strategy.
macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// FNV-1a, used to derive a per-test base seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn base_seed(name: &str) -> u64 {
    match std::env::var("NEUROPULS_PROPTEST_SEED") {
        Ok(s) => {
            s.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| fnv1a(s.as_bytes()))
                ^ fnv1a(name.as_bytes())
        }
        Err(_) => fnv1a(name.as_bytes()),
    }
}

fn run_one<V, F>(test: &mut F, value: V) -> Result<(), TestCaseError>
where
    F: FnMut(V) -> Result<(), TestCaseError>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("test body panicked");
            Err(TestCaseError::fail(format!("panic: {msg}")))
        }
    }
}

/// Executes a property: `config.cases` random cases from `strategy`,
/// greedy seeded shrinking on the first failure, then a panic carrying
/// the minimal failing input and the replay seed.
///
/// # Panics
///
/// Panics when the property fails (that is the test-failure signal).
pub fn run_proptest<S, F>(config: ProptestConfig, name: &str, strategy: S, mut test: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = base_seed(name);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        if let Err(err) = run_one(&mut test, value.clone()) {
            let (minimal, minimal_err, steps) =
                shrink_failure(&strategy, &mut test, value, err, config.max_shrink_iters);
            panic!(
                "proptest '{name}' failed at case {case} (seed {seed:#018x}, \
                 shrunk {steps} steps)\n  minimal failing input: {minimal:?}\n  cause: {}",
                minimal_err.message()
            );
        }
    }
}

fn shrink_failure<S, F>(
    strategy: &S,
    test: &mut F,
    mut value: S::Value,
    mut err: TestCaseError,
    max_iters: u32,
) -> (S::Value, TestCaseError, u32)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0;
    let mut budget = max_iters;
    'outer: while budget > 0 {
        for candidate in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(cand_err) = run_one(test, candidate.clone()) {
                value = candidate;
                err = cand_err;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, err, steps)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`prop::run_proptest`](run_proptest).
///
/// Accepts the same shape as `proptest::proptest!`, including a leading
/// `#![proptest_config(..)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::prop::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strat,)+);
            $crate::prop::run_proptest(
                __config,
                stringify!($name),
                __strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::<(), $crate::prop::TestCaseError>::Ok(())
                },
            );
        }
    )*};
}

/// Property-scoped assertion: fails the current case (triggering
/// shrinking) instead of aborting the whole test run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property tests; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion for property tests; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::prop::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = collection::vec(any::<u8>(), 1..32);
        let mut a = StdRng::seed_from_u64(base_seed("x"));
        let mut b = StdRng::seed_from_u64(base_seed("x"));
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn shrinking_reaches_a_minimal_vector() {
        // Property "no vector of length >= 3" must shrink to exactly
        // length 3 — the smallest counterexample the structure allows.
        let strat = collection::vec(any::<u8>(), 0..64);
        let mut test = |v: Vec<u8>| {
            if v.len() >= 3 {
                Err(TestCaseError::fail("too long"))
            } else {
                Ok(())
            }
        };
        let mut rng = StdRng::seed_from_u64(1);
        let failing = loop {
            let v = strat.generate(&mut rng);
            if v.len() >= 3 {
                break v;
            }
        };
        let (minimal, _, _) = shrink_failure(
            &strat,
            &mut test,
            failing,
            TestCaseError::fail("seed"),
            4096,
        );
        assert_eq!(minimal.len(), 3, "shrink stopped early: {minimal:?}");
        assert!(
            minimal.iter().all(|&b| b == 0),
            "elements not minimized: {minimal:?}"
        );
    }

    #[test]
    fn shrinking_minimizes_integers() {
        let strat = (0u64..1_000_000,);
        let mut test = |(v,): (u64,)| {
            if v >= 17 {
                Err(TestCaseError::fail("big"))
            } else {
                Ok(())
            }
        };
        let (minimal, _, _) = shrink_failure(
            &strat,
            &mut test,
            (999_999,),
            TestCaseError::fail("seed"),
            4096,
        );
        assert_eq!(minimal.0, 17);
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        run_proptest(
            ProptestConfig::with_cases(10),
            "counting",
            (0u8..255,),
            |(_,)| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_property_panics_with_minimal_input() {
        run_proptest(
            ProptestConfig::with_cases(64),
            "must_fail",
            (0u32..1000,),
            |(v,)| {
                if v >= 5 {
                    Err(TestCaseError::fail("v too big"))
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn panics_in_body_are_shrunk_like_failures() {
        let strat = (0u32..100,);
        let mut test = |(v,): (u32,)| {
            assert!(v < 10, "boom {v}");
            Ok(())
        };
        let (minimal, err, _) =
            shrink_failure(&strat, &mut test, (99,), TestCaseError::fail("seed"), 4096);
        assert_eq!(minimal.0, 10);
        assert!(err.message().contains("panic"), "{}", err.message());
    }
}
