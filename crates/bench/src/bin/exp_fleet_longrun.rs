//! Regenerates the persistent keep-alive fleet study (E23) and writes
//! `BENCH_exp_fleet_longrun.json`.
//!
//! Run standalone, this binary also *enforces* the persistent-session
//! targets: at 1024 mostly-idle devices the keep-alive driver must
//! make >= 5x fewer `Session::step` calls than a dense
//! every-resident-slot-every-tick loop, and a 10% lossy control link
//! must lose zero re-attestations (every fired epoch completes).
//! stdout carries only the deterministic tables (CI diffs 1 thread
//! against 8); the per-cell step and epoch counts land in the bench
//! JSON.

use neuropuls_bench::experiments::fleet_longrun::{acceptance, run, saving, CellSummary};
use neuropuls_bench::Scale;

fn write_report(summary: &[CellSummary]) {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"neuropuls-bench-v1\",\n");
    json.push_str("  \"target\": \"exp_fleet_longrun\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, &(devices, loss, steps, dense, fired, completed, _, _, _)) in summary.iter().enumerate()
    {
        let pct = loss * 100.0;
        json.push_str(&format!(
            "    {{\"name\": \"keepalive_steps/devices={devices},loss={pct:.0}%\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {steps}.0, \
             \"p50_ns\": {steps}.0, \"p99_ns\": {steps}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": {steps}}},\n"
        ));
        json.push_str(&format!(
            "    {{\"name\": \"dense_equiv_steps/devices={devices},loss={pct:.0}%\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {dense}.0, \
             \"p50_ns\": {dense}.0, \"p99_ns\": {dense}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": {dense}}},\n"
        ));
        json.push_str(&format!(
            "    {{\"name\": \"epochs_completed/devices={devices},loss={pct:.0}%\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {completed}.0, \
             \"p50_ns\": {completed}.0, \"p99_ns\": {fired}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": {completed}}}{}\n",
            if i + 1 == summary.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_exp_fleet_longrun.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_exp_fleet_longrun.json"),
        Err(e) => eprintln!("could not write BENCH_exp_fleet_longrun.json: {e}"),
    }
}

fn main() {
    let (out, summary) = run(Scale::from_args());
    print!("{out}");
    write_report(&summary);

    let (step_saving, no_lost) = acceptance(&summary).expect("sweep carries the 1024-device cell");
    assert!(
        step_saving >= 5.0,
        "keep-alive driver must make >= 5x fewer step calls than the dense loop at 1024 \
         mostly-idle devices, measured {step_saving:.2}x"
    );
    assert!(
        no_lost,
        "10% lossy control link must lose zero re-attestations at 1024 devices"
    );
    for row in &summary {
        assert!(
            row.8 && row.6 == 0,
            "re-attestation conservation violated in cell {row:?}"
        );
    }
    eprintln!(
        "persistent-session targets met: {step_saving:.2}x fewer step calls and zero lost \
         re-attestations at 1024 devices"
    );
    eprintln!(
        "(every sweep cell conserved its epochs; best saving {:.2}x)",
        summary.iter().map(saving).fold(0.0, f64::max)
    );
}
