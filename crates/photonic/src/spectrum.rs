//! Spectral characterization: wavelength scans of rings and meshes.
//!
//! Real microring-array PUFs (the \[12\] demonstrator) are characterized
//! by sweeping the laser wavelength and recording per-port transmission
//! spectra — the resonance comb is the die's optical fingerprint. The
//! simulation is single-carrier, but a wavelength offset Δλ maps to an
//! extra round-trip phase per ring, Δφ = 2π·n_g·L·Δλ/λ², so a scan is a
//! sweep of that added phase.

use crate::circuit::ScramblerMesh;
use crate::complex::Complex64;
use crate::environment::Environment;
use crate::ring::Microring;

/// Group index used for the Δλ → Δφ mapping (silicon wire waveguide).
pub const GROUP_INDEX: f64 = 4.2;
/// Carrier wavelength in nm.
pub const LAMBDA_NM: f64 = 1550.0;

/// Extra round-trip phase of a ring of `circumference_um` at wavelength
/// offset `delta_lambda_nm` from the carrier.
pub fn detuning_phase(circumference_um: f64, delta_lambda_nm: f64) -> f64 {
    // Δφ = -2π n_g L Δλ / λ²  (sign: longer λ → smaller phase).
    -2.0 * std::f64::consts::PI * GROUP_INDEX * (circumference_um * 1000.0) * delta_lambda_nm
        / (LAMBDA_NM * LAMBDA_NM)
}

/// Free spectral range of a ring in nm.
pub fn free_spectral_range_nm(circumference_um: f64) -> f64 {
    LAMBDA_NM * LAMBDA_NM / (GROUP_INDEX * circumference_um * 1000.0)
}

/// One point of a transmission spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumPoint {
    /// Wavelength offset from the carrier, nm.
    pub delta_lambda_nm: f64,
    /// Power transmission (linear).
    pub transmission: f64,
}

/// Scans a single all-pass ring over `[-span/2, span/2]` nm with `steps`
/// points, at CW steady state.
pub fn ring_spectrum(
    ring: &Microring,
    span_nm: f64,
    steps: usize,
    env: &Environment,
) -> Vec<SpectrumPoint> {
    (0..steps)
        .map(|i| {
            let delta = -span_nm / 2.0 + span_nm * i as f64 / (steps - 1).max(1) as f64;
            let mut shifted = ring.clone();
            shifted.phi += detuning_phase(ring.circumference_um, delta);
            SpectrumPoint {
                delta_lambda_nm: delta,
                transmission: shifted.cw_response(env).norm_sqr(),
            }
        })
        .collect()
}

/// Per-port CW spectra of a whole mesh: for each wavelength offset the
/// mesh is driven with a long CW burst and per-port steady-state power
/// is recorded. Ring detunings scale with their individual
/// circumferences (larger rings shift faster), which is what decorrelates
/// the ports' combs.
pub fn mesh_spectra(
    mesh: &ScramblerMesh,
    span_nm: f64,
    steps: usize,
    env: &Environment,
) -> Vec<Vec<SpectrumPoint>> {
    let ports = mesh.ports();
    let mut spectra = vec![Vec::with_capacity(steps); ports];
    for i in 0..steps {
        let delta = -span_nm / 2.0 + span_nm * i as f64 / (steps - 1).max(1) as f64;
        let mut detuned = mesh.clone_detuned(delta);
        // Drive to steady state and read instantaneous port powers.
        detuned.reset();
        let mut last = vec![Complex64::ZERO; ports];
        for _ in 0..256 {
            last = detuned.step(Complex64::ONE, env);
        }
        for (port, field) in last.iter().enumerate() {
            spectra[port].push(SpectrumPoint {
                delta_lambda_nm: delta,
                transmission: field.norm_sqr(),
            });
        }
    }
    spectra
}

/// Fingerprint distance between two port spectra: normalized RMS
/// difference of transmission (0 = identical combs).
pub fn spectrum_distance(a: &[SpectrumPoint], b: &[SpectrumPoint]) -> f64 {
    assert_eq!(a.len(), b.len(), "spectrum lengths differ");
    let n = a.len().max(1) as f64;
    (a.iter()
        .zip(b)
        .map(|(x, y)| (x.transmission - y.transmission).powi(2))
        .sum::<f64>()
        / n)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::MeshSpec;
    use crate::process::{DieId, DieSampler, ProcessVariation};

    fn test_ring() -> Microring {
        let mut die = DieSampler::new(DieId(5), ProcessVariation::typical_soi());
        Microring::sampled(0.1, 0.8, 60.0, &mut die)
    }

    #[test]
    fn ring_spectrum_shows_a_resonance_dip() {
        let ring = test_ring();
        let fsr = free_spectral_range_nm(60.0);
        let spectrum = ring_spectrum(&ring, fsr, 400, &Environment::nominal());
        let min = spectrum
            .iter()
            .map(|p| p.transmission)
            .fold(f64::INFINITY, f64::min);
        let max = spectrum
            .iter()
            .map(|p| p.transmission)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 0.9, "off-resonance transmission {max}");
        assert!(min < 0.6, "no resonance dip found (min {min})");
    }

    #[test]
    fn spectrum_repeats_at_the_fsr() {
        let ring = test_ring();
        let fsr = free_spectral_range_nm(60.0);
        let env = Environment::nominal();
        let a = ring_spectrum(&ring, 0.01, 3, &env);
        // Shift the whole scan by one FSR: same transmission.
        let mut shifted = ring.clone();
        shifted.phi += detuning_phase(60.0, fsr);
        let b = ring_spectrum(&shifted, 0.01, 3, &env);
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.transmission - y.transmission).abs() < 1e-6,
                "FSR periodicity violated"
            );
        }
    }

    #[test]
    fn fsr_magnitude_is_realistic() {
        // 60 µm ring, n_g 4.2 → FSR ≈ 9.5 nm.
        let fsr = free_spectral_range_nm(60.0);
        assert!((8.0..11.0).contains(&fsr), "FSR {fsr} nm");
    }

    #[test]
    fn mesh_spectra_fingerprint_distinguishes_dies() {
        let build = |die: u64| {
            let mut sampler = DieSampler::new(DieId(die), ProcessVariation::typical_soi());
            ScramblerMesh::build(MeshSpec::reference(), &mut sampler)
        };
        let env = Environment::nominal();
        let a = mesh_spectra(&build(1), 2.0, 16, &env);
        let b = mesh_spectra(&build(1), 2.0, 16, &env);
        let c = mesh_spectra(&build(2), 2.0, 16, &env);
        let same = spectrum_distance(&a[0], &b[0]);
        let different = spectrum_distance(&a[0], &c[0]);
        assert!(same < 1e-12, "same die spectra differ: {same}");
        assert!(different > 1e-3, "dies indistinguishable: {different}");
    }
}
