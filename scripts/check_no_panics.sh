#!/usr/bin/env bash
# No-panic gate for the protocol and system layers: a frame off the wire
# or a firmware register poke must never be able to bring the process
# down, so production paths in crates/protocols and crates/system return
# ProtocolError / BusFault instead of panicking.
#
# The gate scans every non-test line (each file is truncated at its
# `#[cfg(test)]` marker) for `.unwrap()`, `.expect(`, `panic!(` and
# `unreachable!(`. A site is allowed only when a justification appears at
# most MAX_DISTANCE lines above it:
#   - a `// invariant:` comment proving the failure is statically
#     impossible, or
#   - a `# Panics` doc section (rustdoc's contract for deliberate panics
#     on caller misuse, e.g. constructor config validation).
# Anything else fails the gate: either convert the site to a Result or
# document the invariant that makes it infallible.
#
# Usage: scripts/check_no_panics.sh

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

MAX_DISTANCE=10
status=0

for f in crates/protocols/src/*.rs crates/system/src/*.rs; do
    hits=$(awk -v max="$MAX_DISTANCE" '
        /#\[cfg\(test\)\]/ { exit }
        /invariant:|# Panics/ { guard = NR }
        /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(/ {
            if (NR - guard > max) print FILENAME ":" NR ": " $0
        }' "$f")
    if [[ -n "$hits" ]]; then
        echo "$hits"
        status=1
    fi
done

if [[ "$status" -ne 0 ]]; then
    echo "check_no_panics: FAIL: unjustified panic sites in non-test protocol/system code" >&2
    echo "check_no_panics: convert to ProtocolError/BusFault, or precede with an '// invariant:' comment or '# Panics' doc section" >&2
    exit 1
fi

echo "check_no_panics: OK: no unjustified panic sites in crates/protocols or crates/system"
