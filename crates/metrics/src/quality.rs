//! The canonical PUF quality metrics of §II: uniqueness, reliability,
//! uniformity and bit-aliasing.
//!
//! Conventions follow the standard PUF literature (Maiti et al.):
//!
//! * **Uniqueness** — mean inter-device fractional Hamming distance;
//!   ideal 0.5 ("fractional Hamming distance close to 50 % … inter-device",
//!   §II-A).
//! * **Reliability** — `1 − mean intra-device FHD` between a golden
//!   response and noisy re-readings; ideal 1.0.
//! * **Uniformity** — fraction of ones in a response; ideal 0.5.
//! * **Bit-aliasing** — per-bit-position Shannon entropy across devices
//!   (the y-axis of Fig. 3); 1.0 means the bit is unbiased across the
//!   population, 0.0 means every device agrees (fully aliased).

use crate::bitstats::{fractional_hamming_distance, hamming_weight, mean_std, pairwise_fhd};

/// Summary of a metric: mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Number of observations.
    pub count: usize,
}

impl MetricSummary {
    fn from_values(values: &[f64]) -> Self {
        let (mean, std) = mean_std(values);
        MetricSummary {
            mean,
            std,
            count: values.len(),
        }
    }
}

/// Uniqueness: mean pairwise inter-device FHD over one response per
/// device.
///
/// # Panics
///
/// Panics if fewer than two devices are given or lengths differ.
pub fn uniqueness(device_responses: &[Vec<u8>]) -> MetricSummary {
    assert!(
        device_responses.len() >= 2,
        "uniqueness needs at least two devices"
    );
    MetricSummary::from_values(&pairwise_fhd(device_responses))
}

/// Reliability of one device: `1 − mean FHD(golden, reread)`.
///
/// # Panics
///
/// Panics if no re-readings are given.
pub fn reliability(golden: &[u8], rereads: &[Vec<u8>]) -> MetricSummary {
    assert!(!rereads.is_empty(), "reliability needs re-readings");
    let distances: Vec<f64> = rereads
        .iter()
        .map(|r| 1.0 - fractional_hamming_distance(golden, r))
        .collect();
    MetricSummary::from_values(&distances)
}

/// Per-bit flip probability of one device estimated from re-readings
/// (used by the filtering method to rank CRPs).
pub fn bit_error_rates(golden: &[u8], rereads: &[Vec<u8>]) -> Vec<f64> {
    let mut flips = vec![0usize; golden.len()];
    for reread in rereads {
        for (i, (&g, &r)) in golden.iter().zip(reread.iter()).enumerate() {
            if (g ^ r) & 1 == 1 {
                flips[i] += 1;
            }
        }
    }
    flips
        .into_iter()
        .map(|f| f as f64 / rereads.len() as f64)
        .collect()
}

/// Uniformity: fraction of ones per response, summarized over devices.
pub fn uniformity(device_responses: &[Vec<u8>]) -> MetricSummary {
    let values: Vec<f64> = device_responses
        .iter()
        .map(|r| hamming_weight(r) as f64 / r.len() as f64)
        .collect();
    MetricSummary::from_values(&values)
}

/// Bit-aliasing as per-bit Shannon entropy across the device population
/// (Fig. 3's y-axis). Returns one entropy value per bit position.
///
/// # Panics
///
/// Panics if fewer than two devices are given or lengths differ.
pub fn bit_aliasing_entropy(device_responses: &[Vec<u8>]) -> Vec<f64> {
    assert!(
        device_responses.len() >= 2,
        "bit aliasing needs at least two devices"
    );
    let bits = device_responses[0].len();
    let devices = device_responses.len() as f64;
    (0..bits)
        .map(|pos| {
            let ones = device_responses
                .iter()
                .map(|r| {
                    assert_eq!(r.len(), bits, "response lengths differ");
                    (r[pos] & 1) as usize
                })
                .sum::<usize>() as f64;
            binary_entropy(ones / devices)
        })
        .collect()
}

/// The binary (Shannon) entropy function H(p) in bits.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Full quality report for a population of devices with re-readings.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Inter-device uniqueness (ideal mean 0.5).
    pub uniqueness: MetricSummary,
    /// Intra-device reliability (ideal mean 1.0).
    pub reliability: MetricSummary,
    /// Response uniformity (ideal mean 0.5).
    pub uniformity: MetricSummary,
    /// Mean per-bit aliasing entropy (ideal 1.0).
    pub mean_bit_aliasing: f64,
    /// Minimum per-bit aliasing entropy (worst aliased bit).
    pub min_bit_aliasing: f64,
}

/// Computes the complete §II metric set.
///
/// `device_rereads[d]` holds the noisy re-readings of device `d`, whose
/// golden response is `device_golden[d]`.
///
/// # Panics
///
/// Panics if inputs are inconsistent (see the individual metrics).
pub fn quality_report(device_golden: &[Vec<u8>], device_rereads: &[Vec<Vec<u8>>]) -> QualityReport {
    assert_eq!(
        device_golden.len(),
        device_rereads.len(),
        "golden/reread device counts differ"
    );
    let reliabilities: Vec<f64> = device_golden
        .iter()
        .zip(device_rereads.iter())
        .map(|(golden, rereads)| reliability(golden, rereads).mean)
        .collect();
    let (rel_mean, rel_std) = mean_std(&reliabilities);
    let aliasing = bit_aliasing_entropy(device_golden);
    let mean_alias = aliasing.iter().sum::<f64>() / aliasing.len() as f64;
    let min_alias = aliasing.iter().cloned().fold(f64::INFINITY, f64::min);
    QualityReport {
        uniqueness: uniqueness(device_golden),
        reliability: MetricSummary {
            mean: rel_mean,
            std: rel_std,
            count: reliabilities.len(),
        },
        uniformity: uniformity(device_golden),
        mean_bit_aliasing: mean_alias,
        min_bit_aliasing: min_alias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniqueness_of_complementary_devices_is_one() {
        let summary = uniqueness(&[vec![0; 8], vec![1; 8]]);
        assert_eq!(summary.mean, 1.0);
        assert_eq!(summary.count, 1);
    }

    #[test]
    fn uniqueness_of_identical_devices_is_zero() {
        let summary = uniqueness(&[vec![1, 0, 1], vec![1, 0, 1], vec![1, 0, 1]]);
        assert_eq!(summary.mean, 0.0);
        assert_eq!(summary.count, 3);
    }

    #[test]
    fn reliability_perfect_rereads() {
        let golden = vec![1, 0, 1, 1];
        let summary = reliability(&golden, &[golden.clone(), golden.clone()]);
        assert_eq!(summary.mean, 1.0);
    }

    #[test]
    fn reliability_counts_flips() {
        let golden = vec![1, 0, 1, 1];
        let noisy = vec![0, 0, 1, 1]; // 1 of 4 flipped
        let summary = reliability(&golden, &[noisy]);
        assert!((summary.mean - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bit_error_rates_localize_flips() {
        let golden = vec![0, 0, 0];
        let rereads = vec![vec![1, 0, 0], vec![1, 0, 0], vec![0, 0, 1], vec![0, 0, 0]];
        let rates = bit_error_rates(&golden, &rereads);
        assert_eq!(rates, vec![0.5, 0.0, 0.25]);
    }

    #[test]
    fn uniformity_balanced() {
        let summary = uniformity(&[vec![0, 1, 0, 1], vec![1, 1, 0, 0]]);
        assert_eq!(summary.mean, 0.5);
    }

    #[test]
    fn aliasing_entropy_extremes() {
        // Bit 0: all devices agree (entropy 0). Bit 1: half/half
        // (entropy 1).
        let devices = vec![vec![1, 0], vec![1, 1], vec![1, 0], vec![1, 1]];
        let entropy = bit_aliasing_entropy(&devices);
        assert_eq!(entropy[0], 0.0);
        assert_eq!(entropy[1], 1.0);
    }

    #[test]
    fn binary_entropy_properties() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert_eq!(binary_entropy(0.5), 1.0);
        assert!((binary_entropy(0.25) - binary_entropy(0.75)).abs() < 1e-12);
    }

    #[test]
    fn full_report_on_ideal_population() {
        // Four devices with balanced, independent-looking responses.
        let golden = vec![
            vec![0, 1, 0, 1, 1, 0, 0, 1],
            vec![1, 0, 1, 0, 1, 0, 1, 0],
            vec![1, 1, 0, 0, 0, 1, 1, 0],
            vec![0, 0, 1, 1, 0, 1, 0, 1],
        ];
        let rereads: Vec<Vec<Vec<u8>>> = golden.iter().map(|g| vec![g.clone(); 3]).collect();
        let report = quality_report(&golden, &rereads);
        assert_eq!(report.reliability.mean, 1.0);
        assert!((report.uniformity.mean - 0.5).abs() < 1e-12);
        assert!(report.uniqueness.mean > 0.4);
        assert_eq!(report.mean_bit_aliasing, 1.0);
    }
}
