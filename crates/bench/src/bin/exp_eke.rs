//! Regenerates the EKE campaign (E12).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::eke::run(scale);
    print!("{out}");
}
