// Indexed loops over parallel arrays are the clearest form for the
// numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! Neuromorphic photonic accelerator model — the asset the NEUROPULS
//! security layers protect.
//!
//! Three pieces:
//!
//! * [`config::NetworkConfig`] — the confidential network description
//!   with its binary wire codec (the payload of `load_network` in
//!   Table I of the paper);
//! * [`engine::PhotonicEngine`] — an MZI-crossbar inference engine with
//!   PCM weight quantization, analog MAC noise, drift, and
//!   energy/latency accounting;
//! * [`reservoir::Reservoir`] — an echo-state-style photonic reservoir
//!   layer (the workload class the platform paper \[11\] targets).
//!
//! # Example
//!
//! ```
//! use neuropuls_accel::config::NetworkConfig;
//! use neuropuls_accel::engine::PhotonicEngine;
//!
//! # fn main() -> Result<(), neuropuls_accel::engine::EngineError> {
//! let network = NetworkConfig::mlp(&[4, 2], |_, o, i| if o == i { 1.0 } else { 0.0 });
//! let mut engine = PhotonicEngine::reference(7);
//! engine.load(network)?;
//! let output = engine.infer(&[1.0, 0.0, 0.0, 0.0])?;
//! assert_eq!(output.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod engine;
pub mod reservoir;

pub use config::{Activation, LayerConfig, NetworkConfig};
pub use engine::{AnalogModel, EngineError, EngineStats, PhotonicEngine};
pub use reservoir::Reservoir;
