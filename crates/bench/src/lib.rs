//! Experiment harness: one module per table/figure of the paper's
//! evaluation plan (see `DESIGN.md` and `EXPERIMENTS.md` at the
//! workspace root).
//!
//! Each experiment exposes `run(scale)` returning the formatted
//! rows/series the paper's figure or table would show; the `exp_*`
//! binaries print them, and the integration tests assert the qualitative
//! shape at [`Scale::Smoke`].

pub mod experiments;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale: used by tests and CI.
    Smoke,
    /// The full configuration reported in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Picks between the smoke and full values.
    pub fn pick<T>(self, smoke: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Full => full,
        }
    }

    /// Parses the scale from argv (binaries default to Full, `--smoke`
    /// forces the small configuration).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Full
        }
    }
}

/// A rendered experiment result: a title plus pre-formatted lines.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// Experiment identifier, e.g. "E1 (Fig. 3)".
    pub title: String,
    /// Table lines.
    pub lines: Vec<String>,
}

impl Rendered {
    /// Creates a result.
    pub fn new(title: impl Into<String>) -> Self {
        Rendered {
            title: title.into(),
            lines: Vec::new(),
        }
    }

    /// Appends a line.
    pub fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }
}

impl std::fmt::Display for Rendered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "==== {} ====", self.title)?;
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}
