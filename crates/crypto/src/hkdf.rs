//! HKDF-SHA-256 (RFC 5869).
//!
//! Key derivation for session keys: the EKE-based AKA of §IV derives
//! encryption and MAC keys from the agreed Diffie–Hellman secret, and the
//! fuzzy extractor uses HKDF as its strong randomness extractor.

use crate::hmac::{HmacSha256, TAG_LEN};
use crate::CryptoError;

/// Extracts a pseudorandom key from input keying material `ikm` using
/// `salt` (may be empty).
#[must_use]
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; TAG_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// Expands `prk` into `out.len()` bytes of output keying material bound to
/// `info`.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if more than `255 * 32` bytes are
/// requested (the RFC 5869 limit).
pub fn expand(prk: &[u8; TAG_LEN], info: &[u8], out: &mut [u8]) -> Result<(), CryptoError> {
    const MAX: usize = 255 * TAG_LEN;
    if out.len() > MAX {
        return Err(CryptoError::InvalidLength {
            expected: MAX,
            actual: out.len(),
        });
    }
    let mut previous: &[u8] = &[];
    let mut block = [0u8; TAG_LEN];
    let mut counter = 1u8;
    for chunk in out.chunks_mut(TAG_LEN) {
        let mut mac = HmacSha256::new(prk);
        mac.update(previous);
        mac.update(info);
        mac.update(&[counter]);
        block = mac.finalize();
        chunk.copy_from_slice(&block[..chunk.len()]);
        previous = &block;
        counter = counter.wrapping_add(1);
    }
    // Silence "assigned but never read" on the last iteration.
    let _ = block;
    Ok(())
}

/// One-call extract-then-expand.
///
/// # Errors
///
/// See [`expand`].
///
/// # Example
///
/// ```
/// use neuropuls_crypto::hkdf;
///
/// # fn main() -> Result<(), neuropuls_crypto::CryptoError> {
/// let mut session_key = [0u8; 32];
/// hkdf::derive(b"salt", b"shared-secret", b"neuropuls/session", &mut session_key)?;
/// # Ok(())
/// # }
/// ```
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) -> Result<(), CryptoError> {
    let prk = extract(salt, ikm);
    expand(&prk, info, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: zero-length salt and info.
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm).unwrap();
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn rejects_oversized_request() {
        let prk = [0u8; 32];
        let mut okm = vec![0u8; 255 * 32 + 1];
        assert!(expand(&prk, b"", &mut okm).is_err());
    }

    #[test]
    fn different_info_different_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        derive(b"s", b"ikm", b"enc", &mut a).unwrap();
        derive(b"s", b"ikm", b"mac", &mut b).unwrap();
        assert_ne!(a, b);
    }
}
