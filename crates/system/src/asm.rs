//! A small two-pass RV32IM assembler.
//!
//! Lets the firmware for the system-level experiments live as readable
//! assembly strings instead of opaque hex. Supports the full RV32IM
//! instruction set of the core, labels, `.word` data, comments (`#` or
//! `;`), ABI register names and the common pseudo-instructions
//! (`li`, `la`, `mv`, `nop`, `j`, `ret`, `beqz`, `bnez`, `rdcycle`,
//! `rdinstret`).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

fn register(token: &str, line: usize) -> Result<u32, AsmError> {
    const ABI: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    let token = token.trim();
    if let Some(rest) = token.strip_prefix('x') {
        if let Ok(n) = rest.parse::<u32>() {
            if n < 32 {
                return Ok(n);
            }
        }
    }
    if token == "fp" {
        return Ok(8);
    }
    if let Some(idx) = ABI.iter().position(|&name| name == token) {
        return Ok(idx as u32);
    }
    err(line, format!("unknown register '{token}'"))
}

fn immediate(token: &str, line: usize) -> Result<i64, AsmError> {
    let token = token.trim();
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b") {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad immediate '{token}'")),
    }
}

#[derive(Debug, Clone)]
enum Item {
    Instruction { line: usize, text: String },
    Word(u32),
}

fn instruction_words(mnemonic: &str, operands: &str) -> usize {
    match mnemonic {
        // li/la may need lui+addi.
        "li" | "la" => {
            if let Some((_, imm)) = operands.split_once(',') {
                if let Ok(v) = immediate(imm.trim(), 0) {
                    if (-2048..2048).contains(&v) {
                        return 1;
                    }
                }
            }
            2
        }
        _ => 1,
    }
}

/// Assembles `source` into little-endian machine code for a program
/// loaded at `base`.
///
/// # Errors
///
/// Returns the first [`AsmError`] with its source line.
pub fn assemble(source: &str, base: u32) -> Result<Vec<u8>, AsmError> {
    // Pass 1: collect items and label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();
    let mut address = base;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw_line;
        if let Some(pos) = text.find(['#', ';']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(pos) = text.find(':') {
            let (label, rest) = text.split_at(pos);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(label.to_string(), address).is_some() {
                return err(line_no, format!("duplicate label '{label}'"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(value) = text.strip_prefix(".word") {
            let v = immediate(value.trim(), line_no)?;
            items.push(Item::Word(v as u32));
            address += 4;
            continue;
        }
        let mnemonic = text.split_whitespace().next().unwrap_or("");
        let operands = text[mnemonic.len()..].trim();
        address += 4 * instruction_words(mnemonic, operands) as u32;
        items.push(Item::Instruction {
            line: line_no,
            text: text.to_string(),
        });
    }

    // Pass 2: encode.
    let mut out: Vec<u8> = Vec::new();
    let mut pc = base;
    for item in items {
        match item {
            Item::Word(w) => {
                out.extend_from_slice(&w.to_le_bytes());
                pc += 4;
            }
            Item::Instruction { line, text } => {
                let words = encode(&text, pc, &labels, line)?;
                for w in words {
                    out.extend_from_slice(&w.to_le_bytes());
                    pc += 4;
                }
            }
        }
    }
    Ok(out)
}

fn split_operands(operands: &str) -> Vec<String> {
    operands
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn mem_operand(token: &str, line: usize) -> Result<(i64, u32), AsmError> {
    // "imm(reg)"
    let open = token.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected imm(reg), got '{token}'"),
    })?;
    let close = token.find(')').ok_or_else(|| AsmError {
        line,
        message: format!("missing ')' in '{token}'"),
    })?;
    let imm_text = token[..open].trim();
    let imm = if imm_text.is_empty() {
        0
    } else {
        immediate(imm_text, line)?
    };
    let reg = register(&token[open + 1..close], line)?;
    Ok((imm, reg))
}

fn label_or_imm(token: &str, labels: &HashMap<String, u32>, line: usize) -> Result<i64, AsmError> {
    if let Some(&addr) = labels.get(token.trim()) {
        return Ok(addr as i64);
    }
    immediate(token, line)
}

fn check_range(value: i64, bits: u32, line: usize, what: &str) -> Result<(), AsmError> {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    if value < lo || value > hi {
        return err(line, format!("{what} {value} out of {bits}-bit range"));
    }
    Ok(())
}

fn enc_r(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_i(imm: i64, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn enc_s(imm: i64, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5) & 0x7F) << 25
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(imm: i64, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12) & 1) << 31
        | ((imm >> 5) & 0x3F) << 25
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 1) << 7
        | 0x63
}

fn enc_j(imm: i64, rd: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20) & 1) << 31
        | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 1) << 20
        | ((imm >> 12) & 0xFF) << 12
        | (rd << 7)
        | 0x6F
}

fn li_words(rd: u32, value: i64) -> Vec<u32> {
    if (-2048..2048).contains(&value) {
        return vec![enc_i(value, 0, 0b000, rd, 0x13)];
    }
    let value = value as u32;
    // lui takes the upper 20 bits, addi adds the (sign-extended) low 12.
    let low = (value & 0xFFF) as i32;
    let low = if low >= 0x800 { low - 0x1000 } else { low };
    let high = value.wrapping_sub(low as u32);
    vec![
        (high & 0xFFFF_F000) | (rd << 7) | 0x37,
        enc_i(low as i64, rd, 0b000, rd, 0x13),
    ]
}

fn encode(
    text: &str,
    pc: u32,
    labels: &HashMap<String, u32>,
    line: usize,
) -> Result<Vec<u32>, AsmError> {
    let mnemonic = text.split_whitespace().next().unwrap_or("");
    let operands = split_operands(text[mnemonic.len()..].trim());
    let op = |i: usize| -> Result<&str, AsmError> {
        operands.get(i).map(String::as_str).ok_or_else(|| AsmError {
            line,
            message: format!("missing operand {i} for {mnemonic}"),
        })
    };

    let word = match mnemonic {
        "lui" | "auipc" => {
            let rd = register(op(0)?, line)?;
            let imm = immediate(op(1)?, line)?;
            if !(0..1 << 20).contains(&imm) {
                return err(line, "lui/auipc immediate out of 20-bit range");
            }
            let opcode = if mnemonic == "lui" { 0x37 } else { 0x17 };
            ((imm as u32) << 12) | (rd << 7) | opcode
        }
        "jal" => {
            let (rd, target) = if operands.len() == 1 {
                (1, label_or_imm(op(0)?, labels, line)?)
            } else {
                (register(op(0)?, line)?, label_or_imm(op(1)?, labels, line)?)
            };
            let offset = target - pc as i64;
            check_range(offset, 21, line, "jal offset")?;
            enc_j(offset, rd)
        }
        "j" => {
            let target = label_or_imm(op(0)?, labels, line)?;
            let offset = target - pc as i64;
            check_range(offset, 21, line, "j offset")?;
            enc_j(offset, 0)
        }
        "jalr" => {
            if operands.len() == 1 {
                enc_i(0, register(op(0)?, line)?, 0b000, 1, 0x67)
            } else {
                let rd = register(op(0)?, line)?;
                let rs1 = register(op(1)?, line)?;
                let imm = immediate(op(2)?, line)?;
                check_range(imm, 12, line, "jalr offset")?;
                enc_i(imm, rs1, 0b000, rd, 0x67)
            }
        }
        "ret" => enc_i(0, 1, 0b000, 0, 0x67),
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let rs1 = register(op(0)?, line)?;
            let rs2 = register(op(1)?, line)?;
            let target = label_or_imm(op(2)?, labels, line)?;
            let offset = target - pc as i64;
            check_range(offset, 13, line, "branch offset")?;
            let funct3 = match mnemonic {
                "beq" => 0b000,
                "bne" => 0b001,
                "blt" => 0b100,
                "bge" => 0b101,
                "bltu" => 0b110,
                _ => 0b111,
            };
            enc_b(offset, rs2, rs1, funct3)
        }
        "beqz" | "bnez" => {
            let rs1 = register(op(0)?, line)?;
            let target = label_or_imm(op(1)?, labels, line)?;
            let offset = target - pc as i64;
            check_range(offset, 13, line, "branch offset")?;
            enc_b(
                offset,
                0,
                rs1,
                if mnemonic == "beqz" { 0b000 } else { 0b001 },
            )
        }
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            let rd = register(op(0)?, line)?;
            let (imm, rs1) = mem_operand(op(1)?, line)?;
            check_range(imm, 12, line, "load offset")?;
            let funct3 = match mnemonic {
                "lb" => 0b000,
                "lh" => 0b001,
                "lw" => 0b010,
                "lbu" => 0b100,
                _ => 0b101,
            };
            enc_i(imm, rs1, funct3, rd, 0x03)
        }
        "sb" | "sh" | "sw" => {
            let rs2 = register(op(0)?, line)?;
            let (imm, rs1) = mem_operand(op(1)?, line)?;
            check_range(imm, 12, line, "store offset")?;
            let funct3 = match mnemonic {
                "sb" => 0b000,
                "sh" => 0b001,
                _ => 0b010,
            };
            enc_s(imm, rs2, rs1, funct3, 0x23)
        }
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" => {
            let rd = register(op(0)?, line)?;
            let rs1 = register(op(1)?, line)?;
            let imm = immediate(op(2)?, line)?;
            check_range(imm, 12, line, "immediate")?;
            let funct3 = match mnemonic {
                "addi" => 0b000,
                "slti" => 0b010,
                "sltiu" => 0b011,
                "xori" => 0b100,
                "ori" => 0b110,
                _ => 0b111,
            };
            enc_i(imm, rs1, funct3, rd, 0x13)
        }
        "slli" | "srli" | "srai" => {
            let rd = register(op(0)?, line)?;
            let rs1 = register(op(1)?, line)?;
            let shamt = immediate(op(2)?, line)?;
            if !(0..32).contains(&shamt) {
                return err(line, "shift amount out of range");
            }
            let (funct3, funct7) = match mnemonic {
                "slli" => (0b001, 0x00),
                "srli" => (0b101, 0x00),
                _ => (0b101, 0x20),
            };
            enc_r(funct7, shamt as u32, rs1, funct3, rd, 0x13)
        }
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" => {
            let rd = register(op(0)?, line)?;
            let rs1 = register(op(1)?, line)?;
            let rs2 = register(op(2)?, line)?;
            let (funct3, funct7) = match mnemonic {
                "add" => (0b000, 0x00),
                "sub" => (0b000, 0x20),
                "sll" => (0b001, 0x00),
                "slt" => (0b010, 0x00),
                "sltu" => (0b011, 0x00),
                "xor" => (0b100, 0x00),
                "srl" => (0b101, 0x00),
                "sra" => (0b101, 0x20),
                "or" => (0b110, 0x00),
                _ => (0b111, 0x00),
            };
            enc_r(funct7, rs2, rs1, funct3, rd, 0x33)
        }
        "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            let rd = register(op(0)?, line)?;
            let rs1 = register(op(1)?, line)?;
            let rs2 = register(op(2)?, line)?;
            let funct3 = match mnemonic {
                "mul" => 0b000,
                "mulh" => 0b001,
                "mulhsu" => 0b010,
                "mulhu" => 0b011,
                "div" => 0b100,
                "divu" => 0b101,
                "rem" => 0b110,
                _ => 0b111,
            };
            enc_r(0x01, rs2, rs1, funct3, rd, 0x33)
        }
        "li" | "la" => {
            let rd = register(op(0)?, line)?;
            let value = label_or_imm(op(1)?, labels, line)?;
            let words = li_words(rd, value);
            // Pad to the size pass 1 reserved: la always reserves per
            // the immediate-form heuristic, which matches li_words for
            // plain immediates; labels always take the 2-word form in
            // pass 1 (instruction_words can't resolve them), so pad.
            let reserved = instruction_words(mnemonic, &format!("{}, {}", op(0)?, op(1)?));
            let mut words = words;
            while words.len() < reserved {
                words.push(enc_i(0, 0, 0b000, 0, 0x13)); // nop
            }
            return Ok(words);
        }
        "mv" => {
            let rd = register(op(0)?, line)?;
            let rs1 = register(op(1)?, line)?;
            enc_i(0, rs1, 0b000, rd, 0x13)
        }
        "nop" => enc_i(0, 0, 0b000, 0, 0x13),
        "ecall" => 0x0000_0073,
        "ebreak" => 0x0010_0073,
        "fence" => 0x0000_000F,
        "rdcycle" => {
            let rd = register(op(0)?, line)?;
            (0xC00 << 20) | (0b010 << 12) | (rd << 7) | 0x73
        }
        "rdinstret" => {
            let rd = register(op(0)?, line)?;
            (0xC02 << 20) | (0b010 << 12) | (rd << 7) | 0x73
        }
        other => return err(line, format!("unknown mnemonic '{other}'")),
    };
    Ok(vec![word])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_words() {
        // addi x1, x0, 5 → 0x00500093
        let code = assemble("addi x1, x0, 5", 0).unwrap();
        assert_eq!(code, 0x0050_0093u32.to_le_bytes());
        // add x3, x1, x2 → 0x002081B3
        let code = assemble("add x3, x1, x2", 0).unwrap();
        assert_eq!(code, 0x0020_81B3u32.to_le_bytes());
        // sw x2, 8(x1) → 0x0020A423
        let code = assemble("sw x2, 8(x1)", 0).unwrap();
        assert_eq!(code, 0x0020_A423u32.to_le_bytes());
    }

    #[test]
    fn abi_names_resolve() {
        let a = assemble("addi a0, zero, 1", 0).unwrap();
        let b = assemble("addi x10, x0, 1", 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn labels_and_branches() {
        let code = assemble(
            "start: addi x1, x0, 1
             beq x1, x1, start",
            0x100,
        )
        .unwrap();
        assert_eq!(code.len(), 8);
        // Branch offset must be -4.
        let word = u32::from_le_bytes([code[4], code[5], code[6], code[7]]);
        assert_eq!(word & 0x7F, 0x63);
    }

    #[test]
    fn li_small_and_large() {
        assert_eq!(assemble("li x1, 100", 0).unwrap().len(), 4);
        assert_eq!(assemble("li x1, 0x12345678", 0).unwrap().len(), 8);
        assert_eq!(assemble("li x1, -1", 0).unwrap().len(), 4);
    }

    #[test]
    fn la_reserves_two_words_for_labels() {
        let code = assemble(
            "la x1, data
             ecall
             data: .word 0xCAFEBABE",
            0x8000_0000,
        )
        .unwrap();
        // la = 2 words, ecall = 1, .word = 1.
        assert_eq!(code.len(), 16);
        let data = u32::from_le_bytes([code[12], code[13], code[14], code[15]]);
        assert_eq!(data, 0xCAFE_BABE);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble(
            "# header comment
             addi x1, x0, 1 ; trailing comment

             ecall",
            0,
        )
        .unwrap();
        assert_eq!(code.len(), 8);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("addi x1, x0, 1\nbogus x1", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = assemble("a: nop\na: nop", 0).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn out_of_range_immediates_rejected() {
        assert!(assemble("addi x1, x0, 5000", 0).is_err());
        assert!(assemble("slli x1, x1, 33", 0).is_err());
    }

    #[test]
    fn branch_range_enforced() {
        // A branch target ~1 MiB away exceeds the 13-bit range.
        let mut source = String::from("start: nop\n");
        for _ in 0..3000 {
            source.push_str("nop\n");
        }
        source.push_str("beq x0, x0, start\n");
        assert!(assemble(&source, 0).is_err());
    }
}
