//! Regenerates the §II-A quality table (E2).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::puf_quality::run(scale);
    print!("{out}");
}
