//! Regenerates Table I (E3).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::table1::run(scale);
    print!("{out}");
}
