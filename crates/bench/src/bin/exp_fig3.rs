//! Regenerates Fig. 3 (E1/E1b).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (ro, _) = experiments::fig3::run_ro(scale);
    print!("{ro}");
    let (ppuf, _) = experiments::fig3::run_photonic(scale);
    print!("{ppuf}");
}
