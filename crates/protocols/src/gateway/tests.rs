use super::*;
use crate::attestation::{
    AttestationVerifier, AttestingDevice, TimingModel, WireAttestationVerifier, WireAttestingDevice,
};
use crate::eke::{EkeParty, WireEkeInitiator, WireEkeResponder};
use crate::error::ProtocolError;
use crate::mutual_auth::{Device, Verifier, WireDevice, WireVerifier};
use crate::secure_nn::{NetworkOwner, SecureAccelerator, WireNnClient, WireNnServer};
use crate::transport::{Channel, FaultRates, FaultyChannel, Side};
use crate::wire::{Envelope, ProtocolId, SessionConfig};
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Response;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::trace::{Registry, Tracer};
use std::collections::BTreeMap;

/// A bundle of endpoint state backing one four-protocol session mix.
struct Endpoints {
    auth: Vec<(Device<PhotonicPuf>, Verifier)>,
    attest: Vec<(AttestingDevice, AttestationVerifier)>,
    eke: Vec<(EkeParty, EkeParty)>,
    nn: Vec<(SecureAccelerator, Vec<u8>, Vec<u8>)>,
}

fn endpoints(n: usize, seed: u8) -> Endpoints {
    let auth = (0..n)
        .map(|i| {
            let puf = PhotonicPuf::reference(DieId(40 + i as u64), 1);
            let (device, provisioned) =
                Device::provision(puf, vec![seed; 512], format!("prov-{seed}-{i}").as_bytes())
                    .expect("provisions");
            let verifier = Verifier::new(provisioned, format!("verif-{seed}-{i}").as_bytes());
            (device, verifier)
        })
        .collect();
    let attest = (0..n)
        .map(|i| {
            let memory: Vec<u8> = (0..1024).map(|j| (j * 13 + i * 7) as u8).collect();
            let timing = TimingModel::photonic();
            let device = AttestingDevice::new(
                PhotonicPuf::reference(DieId(60 + i as u64), 1),
                memory.clone(),
                timing,
            );
            let verifier = AttestationVerifier::new(
                PhotonicPuf::reference(DieId(60 + i as u64), 2),
                memory,
                timing,
            );
            (device, verifier)
        })
        .collect();
    let eke = (0..n)
        .map(|i| {
            let crp = Response::from_u64(0x1234_5678 ^ (i as u64), 63);
            let initiator = EkeParty::new(&crp, format!("eke-i-{seed}-{i}").as_bytes());
            let responder = EkeParty::new(&crp, format!("eke-r-{seed}-{i}").as_bytes());
            (initiator, responder)
        })
        .collect();
    let nn = (0..n)
        .map(|i| {
            let key = [seed ^ i as u8; 32];
            let mut owner = NetworkOwner::new(key, format!("own-{seed}-{i}").as_bytes());
            let accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
            let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
            let network = owner.cipher_network(&config);
            let input = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
            (accel, network, input)
        })
        .collect();
    Endpoints {
        auth,
        attest,
        eke,
        nn,
    }
}

/// Builds one SessionPair per endpoint, all four protocols, with
/// distinct session ids.
fn pairs<'x>(ep: &'x mut Endpoints, cfg: SessionConfig) -> Vec<SessionPair<'x>> {
    let mut out: Vec<SessionPair<'x>> = Vec::new();
    let mut sid = 1u64;
    for (device, verifier) in &mut ep.auth {
        out.push(SessionPair::new(
            ProtocolId::MutualAuth,
            sid,
            Box::new(WireVerifier::new(verifier, sid, cfg)),
            Box::new(WireDevice::new(device, cfg)),
        ));
        sid += 1;
    }
    for (device, verifier) in &mut ep.attest {
        out.push(SessionPair::new(
            ProtocolId::Attestation,
            sid,
            Box::new(WireAttestationVerifier::new(verifier, sid, cfg)),
            Box::new(WireAttestingDevice::new(device, cfg)),
        ));
        sid += 1;
    }
    for (initiator, responder) in &mut ep.eke {
        out.push(SessionPair::new(
            ProtocolId::Eke,
            sid,
            Box::new(WireEkeInitiator::new(initiator, sid, cfg)),
            Box::new(WireEkeResponder::new(responder, cfg)),
        ));
        sid += 1;
    }
    for (accel, network, input) in &mut ep.nn {
        out.push(SessionPair::new(
            ProtocolId::SecureNn,
            sid,
            Box::new(WireNnClient::new(sid, network.clone(), input.clone(), cfg)),
            Box::new(WireNnServer::new(accel, cfg)),
        ));
        sid += 1;
    }
    out
}

/// A mutual-auth [`KeepAlive`] controller for persistent-driver
/// tests: owned endpoints move into each epoch's wire sessions and
/// come back at close, with consecutive-failure eviction and a
/// per-device epoch quota after which the slot leaves voluntarily.
struct AuthFleet {
    endpoints: Vec<Option<(Device<PhotonicPuf>, Verifier)>>,
    period: u64,
    epochs_per_device: u32,
    max_fails: u32,
    cfg: SessionConfig,
    last_fire: Vec<u64>,
    fails: Vec<u32>,
    /// Per-slot epoch log: (succeeded, active ticks, retransmits).
    records: Vec<Vec<(bool, u32, u32)>>,
}

impl AuthFleet {
    fn new(
        auth: Vec<(Device<PhotonicPuf>, Verifier)>,
        period: u64,
        epochs_per_device: u32,
        max_fails: u32,
    ) -> Self {
        let n = auth.len();
        Self {
            endpoints: auth.into_iter().map(Some).collect(),
            period,
            epochs_per_device,
            max_fails,
            cfg: SessionConfig::default(),
            last_fire: vec![0; n],
            fails: vec![0; n],
            records: vec![Vec::new(); n],
        }
    }
}

impl KeepAlive for AuthFleet {
    type Initiator = WireVerifier<Verifier>;
    type Responder = WireDevice<Device<PhotonicPuf>, PhotonicPuf>;

    fn on_fire(
        &mut self,
        slot: usize,
        epoch: u32,
        now: u64,
    ) -> Option<EpochSession<Self::Initiator, Self::Responder>> {
        if epoch >= self.epochs_per_device {
            return None;
        }
        let (device, verifier) = self.endpoints[slot].take()?;
        self.last_fire[slot] = now;
        let sid = u64::from(epoch) * self.endpoints.len() as u64 + slot as u64 + 1;
        Some(EpochSession {
            protocol: ProtocolId::MutualAuth,
            id: sid,
            initiator: WireVerifier::new(verifier, sid, self.cfg),
            responder: WireDevice::new(device, self.cfg),
        })
    }

    fn on_close(
        &mut self,
        slot: usize,
        _epoch: u32,
        _now: u64,
        outcome: &EpochOutcome,
        initiator: Self::Initiator,
        responder: Self::Responder,
    ) -> SlotVerdict {
        let verifier = initiator.into_inner();
        let device = responder.into_inner();
        self.endpoints[slot] = Some((device, verifier));
        let ticks = match &outcome.result {
            Ok(t) => *t,
            Err(_) => 0,
        };
        self.records[slot].push((outcome.succeeded(), ticks, outcome.retransmits));
        if outcome.succeeded() {
            self.fails[slot] = 0;
        } else {
            self.fails[slot] += 1;
            if self.fails[slot] >= self.max_fails {
                return SlotVerdict::Evict;
            }
        }
        SlotVerdict::Rearm {
            at: self.last_fire[slot] + self.period,
        }
    }
}

/// Three resident devices re-attest over three widely spaced
/// epochs; the loop fast-forwards the idle gaps, so the real step
/// count stays far below the resident-polling counterfactual.
#[test]
fn persistent_slots_reattest_and_fast_forward_idle_gaps() {
    let ep = endpoints(3, 0x21);
    let mut ctl = AuthFleet::new(ep.auth, 200, 3, 3);
    let mut channel = Channel::new();
    let registry = Registry::new();
    let report = run_persistent_gateway(
        &mut channel,
        &[0, 0, 0],
        &mut ctl,
        PersistentConfig {
            horizon: 2000,
            epoch_budget: 64,
            ..PersistentConfig::default()
        },
        &mut Tracer::disabled(),
        &registry,
    );
    assert_eq!(report.joined, 3);
    assert_eq!(report.epochs_fired, 9);
    assert_eq!(report.epochs_completed, 9, "{report:?}");
    assert_eq!(report.epochs_failed, 0);
    assert_eq!(report.epochs_missed, 0);
    assert_eq!(report.left, 3);
    assert_eq!(report.evicted, 0);
    for rec in &ctl.records {
        assert_eq!(rec.len(), 3);
        assert!(rec.iter().all(|&(ok, _, _)| ok), "{rec:?}");
    }
    assert!(
        report.step_saving() > 5.0,
        "idle fast-forward should dominate: {report:?}"
    );
    assert_eq!(registry.counter_value("keepalive.epochs_completed"), 9);
    assert_eq!(
        registry.counter_value("keepalive.session_steps"),
        report.session_steps
    );
}

/// A device with tampered memory fails every re-attestation; after
/// `max_fails` consecutive failures the controller's verdict evicts
/// it while healthy slots ride out their full epoch quota.
#[test]
fn corrupted_device_is_evicted_after_consecutive_failures() {
    let mut ep = endpoints(3, 0x22);
    ep.auth[1].0.corrupt_memory(100, 0xFF);
    let mut ctl = AuthFleet::new(ep.auth, 100, 4, 2);
    let mut channel = Channel::new();
    let report = run_persistent_gateway(
        &mut channel,
        &[0, 0, 0],
        &mut ctl,
        PersistentConfig {
            horizon: 4000,
            epoch_budget: 64,
            ..PersistentConfig::default()
        },
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(report.evicted, 1, "{report:?}");
    assert_eq!(report.left, 2);
    assert_eq!(ctl.records[1].len(), 2, "evicted after two failures");
    assert!(ctl.records[1].iter().all(|&(ok, _, _)| !ok));
    assert_eq!(report.epochs_failed, 2);
    assert_eq!(report.epochs_completed, 8);
    // The endpoints always come back to the controller, eviction
    // included.
    assert!(ctl.endpoints.iter().all(Option::is_some));
}

/// An epoch budget of one tick can never fit a full handshake: the
/// deadline timer force-closes every epoch as missed and the
/// controller still gets its endpoints back.
#[test]
fn epoch_budget_expiry_closes_epochs_as_missed() {
    let ep = endpoints(2, 0x23);
    let mut ctl = AuthFleet::new(ep.auth, 50, 2, 10);
    let mut channel = Channel::new();
    let report = run_persistent_gateway(
        &mut channel,
        &[0, 0],
        &mut ctl,
        PersistentConfig {
            horizon: 300,
            epoch_budget: 1,
            ..PersistentConfig::default()
        },
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(report.epochs_fired, 4);
    assert_eq!(report.epochs_completed, 0);
    assert_eq!(report.epochs_missed, 4, "{report:?}");
    assert_eq!(report.left, 2);
    assert!(ctl.endpoints.iter().all(Option::is_some));
    assert!(ctl.records.iter().flatten().all(|&(ok, _, _)| !ok));
}

/// The round-equivalence kernel at gateway level: one zero-jitter
/// persistent epoch over a lossy link produces the byte-identical
/// wire transcript and per-device outcomes of a [`run_gateway`]
/// round with the same sessions and channel seed.
#[test]
fn single_persistent_epoch_matches_run_gateway_byte_for_byte() {
    let loss = FaultRates::loss(0.1);
    let ep = endpoints(3, 0x24);
    let mut ctl = AuthFleet::new(ep.auth, 1000, 1, 3);
    let mut persistent_link = FaultyChannel::new(loss, 0x5EED_0001);
    let report = run_persistent_gateway(
        &mut persistent_link,
        &[0, 0, 0],
        &mut ctl,
        PersistentConfig {
            horizon: 500,
            epoch_budget: 0,
            ..PersistentConfig::default()
        },
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(report.epochs_fired, 3);

    let mut ep = endpoints(3, 0x24);
    let cfg = SessionConfig::default();
    let mut sessions: Vec<SessionPair<'_>> = Vec::new();
    for (i, (device, verifier)) in ep.auth.iter_mut().enumerate() {
        let sid = i as u64 + 1;
        sessions.push(SessionPair::new(
            ProtocolId::MutualAuth,
            sid,
            Box::new(WireVerifier::new(&mut *verifier, sid, cfg)),
            Box::new(WireDevice::new(&mut *device, cfg)),
        ));
    }
    let mut round_link = FaultyChannel::new(loss, 0x5EED_0001);
    let round = run_gateway(
        &mut round_link,
        sessions,
        GatewayConfig::default(),
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(persistent_link.transcript(), round_link.transcript());
    for (i, out) in round.outcomes.iter().enumerate() {
        let (ok, ticks, retransmits) = ctl.records[i][0];
        assert_eq!(ok, out.result.is_ok(), "slot {i}");
        if let Ok(t) = out.result {
            assert_eq!(ticks, t, "slot {i}");
        }
        assert_eq!(retransmits, out.retransmits, "slot {i}");
    }
}

/// Batched secure-NN sessions multiplexed by the gateway against
/// ONE shared engine: a single owner loads the network out of
/// band, every session streams its own chunked batch, and the
/// per-session inference accounting folds into the registry.
#[test]
fn batched_nn_sessions_share_one_engine_through_the_gateway() {
    use crate::secure_nn::{share_accelerator, WireNnBatchClient, WireNnBatchServer};
    let key = [0x4E; 32];
    let mut owner = NetworkOwner::new(key, b"gw-batch-owner");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
    let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
    accel.load_network(&owner.cipher_network(&config)).unwrap();
    let shared = share_accelerator(accel);
    let registry = Registry::new();
    let cfg = SessionConfig::default();
    let k = 4usize;
    let per_session = 150usize; // ~64 B sealed each: > one chunk budget
    let blobs: Vec<Vec<Vec<u8>>> = (1..=k as u64)
        .map(|sid| {
            let inputs: Vec<Vec<f64>> = (0..per_session)
                .map(|i| vec![(i as f64 + sid as f64) * 0.01; 4])
                .collect();
            owner.cipher_inputs(&inputs)
        })
        .collect();
    let mut sessions: Vec<SessionPair<'_>> = Vec::new();
    for (i, input_blobs) in blobs.iter().enumerate() {
        let sid = i as u64 + 1;
        sessions.push(SessionPair::new(
            ProtocolId::SecureNn,
            sid,
            Box::new(WireNnBatchClient::execute_only(sid, input_blobs, cfg)),
            Box::new(WireNnBatchServer::new(shared.clone(), cfg).with_metrics(&registry)),
        ));
    }
    let mut channel = FaultyChannel::new(FaultRates::loss(0.05), 0xBA7C_6A7E);
    let mut tracer = Tracer::disabled();
    let report = run_gateway(
        &mut channel,
        sessions,
        GatewayConfig::default(),
        &mut tracer,
        &registry,
    );
    assert!(report.all_completed(), "{report:?}");
    assert_eq!(registry.counter_value("secure_nn.batch.executes"), k as u64);
    assert_eq!(
        registry.counter_value("secure_nn.batch.items"),
        (k * per_session) as u64
    );
    // All batches ran on the one engine.
    assert_eq!(shared.borrow().stats().inferences, (k * per_session) as u64);
}

#[test]
fn mixed_protocols_share_one_lossless_transport() {
    let mut ep = endpoints(3, 0x11);
    let sessions = pairs(&mut ep, SessionConfig::default());
    let n = sessions.len();
    let mut channel = Channel::new();
    let report = run_gateway(
        &mut channel,
        sessions,
        GatewayConfig::default(),
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(report.sessions, n);
    assert!(report.all_completed(), "{report:?}");
    assert_eq!(report.retransmits, 0);
    assert_eq!(report.late_frames, 0);
    assert_eq!(report.unroutable_frames, 0);
    assert_eq!(report.undecodable_frames, 0);
    assert_eq!(report.peak_active, n);
    // Every EKE pair agreed on a key through the shared wire.
    for (initiator, responder) in &ep.eke {
        assert_eq!(initiator.session(), responder.session());
    }
}

#[test]
fn mixed_protocols_survive_a_shared_lossy_transport() {
    let mut ep = endpoints(4, 0x22);
    let sessions = pairs(&mut ep, SessionConfig::default());
    let n = sessions.len();
    let mut channel = FaultyChannel::new(FaultRates::loss(0.1), 0x6A7E_1055);
    let registry = Registry::new();
    let mut tracer = Tracer::disabled();
    let report = run_gateway(
        &mut channel,
        sessions,
        GatewayConfig::default(),
        &mut tracer,
        &registry,
    );
    assert_eq!(report.sessions, n);
    assert!(report.all_completed(), "{report:?}");
    assert!(report.retransmits > 0, "10% loss must force retransmits");
    assert_eq!(registry.counter_value("gateway.completed"), n as u64);
    assert_eq!(
        registry.counter_value("gateway.retransmits"),
        report.retransmits
    );
    // The event-driven scheduler never steps more than the dense
    // loop would, and idle ARQ waits mean it steps strictly less.
    assert!(report.session_steps > 0);
    assert!(
        report.session_steps < report.dense_equiv_steps,
        "wake scheduling saved nothing: {} vs {}",
        report.session_steps,
        report.dense_equiv_steps
    );
    // Whatever the fault pattern left in flight after close is
    // accounted as late, never lost.
    let drained = channel.drain_late();
    assert_eq!(channel.stats().late_drained, drained);
}

#[test]
fn bounded_admission_queues_sessions_without_timing_them_out() {
    let mut ep = endpoints(6, 0x33);
    let sessions = pairs(&mut ep, SessionConfig::default());
    let n = sessions.len();
    let mut channel = Channel::new();
    let config = GatewayConfig {
        max_active: 2,
        accept_queue: 3,
        max_ticks: 4096,
        ..GatewayConfig::default()
    };
    let report = run_gateway(
        &mut channel,
        sessions,
        config,
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert!(report.all_completed(), "{report:?}");
    assert!(report.peak_active <= 2);
    assert!(report.peak_staged <= 3);
    assert_eq!(report.retransmits, 0, "queued sessions must not tick ARQ");
    // Admission is staggered: not everyone got in on tick 0.
    let first = report
        .outcomes
        .iter()
        .filter(|o| o.admitted_at == Some(0))
        .count();
    assert_eq!(first, 2);
    assert!(report.outcomes.iter().all(|o| o.admitted_at.is_some()));
    assert_eq!(report.sessions, n);
}

/// The multiplexing property the whole module rests on: over a
/// lossless shared transport, a gateway run with K interleaved
/// sessions produces — per session — *byte-identical* wire
/// transcripts to K independent `drive`-based runs. The gateway
/// reproduces the single-session tick cadence exactly; only the
/// interleaving on the shared wire differs.
#[test]
fn interleaved_sessions_match_independent_transcripts() {
    let cfg = SessionConfig::default();

    // Gateway run: 12 sessions (3 of each protocol) on one wire.
    let mut ep = endpoints(3, 0x77);
    let sessions = pairs(&mut ep, cfg);
    let keys: Vec<(ProtocolId, u64)> = sessions.iter().map(|p| (p.protocol, p.id)).collect();
    let mut shared = Channel::new();
    let report = run_gateway(
        &mut shared,
        sessions,
        GatewayConfig::default(),
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert!(report.all_completed(), "{report:?}");

    // Split the shared transcript by envelope key, preserving order.
    type SessionTranscript = Vec<(Side, Vec<u8>)>;
    let mut per_session: BTreeMap<(ProtocolId, u64), SessionTranscript> = BTreeMap::new();
    for (side, frame) in shared.transcript() {
        let env = Envelope::from_bytes(frame).expect("lossless frames decode");
        per_session
            .entry((env.protocol, env.session))
            .or_default()
            .push((*side, frame.clone()));
    }

    // Independent runs: identical endpoint states (same seeds) and
    // identical session ids, one dedicated channel each.
    let mut ep2 = endpoints(3, 0x77);
    let singles = pairs(&mut ep2, cfg);
    for (pair, key) in singles.into_iter().zip(keys) {
        let mut solo = Channel::new();
        let mut a = pair.initiator;
        let mut b = pair.responder;
        crate::wire::drive(
            &mut solo,
            a.as_mut(),
            b.as_mut(),
            crate::wire::DEFAULT_MAX_TICKS,
            &mut Tracer::disabled(),
        )
        .expect("independent session completes");
        let expected = solo.transcript();
        let actual = per_session.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        assert_eq!(
            actual,
            expected,
            "session {}/{} transcript diverged between gateway and solo run",
            protocol_label(key.0),
            key.1
        );
    }
}

#[test]
fn duplicate_session_keys_fail_fast_without_corrupting_routing() {
    let mut ep = endpoints(2, 0x44);
    let cfg = SessionConfig::default();
    let mut sessions = Vec::new();
    for (device, verifier) in &mut ep.auth {
        sessions.push(SessionPair::new(
            ProtocolId::MutualAuth,
            7, // same key on purpose
            Box::new(WireVerifier::new(verifier, 7, cfg)),
            Box::new(WireDevice::new(device, cfg)),
        ));
    }
    let mut channel = Channel::new();
    let report = run_gateway(
        &mut channel,
        sessions,
        GatewayConfig::default(),
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 1);
    assert!(report
        .outcomes
        .iter()
        .any(|o| matches!(o.result, Err(ProtocolError::OutOfOrder(_)))));
}

#[test]
fn tick_budget_reports_unfinished_sessions() {
    let mut ep = endpoints(2, 0x55);
    let sessions = pairs(&mut ep, SessionConfig::default());
    let mut channel = Channel::new();
    let config = GatewayConfig {
        max_active: 1,
        accept_queue: 1,
        max_ticks: 3, // far too few for eight sessions
        ..GatewayConfig::default()
    };
    let report = run_gateway(
        &mut channel,
        sessions,
        config,
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    assert_eq!(report.ticks, 3);
    assert!(report.unfinished > 0);
    assert_eq!(
        report.completed + report.failed + report.unfinished,
        report.sessions
    );
}
