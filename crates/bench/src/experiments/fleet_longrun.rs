//! E23 — persistent keep-alive fleet sessions: hundreds to thousands
//! of devices each holding a long-lived gateway slot, re-attesting on
//! jittered timers and sitting silent between epochs. The driver
//! reports both the [`Session::step`] calls it made (`session_steps`)
//! and what a dense every-resident-slot-every-tick loop would have
//! cost for the same residency (`dense_equiv_steps`); their ratio is
//! the keep-alive saving. The acceptance cell asserts the saving is at
//! least 5x at 1024 mostly-idle devices *and* that a 10% lossy control
//! link loses zero re-attestations: every fired epoch is accounted
//! for as completed (conservation), and every one in fact completes.
//! Every cell is an independent seeded run, so the sweep fans out on
//! the pool with byte-identical output at any thread count.
//!
//! [`Session::step`]: neuropuls_protocols::wire::Session::step

use crate::{Rendered, Scale};
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_system::fleet::{run_fleet_persistent, PersistentFleetConfig};

/// The acceptance cell's fleet size (ISSUE gate: >= 5x fewer step
/// calls at 1024 mostly-idle devices).
const ACCEPTANCE_DEVICES: usize = 1024;

/// The acceptance cell's frame-drop rate (ISSUE gate: zero lost
/// re-attestations at 10% loss).
const ACCEPTANCE_LOSS: f64 = 0.1;

/// Re-attestation period in gateway ticks: long enough that a slot's
/// lifetime is dominated by timer silence, short enough that the run
/// carries several epochs per device.
const REATTEST_PERIOD: u64 = 512;

/// Per-device period jitter (ticks) decorrelating the cohorts.
const JITTER: u64 = 64;

/// Re-attestation epochs each device serves before leaving.
const EPOCHS_PER_DEVICE: u32 = 4;

/// One sweep cell: a fleet size and a control-link quality.
#[derive(Debug, Clone, Copy)]
struct Cell {
    devices: usize,
    loss: f64,
}

/// Deterministic per-cell summary carried into the bench report:
/// `(devices, loss, session_steps, dense_equiv_steps, epochs_fired,
/// epochs_completed, epochs_missed, retransmits, conserved)`.
pub type CellSummary = (usize, f64, u64, u64, u64, u64, u64, u64, bool);

/// Dense-loop step calls per keep-alive step call for one summary row.
pub fn saving(row: &CellSummary) -> f64 {
    row.3 as f64 / row.2.max(1) as f64
}

/// The acceptance cell (1024 devices, 10% loss), if the sweep carried
/// it: `(step_saving, zero_lost_reattestations)`.
///
/// "Zero lost" is judged against the cell's lossless twin: the fleet
/// population has a handful of inherent PUF auth-rejects (a noisy CRP
/// fails the MAC check on a perfect link too), so the gate is that the
/// lossy link adds *no* failures beyond those — same epochs fired,
/// same epochs completed, nothing missed, every epoch accounted for.
pub fn acceptance(summary: &[CellSummary]) -> Option<(f64, bool)> {
    let cell = |target: f64| {
        summary.iter().find(move |&&(devices, loss, ..)| {
            devices == ACCEPTANCE_DEVICES && (loss - target).abs() < 1e-9
        })
    };
    let lossy = cell(ACCEPTANCE_LOSS)?;
    let lossless = cell(0.0)?;
    let &(_, _, _, _, fired, completed, missed, _, conserved) = lossy;
    let no_lost = conserved
        && lossless.8
        && missed == 0
        && fired > 0
        && fired == lossless.4
        && completed == lossless.5;
    Some((saving(lossy), no_lost))
}

fn cell_config(cell: Cell) -> PersistentFleetConfig {
    PersistentFleetConfig {
        devices: cell.devices,
        reattest_period: REATTEST_PERIOD,
        jitter: JITTER,
        epochs_per_device: EPOCHS_PER_DEVICE,
        loss_rate: cell.loss,
        seed: 0xE23_u64 ^ ((cell.devices as u64) << 20) ^ (cell.loss * 1000.0) as u64,
        // A deep ARQ budget (as in E22's mostly-idle regime): at 10%
        // loss the chance of one frame dropping 11 times in a row is
        // ~1e-11, so the link costs retransmits, never epochs.
        session_retries: 10,
        ..PersistentFleetConfig::default()
    }
}

/// Runs the fleet-size x loss sweep and renders one table per loss
/// rate. Both scales carry the 1024-device 10%-loss acceptance cell.
pub fn run(scale: Scale) -> (Rendered, Vec<CellSummary>) {
    let device_sweep: Vec<usize> = scale.pick(
        vec![256, ACCEPTANCE_DEVICES],
        vec![256, 512, ACCEPTANCE_DEVICES, 2048],
    );
    let loss_sweep: Vec<f64> = vec![0.0, ACCEPTANCE_LOSS];

    let mut cells: Vec<Cell> = Vec::new();
    for &loss in &loss_sweep {
        for &devices in &device_sweep {
            cells.push(Cell { devices, loss });
        }
    }

    // Each cell records into its own registry; merging in input order
    // afterwards keeps the aggregate byte-identical at any thread
    // count.
    let cell_results: Vec<(CellSummary, Registry)> = neuropuls_rt::pool::par_map(cells, |cell| {
        let registry = Registry::new();
        let report = run_fleet_persistent(&cell_config(cell), &mut Tracer::disabled(), &registry);
        let summary = (
            cell.devices,
            cell.loss,
            report.session_steps,
            report.dense_equiv_steps,
            report.epochs_fired,
            report.epochs_completed,
            report.epochs_missed,
            report.retransmits,
            report.epochs_conserved(),
        );
        (summary, registry)
    });
    let metrics = Registry::new();
    let summary: Vec<CellSummary> = cell_results
        .into_iter()
        .map(|(row, registry)| {
            metrics.merge(&registry);
            row
        })
        .collect();

    let mut out = Rendered::new("E23 — persistent keep-alive fleet sessions");
    out.push(format!(
        "fleet-size sweep: period {REATTEST_PERIOD} ticks, jitter {JITTER}, \
         {EPOCHS_PER_DEVICE} re-attestation epochs per device, whole fleet resident at once:"
    ));
    for (li, &loss) in loss_sweep.iter().enumerate() {
        out.push(String::new());
        out.push(format!("frame-drop rate {:.0}%:", loss * 100.0));
        out.push(format!(
            "{:>8} {:>7} {:>10} {:>7} {:>11} {:>11} {:>12} {:>8}",
            "devices",
            "fired",
            "completed",
            "missed",
            "retransmits",
            "wake steps",
            "dense steps",
            "saving"
        ));
        for row in &summary[li * device_sweep.len()..(li + 1) * device_sweep.len()] {
            let &(devices, _, steps, dense, fired, completed, missed, retransmits, _) = row;
            out.push(format!(
                "{devices:>8} {fired:>7} {completed:>10} {missed:>7} {retransmits:>11} \
                 {steps:>11} {dense:>12} {:>7.1}x",
                saving(row),
            ));
        }
    }
    out.push(String::new());
    out.push(
        "a resident slot costs the dense loop two step calls per tick for its whole \
         lifetime; the keep-alive driver steps it only while an epoch is live, and \
         fast-forwards the clock across fleet-wide silence between cohort firings"
            .to_string(),
    );
    out.push(format!(
        "CRP store across all cells: {} checkouts hit hot shards, {} cold misses, \
         {} commits; shard hot-set occupancy p99 {:.0}",
        metrics.counter_value("crp_store.hits"),
        metrics.counter_value("crp_store.misses"),
        metrics.counter_value("crp_store.commits"),
        metrics.quantile("crp_store.shard_hot", 0.99),
    ));
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fleet_longrun_sweep() {
        let (rendered, summary) = run(Scale::Smoke);
        assert!(!summary.is_empty());
        for row in &summary {
            let &(devices, _, steps, _, fired, _, missed, _, conserved) = row;
            assert_eq!(
                fired,
                devices as u64 * u64::from(EPOCHS_PER_DEVICE),
                "{row:?}"
            );
            assert!(conserved, "epoch accounting leaked: {row:?}");
            assert_eq!(missed, 0, "{row:?}");
            assert!(steps > 0, "{row:?}");
        }
        // The lossy link never loses an epoch: each fleet size completes
        // exactly what its lossless twin completes (inherent PUF
        // auth-rejects and nothing more).
        for row in &summary {
            let twin = summary
                .iter()
                .find(|t| t.0 == row.0 && t.1 == 0.0)
                .expect("every cell has a lossless twin");
            assert_eq!(row.5, twin.5, "loss cost epochs: {row:?} vs {twin:?}");
        }
        let (saving, conserved) = acceptance(&summary).expect("sweep carries the 1024-device cell");
        assert!(conserved, "acceptance cell lost re-attestations");
        assert!(
            saving >= 5.0,
            "acceptance gate: >= 5x fewer step calls at {ACCEPTANCE_DEVICES} mostly-idle \
             devices, measured {saving:.2}x"
        );
        // The output is deterministic: a second run renders identically.
        let (again, _) = run(Scale::Smoke);
        assert_eq!(rendered.stable_string(), again.stable_string());
    }
}
