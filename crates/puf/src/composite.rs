//! Composite PIC + ASIC PUF — the chip-binding mechanism of §IV.
//!
//! "Thanks to … the physical connection between chips … it is possible to
//! generate a composite response from the 2 chips, which can be used to
//! assess the genuine character of the accelerator as a whole."
//!
//! The composite response XORs the photonic strong-PUF response with an
//! ASIC-side SRAM word selected by a digest of the challenge. Replacing
//! *either* chip changes the composite response, so a tampered assembly
//! fails authentication even if one genuine chip remains (experiment
//! E13).

use crate::bits::{Challenge, Response};
use crate::photonic::PhotonicPuf;
use crate::sram::SramPuf;
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_crypto::sha256::Sha256;
use neuropuls_photonic::Environment;

/// The two-chip composite PUF.
#[derive(Debug, Clone)]
pub struct CompositePuf {
    pic: PhotonicPuf,
    asic: SramPuf,
}

impl CompositePuf {
    /// Binds a photonic PUF (PIC) with an SRAM PUF (ASIC).
    ///
    /// # Panics
    ///
    /// Panics if the SRAM word width differs from the photonic response
    /// width (the XOR must be bit-aligned).
    pub fn bind(pic: PhotonicPuf, asic: SramPuf) -> Self {
        assert_eq!(
            pic.response_bits(),
            asic.response_bits(),
            "PIC and ASIC response widths must match"
        );
        CompositePuf { pic, asic }
    }

    /// The photonic half.
    pub fn pic(&self) -> &PhotonicPuf {
        &self.pic
    }

    /// The ASIC half.
    pub fn asic(&self) -> &SramPuf {
        &self.asic
    }

    /// Swaps in a different PIC (the tampering scenario of E13).
    pub fn replace_pic(&mut self, pic: PhotonicPuf) {
        assert_eq!(pic.response_bits(), self.asic.response_bits());
        self.pic = pic;
    }

    /// Swaps in a different ASIC.
    pub fn replace_asic(&mut self, asic: SramPuf) {
        assert_eq!(self.pic.response_bits(), asic.response_bits());
        self.asic = asic;
    }

    fn asic_word_for(&self, challenge: &Challenge) -> usize {
        // Public derivation: hash the challenge, take a word index. The
        // ASIC contribution therefore depends on the challenge, but
        // through its own physical secret.
        let digest = Sha256::digest(&challenge.to_packed());
        let mut idx = 0usize;
        for &b in &digest[..8] {
            idx = (idx << 8) | b as usize;
        }
        idx % self.asic.words()
    }
}

impl Puf for CompositePuf {
    fn challenge_bits(&self) -> usize {
        self.pic.challenge_bits()
    }

    fn response_bits(&self) -> usize {
        self.pic.response_bits()
    }

    fn kind(&self) -> PufKind {
        PufKind::Strong
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        let optical = self.pic.respond(challenge)?;
        let word = self.asic_word_for(challenge);
        let electronic = self.asic.read_word(word)?;
        Ok(optical.xor(&electronic))
    }

    fn set_environment(&mut self, env: Environment) {
        self.pic.set_environment(env);
        self.asic.set_environment(env);
    }

    fn environment(&self) -> Environment {
        self.pic.environment()
    }

    /// Dominated by the slower (SRAM) half.
    fn latency_ns(&self) -> f64 {
        self.pic.latency_ns().max(self.asic.latency_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_rt::rngs::StdRng;
    use neuropuls_rt::SeedableRng;

    fn composite(pic_die: u64, asic_die: u64) -> CompositePuf {
        CompositePuf::bind(
            PhotonicPuf::reference(DieId(pic_die), 500 + pic_die),
            SramPuf::reference(DieId(asic_die), 900 + asic_die),
        )
    }

    fn challenge(seed: u64) -> Challenge {
        let mut rng = StdRng::seed_from_u64(seed);
        Challenge::random(64, &mut rng)
    }

    #[test]
    fn composite_is_stable_for_genuine_assembly() {
        let mut c = composite(1, 2);
        let ch = challenge(1);
        let golden = c.respond_golden(&ch, 9).unwrap();
        let mut fhd = 0.0;
        for _ in 0..10 {
            fhd += golden.fhd(&c.respond(&ch).unwrap());
        }
        assert!(fhd / 10.0 < 0.15, "composite intra FHD {}", fhd / 10.0);
    }

    #[test]
    fn swapping_pic_breaks_response() {
        let ch = challenge(2);
        let mut genuine = composite(10, 20);
        let golden = genuine.respond_golden(&ch, 9).unwrap();
        genuine.replace_pic(PhotonicPuf::reference(DieId(999), 3));
        let tampered = genuine.respond_golden(&ch, 9).unwrap();
        assert!(golden.fhd(&tampered) > 0.25, "PIC swap undetected");
    }

    #[test]
    fn swapping_asic_breaks_response() {
        let ch = challenge(3);
        let mut genuine = composite(11, 21);
        let golden = genuine.respond_golden(&ch, 9).unwrap();
        genuine.replace_asic(SramPuf::reference(DieId(888), 4));
        let tampered = genuine.respond_golden(&ch, 9).unwrap();
        assert!(golden.fhd(&tampered) > 0.25, "ASIC swap undetected");
    }

    #[test]
    fn composite_differs_from_pic_alone() {
        let ch = challenge(4);
        let mut c = composite(12, 22);
        let composite_r = c.respond_golden(&ch, 9).unwrap();
        let mut pic_alone = PhotonicPuf::reference(DieId(12), 512);
        let pic_r = pic_alone.respond_golden(&ch, 9).unwrap();
        assert!(composite_r.fhd(&pic_r) > 0.2, "ASIC adds nothing");
    }

    #[test]
    fn word_selection_depends_on_challenge() {
        let c = composite(13, 23);
        let w1 = c.asic_word_for(&challenge(5));
        let w2 = c.asic_word_for(&challenge(6));
        assert_ne!(w1, w2);
        assert!(w1 < c.asic().words());
    }

    #[test]
    fn kind_is_strong() {
        assert_eq!(composite(14, 24).kind(), PufKind::Strong);
    }
}
