// Indexed loops over parallel arrays are the clearest form for the
// numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! CRP filtering for reliability and bit-aliasing — the method of
//! Vinagrero et al. \[13\] that §II-B adopts, and its adaptation to the
//! photonic PUF.
//!
//! The core observation behind Fig. 3 of the paper:
//!
//! * pairs whose count difference is **close to the selection boundary**
//!   carry maximum entropy (the Gaussian process variation dominates) but
//!   flip under noise — *unreliable*;
//! * pairs whose count difference is **extreme** are stable but tend to
//!   be dominated by design-level systematic skew, so many devices answer
//!   identically — *aliased*;
//! * a counter **threshold window** in between trades the number of
//!   usable CRPs against reliability and aliasing.
//!
//! [`ro_filter`] reproduces the study on the RO PUF (x-axis = counter
//! threshold, exactly Fig. 3); [`photocurrent`] applies the same idea to
//! the photonic PUF with a threshold "dependent on the amplitude of the
//! photocurrent read at the PD" (§II-B).
//!
//! # Example
//!
//! ```
//! use neuropuls_filtering::ro_filter::RoFilterStudy;
//!
//! let study = RoFilterStudy::generate(8, 10, 12345);
//! let sweep = study.threshold_sweep(&[0.0, 50.0, 100.0]);
//! assert_eq!(sweep.len(), 3);
//! // Reliability rises with the threshold...
//! assert!(sweep[2].reliability >= sweep[0].reliability);
//! // ...while the usable CRP fraction falls.
//! assert!(sweep[2].surviving_fraction <= sweep[0].surviving_fraction);
//! ```

pub mod mask;
pub mod photocurrent;
pub mod ro_filter;

pub use mask::SelectionMask;
pub use ro_filter::{RoFilterStudy, ThresholdPoint};
