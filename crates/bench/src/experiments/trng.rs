//! E16 — photonic TRNG: throughput of the conditioned stream, NIST
//! battery on the output, and health-test behaviour on a broken source.
//!
//! Audit note: the battery verdict follows the SP 800-22 §4.2
//! multi-sequence proportion methodology. Judging a *single* long
//! sequence at α = 0.01 misreads the test design — by construction 1%
//! of good sequences land below α, and the repo's runs and lag-1
//! autocorrelation statistics are algebraically coupled (`V = D + 1`),
//! so one such fluctuation prints as two simultaneous "failures". The
//! proportion gate keeps α = 0.01 per sequence and asks instead whether
//! the pass *proportion* across independently seeded sequences stays
//! inside `p̂ ± 3·√(p̂(1−p̂)/m)`; a systematic defect still fails. The
//! long-sequence battery remains in the report as informational
//! per-test p-values.

use crate::{Rendered, Scale};
use neuropuls_metrics::nist;
use neuropuls_puf::trng::PhotonicTrng;
use std::time::Instant;

/// Outcome for assertions.
#[derive(Debug)]
pub struct Outcome {
    /// NIST pass rate on the single long conditioned sequence
    /// (informational; a borderline p-value here is expected α-noise).
    pub nist_pass_rate: f64,
    /// Conditioned output rate, bytes per millisecond of wall time.
    pub bytes_per_ms: f64,
    /// Whether the broken source tripped the health tests.
    pub broken_source_detected: bool,
    /// Tests whose §4.2 pass proportion cleared the acceptance bound.
    pub proportion_passed: usize,
    /// Tests judged by the proportion gate.
    pub proportion_total: usize,
}

fn bits_of(bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .flat_map(|b| (0..8).map(move |i| (b >> i) & 1))
        .collect()
}

/// Runs the TRNG study.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let output_bytes = scale.pick(1024, 16_384);

    let mut trng = PhotonicTrng::new(0xE16);
    let start = Instant::now();
    let bytes = trng.generate(output_bytes).expect("healthy source");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;

    let bits = bits_of(&bytes);
    let results = nist::battery(&bits);
    let nist_pass_rate = nist::pass_rate(&results);

    // §4.2 proportion gate over independently seeded generator
    // instances (each sequence is one device's conditioned stream).
    let sequences = scale.pick(8, 16);
    let sequence_bytes = scale.pick(256, 1024);
    let per_sequence: Vec<Vec<nist::TestResult>> = (0..sequences)
        .map(|i| {
            let mut trng = PhotonicTrng::new(0xE16_0000 + i as u64);
            let bytes = trng.generate(sequence_bytes).expect("healthy source");
            nist::battery(&bits_of(&bytes))
        })
        .collect();
    let gate = nist::proportion_gate(&per_sequence, 0.01);

    let broken_source_detected = PhotonicTrng::broken(0xE16).generate(64).is_err();

    let mut out = Rendered::new("E16 — photonic TRNG (shot-noise LSB harvesting)");
    out.push_volatile(format!(
        "conditioned output: {output_bytes} bytes in {elapsed_ms:.1} ms \
         ({:.1} B/ms simulated-host rate)",
        output_bytes as f64 / elapsed_ms.max(1e-9)
    ));
    out.push(format!(
        "single-sequence battery over {} bits (informational p-values): {:.0}% passed",
        bits.len(),
        nist_pass_rate * 100.0
    ));
    for r in &results {
        out.push(format!(
            "  {:<22} p = {:<8.4} {}",
            r.name,
            r.p_value,
            if r.passed {
                "pass"
            } else {
                "below alpha (see proportion gate)"
            }
        ));
    }
    out.push(format!(
        "SP 800-22 §4.2 proportion gate: {sequences} sequences x {} bits, alpha 0.01, \
         min proportion {:.3}:",
        sequence_bytes * 8,
        gate.first().map_or(0.0, |g| g.min_proportion)
    ));
    for g in &gate {
        out.push(format!(
            "  {:<22} {:>2}/{} sequences {}",
            g.name,
            g.passed_sequences,
            g.sequences,
            if g.passed { "pass" } else { "FAIL" }
        ));
    }
    out.push(format!(
        "broken-source health tests: {}",
        if broken_source_detected {
            "tripped as required (RCT/APT)"
        } else {
            "MISSED"
        }
    ));
    (
        out,
        Outcome {
            nist_pass_rate,
            bytes_per_ms: output_bytes as f64 / elapsed_ms.max(1e-9),
            broken_source_detected,
            proportion_passed: gate.iter().filter(|g| g.passed).count(),
            proportion_total: gate.len(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_trng() {
        let (_, o) = run(Scale::Smoke);
        assert!(o.nist_pass_rate >= 0.8, "pass rate {}", o.nist_pass_rate);
        assert!(o.broken_source_detected);
        assert_eq!(
            o.proportion_passed, o.proportion_total,
            "a test failed the §4.2 proportion gate"
        );
        assert!(
            o.proportion_total >= 9,
            "battery shrank: {}",
            o.proportion_total
        );
    }
}
