//! Discrete-event simulation core.
//!
//! A gem5-style event queue: events carry a tick timestamp and a payload;
//! [`EventQueue::advance`] pops them in time order (FIFO among equal
//! timestamps). The SoC's instruction loop is synchronous, but
//! multi-device scenarios (several attesting devices sharing a verifier,
//! staggered enrollment campaigns) schedule through this queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in ticks (picoseconds at the reference resolution).
pub type Tick = u64;

#[derive(Debug)]
struct Scheduled<T> {
    tick: Tick,
    sequence: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.sequence == other.sequence
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for the min-heap: earliest tick first, then insertion
        // order.
        other
            .tick
            .cmp(&self.tick)
            .then(other.sequence.cmp(&self.sequence))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use neuropuls_system::event::EventQueue;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(30, "attest-b");
/// queue.schedule(10, "attest-a");
/// assert_eq!(queue.advance(), Some((10, "attest-a")));
/// assert_eq!(queue.now(), 10);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    now: Tick,
    sequence: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue at tick 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            sequence: 0,
        }
    }

    /// Current simulation time (the tick of the last popped event).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute `tick`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling into the past.
    pub fn schedule(&mut self, tick: Tick, payload: T) {
        assert!(
            tick >= self.now,
            "cannot schedule into the past ({tick} < {})",
            self.now
        );
        self.heap.push(Scheduled {
            tick,
            sequence: self.sequence,
            payload,
        });
        self.sequence += 1;
    }

    /// Schedules `payload` `delay` ticks from now.
    pub fn schedule_in(&mut self, delay: Tick, payload: T) {
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its tick.
    pub fn advance(&mut self) -> Option<(Tick, T)> {
        self.heap.pop().map(|e| {
            self.now = e.tick;
            (e.tick, e.payload)
        })
    }

    /// Peeks at the next event's tick without advancing.
    pub fn next_tick(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Drains and handles every event up to and including `horizon`,
    /// calling `handler(queue, tick, payload)` — the handler may
    /// schedule follow-up events.
    pub fn run_until(&mut self, horizon: Tick, mut handler: impl FnMut(&mut Self, Tick, T)) {
        while let Some(&Scheduled { tick, .. }) = self.heap.peek().map(|e| e as _) {
            if tick > horizon {
                break;
            }
            // invariant: the peek above proved the heap is non-empty.
            let (tick, payload) = self.advance().expect("peeked");
            handler(self, tick, payload);
        }
        self.now = self.now.max(horizon);
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.advance(), Some((10, "a")));
        assert_eq!(q.advance(), Some((20, "b")));
        assert_eq!(q.advance(), Some((30, "c")));
        assert_eq!(q.advance(), None);
    }

    #[test]
    fn fifo_among_equal_ticks() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.advance(), Some((5, 1)));
        assert_eq!(q.advance(), Some((5, 2)));
        assert_eq!(q.advance(), Some((5, 3)));
    }

    #[test]
    fn clock_tracks_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(100, ());
        q.advance();
        assert_eq!(q.now(), 100);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(50, ());
        q.advance();
        q.schedule(10, ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.advance();
        q.schedule_in(5, "second");
        assert_eq!(q.advance(), Some((15, "second")));
    }

    #[test]
    fn run_until_handles_cascading_events() {
        // A "retry" pattern: each event reschedules itself twice.
        let mut q = EventQueue::new();
        q.schedule(0, 0u32);
        let mut handled = Vec::new();
        q.run_until(100, |q, tick, generation| {
            handled.push((tick, generation));
            if generation < 3 {
                q.schedule_in(10, generation + 1);
            }
        });
        assert_eq!(handled, vec![(0, 0), (10, 1), (20, 2), (30, 3)]);
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(10, "early");
        q.schedule(200, "late");
        let mut seen = Vec::new();
        q.run_until(100, |_, _, p| seen.push(p));
        assert_eq!(seen, vec!["early"]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_tick(), Some(200));
    }
}
