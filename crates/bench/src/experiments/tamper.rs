//! E13 — §IV: chip-substitution tampering against the PIC+ASIC
//! composite binding.

use crate::{Rendered, Scale};
use neuropuls_attacks::tamper::{full_campaign, TamperOutcome};

/// Runs the four-scenario campaign.
pub fn run(scale: Scale) -> (Rendered, Vec<TamperOutcome>) {
    let challenges = scale.pick(4, 40);
    let threshold = 0.25;
    let outcomes = full_campaign(challenges, threshold, 0xE13).expect("campaign");

    let mut out = Rendered::new(format!(
        "E13 (§IV) — chip-substitution tampering, {challenges} challenges, \
         accept FHD < {threshold}"
    ));
    out.push(format!(
        "{:<16} {:>10} {:>12}",
        "assembly", "mean FHD", "acceptance"
    ));
    for o in &outcomes {
        out.push(format!(
            "{:<16} {:>10.4} {:>11.1}%",
            format!("{:?}", o.scenario),
            o.mean_fhd,
            o.acceptance * 100.0
        ));
    }
    out.push(
        "the composite response binds both chips: replacing either one is detected".to_string(),
    );
    (out, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tamper_campaign() {
        let (_, outcomes) = run(Scale::Smoke);
        for o in &outcomes {
            match o.scenario {
                neuropuls_attacks::tamper::TamperScenario::Genuine => {
                    assert!(o.acceptance > 0.9, "{o:?}")
                }
                _ => assert!(o.acceptance < 0.1, "{o:?}"),
            }
        }
    }
}
