//! The RO-PUF counter-threshold study — the data behind Fig. 3.

use crate::mask::SelectionMask;
use neuropuls_metrics::quality::binary_entropy;
use neuropuls_photonic::process::DieId;
use neuropuls_puf::ro::RoPuf;

/// One point of the Fig. 3 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// Counter threshold (counts).
    pub threshold: f64,
    /// Mean reliability of the surviving pairs (1 − flip rate).
    pub reliability: f64,
    /// Mean bit-aliasing Shannon entropy of the surviving pairs across
    /// devices (1 = no aliasing, 0 = fully aliased).
    pub aliasing_entropy: f64,
    /// Fraction of pairs surviving the filter (averaged over devices).
    pub surviving_fraction: f64,
    /// Absolute number of surviving CRPs summed over devices.
    pub surviving_crps: usize,
}

/// Characterization data for a population of RO-PUF devices: per-device,
/// per-pair mean count differences and per-read bits.
#[derive(Debug, Clone)]
pub struct RoFilterStudy {
    /// `mean_diff[d][p]` — enrollment mean count difference of pair `p`
    /// on device `d`.
    mean_diff: Vec<Vec<f64>>,
    /// `bits[d][p][r]` — bit of pair `p` on device `d` at re-read `r`.
    bits: Vec<Vec<Vec<u8>>>,
}

impl RoFilterStudy {
    /// Characterizes `devices` RO PUFs with `reads` re-readings per pair.
    /// Device identities derive from `seed`.
    pub fn generate(devices: usize, reads: usize, seed: u64) -> Self {
        let pufs: Vec<RoPuf> = (0..devices)
            .map(|d| RoPuf::reference(DieId(seed.wrapping_add(d as u64)), seed ^ (d as u64) << 13))
            .collect();
        Self::characterize(pufs, reads)
    }

    /// Characterizes an explicit device population.
    ///
    /// Devices are read out in parallel on [`neuropuls_rt::pool`]; each
    /// die carries its own noise RNG, so the result is byte-identical to
    /// a serial readout.
    ///
    /// # Panics
    ///
    /// Panics if `pufs` is empty or `reads == 0`.
    pub fn characterize(pufs: Vec<RoPuf>, reads: usize) -> Self {
        assert!(!pufs.is_empty(), "need at least one device");
        assert!(reads > 0, "need at least one read");
        let pairs = pufs[0].pairs();
        let per_device = neuropuls_rt::pool::par_map(pufs, |mut puf| {
            let mut device_means = Vec::with_capacity(pairs);
            let mut device_bits = Vec::with_capacity(pairs);
            for pair in 0..pairs {
                let mut sum = 0.0;
                let mut reads_bits = Vec::with_capacity(reads);
                for _ in 0..reads {
                    let diff = puf.count_difference(pair).expect("pair index within range") as f64;
                    sum += diff;
                    reads_bits.push(u8::from(diff > 0.0));
                }
                device_means.push(sum / reads as f64);
                device_bits.push(reads_bits);
            }
            (device_means, device_bits)
        });
        let mut mean_diff = Vec::with_capacity(per_device.len());
        let mut bits = Vec::with_capacity(per_device.len());
        for (means, device_bits) in per_device {
            mean_diff.push(means);
            bits.push(device_bits);
        }
        RoFilterStudy { mean_diff, bits }
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.mean_diff.len()
    }

    /// Number of pairs per device.
    pub fn pairs(&self) -> usize {
        self.mean_diff[0].len()
    }

    /// Evaluates the filter "keep pair iff |mean Δcount| ≥ threshold" at
    /// one threshold — one point of Fig. 3.
    pub fn evaluate(&self, threshold: f64) -> ThresholdPoint {
        let devices = self.devices();
        let pairs = self.pairs();

        let mut survivors = 0usize;
        let mut reliability_sum = 0.0;
        let mut reliability_count = 0usize;

        // Which pairs survive per device.
        let kept: Vec<Vec<bool>> = (0..devices)
            .map(|d| {
                (0..pairs)
                    .map(|p| self.mean_diff[d][p].abs() >= threshold)
                    .collect()
            })
            .collect();

        for d in 0..devices {
            for p in 0..pairs {
                if !kept[d][p] {
                    continue;
                }
                survivors += 1;
                let reads = &self.bits[d][p];
                let ones: usize = reads.iter().map(|&b| b as usize).sum();
                let majority = u8::from(ones * 2 > reads.len());
                let flips = reads.iter().filter(|&&b| b != majority).count();
                reliability_sum += 1.0 - flips as f64 / reads.len() as f64;
                reliability_count += 1;
            }
        }

        // Bit aliasing: for each pair, Shannon entropy of the majority
        // bit across the devices that *kept* it (at least two keepers
        // required for the statistic to exist). Skew-dominated survivors
        // agree in sign across keepers and pull the entropy down.
        let mut entropy_sum = 0.0;
        let mut entropy_count = 0usize;
        for p in 0..pairs {
            let keepers: Vec<usize> = (0..devices).filter(|&d| kept[d][p]).collect();
            if keepers.len() < 2 {
                continue;
            }
            let ones: usize = keepers
                .iter()
                .map(|&d| {
                    let reads = &self.bits[d][p];
                    let one_count: usize = reads.iter().map(|&b| b as usize).sum();
                    usize::from(one_count * 2 > reads.len())
                })
                .sum();
            entropy_sum += binary_entropy(ones as f64 / keepers.len() as f64);
            entropy_count += 1;
        }

        ThresholdPoint {
            threshold,
            reliability: if reliability_count == 0 {
                f64::NAN
            } else {
                reliability_sum / reliability_count as f64
            },
            aliasing_entropy: if entropy_count == 0 {
                f64::NAN
            } else {
                entropy_sum / entropy_count as f64
            },
            surviving_fraction: survivors as f64 / (devices * pairs) as f64,
            surviving_crps: survivors,
        }
    }

    /// Sweeps the counter threshold — the full Fig. 3 curve. Points are
    /// evaluated in parallel; [`Self::evaluate`] is pure, so the curve
    /// is identical at any thread count.
    pub fn threshold_sweep(&self, thresholds: &[f64]) -> Vec<ThresholdPoint> {
        neuropuls_rt::pool::par_map(thresholds.to_vec(), |t| self.evaluate(t))
    }

    /// The "shaded area" of Fig. 3: thresholds where reliability ≥
    /// `min_reliability` and aliasing entropy ≥ `min_entropy` (with at
    /// least one surviving CRP). Returns `(low, high)` bounds over the
    /// sweep, or `None` when no threshold satisfies both.
    pub fn trade_off_window(
        &self,
        thresholds: &[f64],
        min_reliability: f64,
        min_entropy: f64,
    ) -> Option<(f64, f64)> {
        let good: Vec<f64> = self
            .threshold_sweep(thresholds)
            .into_iter()
            .filter(|p| {
                p.surviving_crps > 0
                    && p.reliability >= min_reliability
                    && p.aliasing_entropy >= min_entropy
            })
            .map(|p| p.threshold)
            .collect();
        if good.is_empty() {
            None
        } else {
            Some((
                good.iter().cloned().fold(f64::INFINITY, f64::min),
                good.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            ))
        }
    }

    /// Builds the enrollment selection mask of device `d` at a
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn mask_for(&self, device: usize, threshold: f64) -> SelectionMask {
        SelectionMask::from_flags(self.mean_diff[device].iter().map(|m| m.abs() >= threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> RoFilterStudy {
        RoFilterStudy::generate(10, 15, 777)
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let s = study();
        let p = s.evaluate(0.0);
        assert_eq!(p.surviving_fraction, 1.0);
        assert_eq!(p.surviving_crps, 10 * 128);
    }

    #[test]
    fn reliability_increases_with_threshold() {
        let s = study();
        let lo = s.evaluate(0.0);
        let hi = s.evaluate(60.0);
        assert!(
            hi.reliability >= lo.reliability,
            "lo {} hi {}",
            lo.reliability,
            hi.reliability
        );
        assert!(
            hi.reliability > 0.99,
            "filtered reliability {}",
            hi.reliability
        );
    }

    #[test]
    fn aliasing_entropy_decreases_at_extreme_thresholds() {
        let s = study();
        let mid = s.evaluate(20.0);
        let extreme = s.evaluate(160.0);
        assert!(
            extreme.aliasing_entropy < mid.aliasing_entropy,
            "mid {} extreme {}",
            mid.aliasing_entropy,
            extreme.aliasing_entropy
        );
    }

    #[test]
    fn survivors_shrink_monotonically() {
        let s = study();
        let sweep = s.threshold_sweep(&[0.0, 20.0, 40.0, 80.0, 160.0]);
        for pair in sweep.windows(2) {
            assert!(pair[1].surviving_crps <= pair[0].surviving_crps);
        }
    }

    #[test]
    fn trade_off_window_exists_for_reasonable_targets() {
        let s = study();
        let thresholds: Vec<f64> = (0..40).map(|i| i as f64 * 5.0).collect();
        let window = s.trade_off_window(&thresholds, 0.99, 0.6);
        assert!(window.is_some(), "no trade-off window found");
        let (lo, hi) = window.unwrap();
        assert!(lo <= hi);
    }

    #[test]
    fn impossible_targets_yield_no_window() {
        let s = study();
        let thresholds: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        assert_eq!(s.trade_off_window(&thresholds, 1.1, 1.1), None);
    }

    #[test]
    fn mask_matches_threshold_rule() {
        let s = study();
        let mask = s.mask_for(0, 30.0);
        assert_eq!(mask.len(), s.pairs());
        let kept = mask.kept_indices().len();
        assert!(kept > 0 && kept < s.pairs(), "kept {kept}");
    }
}
