//! False-acceptance / false-rejection analysis.
//!
//! §V: "error rates, including false positive and false negative rates,
//! should be analyzed to gauge the PUF's reliability". Authentication by
//! response matching accepts when the fractional Hamming distance to the
//! enrolled response is below a threshold τ:
//!
//! * **FRR(τ)** — fraction of *genuine* re-readings with FHD ≥ τ;
//! * **FAR(τ)** — fraction of *impostor* responses with FHD < τ.
//!
//! Sweeping τ yields the trade-off curve and the equal error rate (EER).

/// One point of the FAR/FRR sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// Decision threshold on fractional Hamming distance.
    pub threshold: f64,
    /// False acceptance rate at this threshold.
    pub far: f64,
    /// False rejection rate at this threshold.
    pub frr: f64,
}

/// Computes FAR/FRR at a single threshold from genuine and impostor
/// distance samples.
///
/// # Panics
///
/// Panics if either distribution is empty.
pub fn error_rates(genuine_fhd: &[f64], impostor_fhd: &[f64], threshold: f64) -> ErrorRates {
    assert!(!genuine_fhd.is_empty(), "no genuine samples");
    assert!(!impostor_fhd.is_empty(), "no impostor samples");
    let frr =
        genuine_fhd.iter().filter(|&&d| d >= threshold).count() as f64 / genuine_fhd.len() as f64;
    let far =
        impostor_fhd.iter().filter(|&&d| d < threshold).count() as f64 / impostor_fhd.len() as f64;
    ErrorRates {
        threshold,
        far,
        frr,
    }
}

/// Sweeps `steps + 1` evenly spaced thresholds over `[0, 0.5]` and
/// returns the whole curve.
///
/// `steps == 0` degenerates to the single threshold `0.0` (the divisor
/// is clamped so no NaN threshold is ever produced).
pub fn sweep(genuine_fhd: &[f64], impostor_fhd: &[f64], steps: usize) -> Vec<ErrorRates> {
    let divisor = steps.max(1) as f64;
    (0..=steps)
        .map(|i| {
            let threshold = 0.5 * i as f64 / divisor;
            error_rates(genuine_fhd, impostor_fhd, threshold)
        })
        .collect()
}

/// Equal error rate: the FAR (≈ FRR) at the threshold where the curves
/// cross, linearly interpolated over the sweep.
///
/// # Panics
///
/// Panics if `curve` is empty — an empty sweep has no crossing point,
/// and silently reporting a worst-case 1.0 would hide the caller's bug.
pub fn equal_error_rate(curve: &[ErrorRates]) -> f64 {
    assert!(!curve.is_empty(), "EER needs a non-empty FAR/FRR curve");
    let mut best = f64::INFINITY;
    let mut eer = 1.0;
    for point in curve {
        let gap = (point.far - point.frr).abs();
        if gap < best {
            best = gap;
            eer = (point.far + point.frr) / 2.0;
        }
    }
    eer
}

/// Decidability index d' — the separation between genuine and impostor
/// FHD distributions in pooled-σ units. Larger is better; > 3 means the
/// distributions barely overlap.
pub fn decidability(genuine_fhd: &[f64], impostor_fhd: &[f64]) -> f64 {
    let stats = |v: &[f64]| {
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n.max(1.0);
        (mean, var)
    };
    let (mg, vg) = stats(genuine_fhd);
    let (mi, vi) = stats(impostor_fhd);
    (mi - mg).abs() / ((vg + vi) / 2.0).sqrt().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separated_distributions() {
        let genuine = vec![0.01, 0.02, 0.05];
        let impostor = vec![0.45, 0.5, 0.55];
        let rates = error_rates(&genuine, &impostor, 0.25);
        assert_eq!(rates.far, 0.0);
        assert_eq!(rates.frr, 0.0);
    }

    #[test]
    fn threshold_zero_rejects_everyone() {
        let genuine = vec![0.01, 0.02];
        let impostor = vec![0.4];
        let rates = error_rates(&genuine, &impostor, 0.0);
        assert_eq!(rates.frr, 1.0);
        assert_eq!(rates.far, 0.0);
    }

    #[test]
    fn large_threshold_accepts_everyone() {
        let genuine = vec![0.01];
        let impostor = vec![0.4, 0.45];
        let rates = error_rates(&genuine, &impostor, 0.5);
        assert_eq!(rates.frr, 0.0);
        assert_eq!(rates.far, 1.0);
    }

    #[test]
    fn sweep_is_monotone() {
        let genuine = vec![0.02, 0.03, 0.04, 0.1];
        let impostor = vec![0.3, 0.4, 0.45, 0.5];
        let curve = sweep(&genuine, &impostor, 50);
        for pair in curve.windows(2) {
            assert!(pair[1].far >= pair[0].far, "FAR must be non-decreasing");
            assert!(pair[1].frr <= pair[0].frr, "FRR must be non-increasing");
        }
    }

    #[test]
    fn eer_of_separated_distributions_is_zero() {
        let genuine = vec![0.01, 0.02, 0.05];
        let impostor = vec![0.45, 0.5];
        let curve = sweep(&genuine, &impostor, 100);
        assert_eq!(equal_error_rate(&curve), 0.0);
    }

    #[test]
    fn eer_of_overlapping_distributions_is_positive() {
        let genuine = vec![0.1, 0.2, 0.3, 0.4];
        let impostor = vec![0.2, 0.3, 0.4, 0.5];
        let curve = sweep(&genuine, &impostor, 100);
        assert!(equal_error_rate(&curve) > 0.1);
    }

    #[test]
    fn zero_step_sweep_is_one_finite_point() {
        let genuine = vec![0.01, 0.02];
        let impostor = vec![0.4];
        let curve = sweep(&genuine, &impostor, 0);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].threshold, 0.0);
        assert!(curve[0].far.is_finite() && curve[0].frr.is_finite());
    }

    #[test]
    #[should_panic(expected = "non-empty FAR/FRR curve")]
    fn eer_rejects_empty_curve() {
        equal_error_rate(&[]);
    }

    #[test]
    fn decidability_orders_quality() {
        let genuine_good = vec![0.01, 0.02, 0.03];
        let genuine_bad = vec![0.2, 0.3, 0.25];
        let impostor = vec![0.48, 0.5, 0.52];
        assert!(decidability(&genuine_good, &impostor) > decidability(&genuine_bad, &impostor));
    }
}
