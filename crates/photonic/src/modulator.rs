//! Mach–Zehnder optical modulator (OM in Fig. 2 of the paper).
//!
//! The ASIC drives the modulator with the challenge bit string at
//! 25 Gbit/s; the modulator imprints it onto the laser carrier as
//! amplitude samples which then enter the passive PUF architecture.
//!
//! Modeled as a push–pull MZI: bit 1 → constructive arm bias
//! (transmission near 1), bit 0 → near the null, with a finite extinction
//! ratio and process-random arm imbalance.

use crate::complex::Complex64;
use crate::environment::Environment;
use crate::process::DieSampler;

/// Bit rate of the modulator demonstrated in \[12\].
pub const NOMINAL_BIT_RATE_GBPS: f64 = 25.0;

/// How challenge bits are imprinted on the carrier.
///
/// §II-A: photonics offers "a much larger degree of freedom (e.g.,
/// phase, polarization, amplitude)". Phase modulation (BPSK) is the
/// security-preferred format: the instantaneous intensity carries *no*
/// challenge information, so after square-law detection every response
/// bit is a die-random quadratic form over challenge-bit *products* —
/// the structure that defeats linear modeling attacks (experiment E6
/// compares both formats).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModulationFormat {
    /// On-off keying with the given extinction ratio in dB.
    Ook {
        /// Power ratio between the 1 and 0 levels, dB.
        extinction_db: f64,
    },
    /// Binary phase-shift keying: bit 1 → +E, bit 0 → −E.
    Bpsk,
}

/// A push–pull Mach–Zehnder modulator.
#[derive(Debug, Clone)]
pub struct MachZehnderModulator {
    /// Modulation format.
    pub format: ModulationFormat,
    /// Process-random arm phase imbalance (radians).
    pub arm_imbalance: f64,
    /// Insertion amplitude loss.
    pub insertion: f64,
    /// Bit rate in Gbit/s (one output sample per bit).
    pub bit_rate_gbps: f64,
}

impl MachZehnderModulator {
    /// Builds a 25 Gb/s BPSK modulator with the die's process
    /// perturbations.
    pub fn sampled(die: &mut DieSampler) -> Self {
        Self::sampled_with_format(ModulationFormat::Bpsk, die)
    }

    /// Builds a modulator with an explicit format.
    pub fn sampled_with_format(format: ModulationFormat, die: &mut DieSampler) -> Self {
        MachZehnderModulator {
            format,
            arm_imbalance: die.coupling_offset(),
            insertion: die.loss_factor(0.89), // ~1 dB insertion loss
            bit_rate_gbps: NOMINAL_BIT_RATE_GBPS,
        }
    }

    /// Bit period in nanoseconds.
    pub fn bit_period_ns(&self) -> f64 {
        1.0 / self.bit_rate_gbps
    }

    /// Duration of an `n`-bit challenge in nanoseconds. §IV notes the
    /// response exists for "below 100 ns" — a 64-bit challenge at
    /// 25 Gb/s occupies 2.56 ns.
    pub fn burst_duration_ns(&self, bits: usize) -> f64 {
        bits as f64 * self.bit_period_ns()
    }

    /// Modulates a challenge bit string onto a CW carrier of amplitude
    /// `carrier`, producing one complex field sample per bit.
    pub fn modulate(&self, carrier: Complex64, bits: &[u8], env: &Environment) -> Vec<Complex64> {
        let imbalance = Complex64::from_polar(1.0, self.arm_imbalance + env.delta_t() * 1e-4);
        bits.iter()
            .map(|&bit| {
                let symbol = match self.format {
                    ModulationFormat::Ook { extinction_db } => {
                        let floor = 10f64.powf(-extinction_db / 20.0);
                        if bit & 1 == 1 {
                            1.0
                        } else {
                            floor
                        }
                    }
                    ModulationFormat::Bpsk => {
                        if bit & 1 == 1 {
                            1.0
                        } else {
                            -1.0
                        }
                    }
                };
                carrier.scale(symbol * self.insertion) * imbalance
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{DieId, ProcessVariation};

    fn modulator() -> MachZehnderModulator {
        let mut die = DieSampler::new(DieId(21), ProcessVariation::typical_soi());
        MachZehnderModulator::sampled(&mut die)
    }

    fn ook_modulator() -> MachZehnderModulator {
        let mut die = DieSampler::new(DieId(21), ProcessVariation::typical_soi());
        MachZehnderModulator::sampled_with_format(
            ModulationFormat::Ook {
                extinction_db: 20.0,
            },
            &mut die,
        )
    }

    #[test]
    fn ook_ones_carry_more_power_than_zeros() {
        let m = ook_modulator();
        let out = m.modulate(Complex64::ONE, &[1, 0, 1, 0], &Environment::nominal());
        assert!(out[0].norm_sqr() > 10.0 * out[1].norm_sqr());
        assert!((out[0].norm_sqr() - out[2].norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn ook_extinction_ratio_is_respected() {
        let m = ook_modulator();
        let out = m.modulate(Complex64::ONE, &[1, 0], &Environment::nominal());
        let er_db = 10.0 * (out[0].norm_sqr() / out[1].norm_sqr()).log10();
        assert!((er_db - 20.0).abs() < 0.1, "extinction {er_db} dB");
    }

    #[test]
    fn bpsk_has_constant_envelope_and_antipodal_phase() {
        let m = modulator();
        let out = m.modulate(Complex64::ONE, &[1, 0], &Environment::nominal());
        assert!((out[0].norm_sqr() - out[1].norm_sqr()).abs() < 1e-15);
        let relative = out[0] / out[1];
        assert!(
            (relative.re + 1.0).abs() < 1e-12,
            "symbols must be antipodal"
        );
    }

    #[test]
    fn burst_fits_in_100ns_window() {
        let m = modulator();
        // Even a 2048-bit challenge stays within the paper's <100 ns
        // response window at 25 Gb/s.
        assert!(m.burst_duration_ns(2048) < 100.0);
        assert!((m.burst_duration_ns(64) - 2.56).abs() < 1e-12);
    }

    #[test]
    fn output_length_matches_challenge() {
        let m = modulator();
        let out = m.modulate(Complex64::ONE, &[1; 77], &Environment::nominal());
        assert_eq!(out.len(), 77);
    }

    #[test]
    fn modulator_is_passive() {
        let m = modulator();
        for sample in m.modulate(Complex64::ONE, &[1, 1, 0, 1], &Environment::nominal()) {
            assert!(sample.norm_sqr() <= 1.0);
        }
    }
}
