//! Regenerates the concurrent-gateway throughput study (E20).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, _) = experiments::gateway::run(Scale::from_args());
    print!("{out}");
}
