//! Remote software attestation — §III-B.
//!
//! The Verifier sends a timestamp `t` and a challenge `c₁`. The Device
//! computes `r₁ = pPUF(c₁)`, seeds `RNG(r₁ + t)` to generate a random
//! walk `m₁…mₙ` over its memory, and folds chunk after chunk into a hash
//! chain `h_{i+1} = HASH(m_{i+1}, r_{i+1}, h_i)` where each `r_{i+1} =
//! pPUF(r_i)` is the next link of a PUF chain. The final `hₙ` returns to
//! the Verifier, which recomputes it from its own memory copy and pPUF
//! model and enforces a temporal constraint.
//!
//! The pPUF's ≥5 Gb/s response generation means the PUF chain never
//! stalls the hash walk, so the time bound can be set tight — tight
//! enough that an adversary who must *relocate* compromised regions
//! during the walk (the classic hide-and-seek attack) cannot finish in
//! time. Experiment E5 measures exactly that margin, including the
//! ablation with a slow PUF where the bound must be loosened and the
//! attack fits inside it.

use crate::error::ProtocolError;
use neuropuls_crypto::ct::ct_eq;
use neuropuls_crypto::prng::CsPrng;
use neuropuls_crypto::sha256::Sha256;
use neuropuls_puf::bits::{Challenge, Response};
use neuropuls_puf::photonic::PhotonicPuf;

/// Size of one memory chunk in the walk, bytes.
pub const CHUNK_BYTES: usize = 64;

/// The attestation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationRequest {
    /// Verifier timestamp (monotonic nanoseconds).
    pub timestamp_ns: u64,
    /// Initial PUF challenge.
    pub challenge: Challenge,
}

/// The device's report.
#[derive(Debug, Clone, PartialEq)]
pub struct AttestationReport {
    /// Final hash of the chain.
    pub final_hash: [u8; 32],
    /// Device-measured walk duration in nanoseconds (simulated time).
    pub elapsed_ns: f64,
}

/// Timing model of the attesting device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Hash throughput in bytes per nanosecond (≈ GB/s).
    pub hash_bytes_per_ns: f64,
    /// PUF response latency per link, nanoseconds.
    pub puf_latency_ns: f64,
    /// Whether PUF evaluation overlaps hashing (the pipelining §III-B
    /// relies on). When false (slow-PUF ablation) the latencies add.
    pub pipelined: bool,
}

impl TimingModel {
    /// The photonic platform: ~1 GB/s hashing, ~6 ns pPUF, pipelined.
    pub fn photonic() -> Self {
        TimingModel {
            hash_bytes_per_ns: 1.0,
            puf_latency_ns: 6.0,
            pipelined: true,
        }
    }

    /// A slow electronic PUF (e.g. RO-based, one counting window per
    /// link) that cannot be pipelined away.
    pub fn slow_electronic() -> Self {
        TimingModel {
            hash_bytes_per_ns: 1.0,
            puf_latency_ns: 20_000.0,
            pipelined: false,
        }
    }

    /// Nanoseconds to process one chunk.
    pub fn chunk_ns(&self) -> f64 {
        let hash_ns = CHUNK_BYTES as f64 / self.hash_bytes_per_ns;
        if self.pipelined {
            hash_ns.max(self.puf_latency_ns)
        } else {
            hash_ns + self.puf_latency_ns
        }
    }
}

/// Computes the random walk order for a memory of `chunks` chunks.
/// Every chunk is visited exactly once (a seeded permutation), so no
/// region escapes hashing.
fn walk_order(seed_response: &Response, timestamp_ns: u64, chunks: usize) -> Vec<usize> {
    let mut seed = seed_response.to_packed();
    seed.extend_from_slice(&timestamp_ns.to_le_bytes());
    let mut prng = CsPrng::from_seed_bytes(&seed);
    let mut order: Vec<usize> = (0..chunks).collect();
    // Fisher–Yates with the shared deterministic PRNG.
    for i in (1..chunks).rev() {
        let j = prng.next_below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    order
}

fn response_to_challenge(r: &Response, width: usize) -> Challenge {
    // The paper chains r_{i+1} = pPUF(r_i): widen/narrow the response to
    // the challenge width through a hash for width safety.
    let digest = Sha256::digest(&r.to_packed());
    let mut bits = Vec::with_capacity(width);
    let mut counter = 0u8;
    let mut block = digest;
    loop {
        for byte in block {
            for i in 0..8 {
                if bits.len() == width {
                    return Challenge::from_bits(bits);
                }
                bits.push((byte >> i) & 1);
            }
        }
        counter = counter.wrapping_add(1);
        let mut next = digest.to_vec();
        next.push(counter);
        block = Sha256::digest(&next);
    }
}

/// Walks `memory` producing the hash chain. Shared verbatim by the
/// Device (on its real memory) and the Verifier (on its golden copy with
/// the pPUF model) — which is the point: any divergence in memory or PUF
/// identity diverges the chain.
///
/// # Errors
///
/// Propagates PUF errors.
pub fn compute_attestation(
    puf: &mut PhotonicPuf,
    memory: &[u8],
    request: &AttestationRequest,
) -> Result<[u8; 32], ProtocolError> {
    let chunks = memory.len().div_ceil(CHUNK_BYTES).max(1);
    let mut response = puf.respond_deterministic(&request.challenge)?;
    let order = walk_order(&response, request.timestamp_ns, chunks);

    let mut hash = [0u8; 32];
    for (step, &chunk_idx) in order.iter().enumerate() {
        let start = chunk_idx * CHUNK_BYTES;
        let end = (start + CHUNK_BYTES).min(memory.len());
        let chunk = memory.get(start..end).unwrap_or(&[]);
        hash = Sha256::digest_parts(&[chunk, &response.to_packed(), &hash]);
        if step + 1 < order.len() {
            let next_challenge = response_to_challenge(&response, puf.config().challenge_bits);
            response = puf.respond_deterministic(&next_challenge)?;
        }
    }
    Ok(hash)
}

/// The attesting device.
#[derive(Debug)]
pub struct AttestingDevice {
    puf: PhotonicPuf,
    memory: Vec<u8>,
    timing: TimingModel,
    /// Extra nanoseconds per chunk spent by a hide-and-seek adversary
    /// remapping its compromised region (0 for an honest device).
    pub adversary_overhead_ns: f64,
}

impl AttestingDevice {
    /// Creates an honest device.
    pub fn new(puf: PhotonicPuf, memory: Vec<u8>, timing: TimingModel) -> Self {
        AttestingDevice {
            puf,
            memory,
            timing,
            adversary_overhead_ns: 0.0,
        }
    }

    /// Memory size in bytes.
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }

    /// Mutates a memory byte (compromise).
    pub fn corrupt_memory(&mut self, offset: usize, value: u8) {
        if let Some(b) = self.memory.get_mut(offset) {
            *b = value;
        }
    }

    /// Runs the walk and reports.
    ///
    /// # Errors
    ///
    /// Propagates PUF errors.
    pub fn attest(
        &mut self,
        request: &AttestationRequest,
    ) -> Result<AttestationReport, ProtocolError> {
        let final_hash = compute_attestation(&mut self.puf, &self.memory, request)?;
        let chunks = self.memory.len().div_ceil(CHUNK_BYTES).max(1) as f64;
        let elapsed_ns = chunks * (self.timing.chunk_ns() + self.adversary_overhead_ns);
        Ok(AttestationReport {
            final_hash,
            elapsed_ns,
        })
    }
}

/// The attestation verifier: golden memory copy + pPUF model.
#[derive(Debug)]
pub struct AttestationVerifier {
    puf_model: PhotonicPuf,
    golden_memory: Vec<u8>,
    timing: TimingModel,
    /// Slack multiplier on the expected duration (e.g. 1.2 = 20 %).
    pub slack: f64,
    rng: CsPrng,
    clock_ns: u64,
}

impl AttestationVerifier {
    /// Creates the verifier. `puf_model` must model the *same die* as
    /// the device's PUF (the §III-B assumption of a PUF model held by
    /// the verifier).
    pub fn new(puf_model: PhotonicPuf, golden_memory: Vec<u8>, timing: TimingModel) -> Self {
        AttestationVerifier {
            puf_model,
            golden_memory,
            timing,
            slack: 1.2,
            rng: CsPrng::from_seed_bytes(b"attestation-verifier"),
            clock_ns: 0,
        }
    }

    /// Issues a fresh request.
    pub fn begin(&mut self) -> AttestationRequest {
        self.clock_ns += 1_000_000; // clock advances between requests
        let mut packed = vec![0u8; self.puf_model.config().challenge_bits.div_ceil(8)];
        self.rng.fill(&mut packed);
        AttestationRequest {
            timestamp_ns: self.clock_ns,
            challenge: Challenge::from_packed(&packed, self.puf_model.config().challenge_bits),
        }
    }

    /// Temporal bound for a device of `memory_len` bytes.
    pub fn allowed_ns(&self, memory_len: usize) -> f64 {
        let chunks = memory_len.div_ceil(CHUNK_BYTES).max(1) as f64;
        chunks * self.timing.chunk_ns() * self.slack
    }

    /// Checks a report against the golden state and the temporal
    /// constraint.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AttestationDigestMismatch`] on hash divergence;
    /// [`ProtocolError::AttestationTimeout`] when the walk took too
    /// long.
    pub fn verify(
        &mut self,
        request: &AttestationRequest,
        report: &AttestationReport,
    ) -> Result<(), ProtocolError> {
        let allowed_ns = self.allowed_ns(self.golden_memory.len());
        if report.elapsed_ns > allowed_ns {
            return Err(ProtocolError::AttestationTimeout {
                measured_ns: report.elapsed_ns,
                allowed_ns,
            });
        }
        let golden_memory = self.golden_memory.clone();
        let expected = compute_attestation(&mut self.puf_model, &golden_memory, request)?;
        if !ct_eq(&expected, &report.final_hash) {
            return Err(ProtocolError::AttestationDigestMismatch);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wire sessions
// ---------------------------------------------------------------------------

use crate::transport::{Channel, Transport};
use crate::wire::{
    classify, drive_report, resend_or_wait, Arq, AttestationMsg, Envelope, Incoming, NextWake,
    ProtocolId, Session, SessionAction, SessionConfig, SessionReport, DEFAULT_MAX_TICKS,
};
use neuropuls_rt::codec::ToBytes;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireAttVerifierState {
    Start,
    AwaitReport,
    Done,
}

/// The attestation verifier as a wire session: sends the timestamped
/// challenge, awaits the report, verifies digest and temporal bound.
///
/// A rejected report burns a retry and re-elicits the device's stored
/// report frame — so a report corrupted *in transit* recovers, while a
/// genuinely diverging device fails with the protocol-level error once
/// the budget is exhausted.
pub struct WireAttestationVerifier<'a> {
    verifier: &'a mut AttestationVerifier,
    session: u64,
    arq: Arq,
    state: WireAttVerifierState,
    request: Option<AttestationRequest>,
    last_reject: Option<ProtocolError>,
}

impl<'a> WireAttestationVerifier<'a> {
    /// Wraps `verifier` for one wire session identified by `session`.
    pub fn new(verifier: &'a mut AttestationVerifier, session: u64, cfg: SessionConfig) -> Self {
        WireAttestationVerifier {
            verifier,
            session,
            arq: Arq::new(cfg),
            state: WireAttVerifierState::Start,
            request: None,
            last_reject: None,
        }
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }
}

impl Session for WireAttestationVerifier<'_> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            WireAttVerifierState::Start => {
                let request = self.verifier.begin();
                let frame = Envelope::pack(
                    ProtocolId::Attestation,
                    self.session,
                    0,
                    &AttestationMsg::Request(request.clone()),
                )
                .to_bytes();
                self.request = Some(request);
                self.arq.sent(&frame);
                self.state = WireAttVerifierState::AwaitReport;
                Ok(SessionAction::Send(frame))
            }
            WireAttVerifierState::AwaitReport => {
                match classify::<AttestationMsg>(
                    incoming,
                    ProtocolId::Attestation,
                    Some(self.session),
                    1,
                ) {
                    Incoming::Msg(_, AttestationMsg::Report(report)) => {
                        self.arq.activity();
                        let request = self.request.clone().ok_or_else(|| {
                            ProtocolError::OutOfOrder("report before request".into())
                        })?;
                        match self.verifier.verify(&request, &report) {
                            Ok(()) => {
                                self.state = WireAttVerifierState::Done;
                                Ok(SessionAction::Done)
                            }
                            Err(e) => self.rejected(e),
                        }
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            WireAttVerifierState::Done => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.state == WireAttVerifierState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            WireAttVerifierState::Start => NextWake::In(0),
            WireAttVerifierState::AwaitReport => NextWake::In(self.arq.ticks_to_fire()),
            WireAttVerifierState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireAttDeviceState {
    AwaitRequest,
    Done,
}

/// The attesting device as a wire session: awaits the challenge, runs
/// the walk once, reports — then lingers, answering retransmitted
/// requests with the stored report frame (the walk is *not* re-run, so
/// the reported timing stays that of the single genuine execution).
pub struct WireAttestingDevice<'a> {
    device: &'a mut AttestingDevice,
    session: Option<u64>,
    arq: Arq,
    state: WireAttDeviceState,
}

impl<'a> WireAttestingDevice<'a> {
    /// Wraps `device` for one wire session; the session id is latched
    /// from the first request envelope.
    pub fn new(device: &'a mut AttestingDevice, cfg: SessionConfig) -> Self {
        WireAttestingDevice {
            device,
            session: None,
            arq: Arq::new(cfg),
            state: WireAttDeviceState::AwaitRequest,
        }
    }
}

impl Session for WireAttestingDevice<'_> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            WireAttDeviceState::AwaitRequest => {
                match classify::<AttestationMsg>(incoming, ProtocolId::Attestation, self.session, 0)
                {
                    Incoming::Msg(session, AttestationMsg::Request(request)) => {
                        self.arq.activity();
                        self.session = Some(session);
                        // A PUF failure is a device fault: fail at once.
                        let report = self.device.attest(&request)?;
                        let frame = Envelope::pack(
                            ProtocolId::Attestation,
                            session,
                            1,
                            &AttestationMsg::Report(report),
                        )
                        .to_bytes();
                        self.arq.sent(&frame);
                        self.state = WireAttDeviceState::Done;
                        Ok(SessionAction::Send(frame))
                    }
                    Incoming::Msg(..) | Incoming::Duplicate | Incoming::Noise => {
                        match self.arq.idle() {
                            Ok(frame) => Ok(resend_or_wait(frame)),
                            Err(e) => Err(e),
                        }
                    }
                }
            }
            WireAttDeviceState::Done => {
                // Linger: a retransmitted request means the verifier
                // missed the report — resend the stored frame.
                match classify::<AttestationMsg>(incoming, ProtocolId::Attestation, self.session, 1)
                {
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    _ => Ok(SessionAction::Wait),
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.state == WireAttDeviceState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            WireAttDeviceState::AwaitRequest => NextWake::In(self.arq.ticks_to_fire()),
            WireAttDeviceState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

/// Runs one attestation round over `channel` (verifier =
/// [`Side::A`](crate::transport::Side::A), device =
/// [`Side::B`](crate::transport::Side::B)), recording wire activity
/// into `tracer` (pass
/// [`Tracer::disabled`](neuropuls_rt::trace::Tracer::disabled) for an
/// untraced run).
pub fn run_wire_attestation<T: Transport>(
    channel: &mut T,
    device: &mut AttestingDevice,
    verifier: &mut AttestationVerifier,
    session_id: u64,
    cfg: SessionConfig,
    tracer: &mut neuropuls_rt::trace::Tracer,
) -> SessionReport {
    let mut v = WireAttestationVerifier::new(verifier, session_id, cfg);
    let mut d = WireAttestingDevice::new(device, cfg);
    drive_report(channel, &mut v, &mut d, DEFAULT_MAX_TICKS, tracer)
}

/// Runs one attestation round over a perfect in-memory channel.
///
/// # Errors
///
/// Propagates the first protocol failure (digest mismatch, temporal
/// violation, or PUF error).
pub fn run_attestation(
    device: &mut AttestingDevice,
    verifier: &mut AttestationVerifier,
) -> Result<(), ProtocolError> {
    let mut channel = Channel::new();
    run_wire_attestation(
        &mut channel,
        device,
        verifier,
        0,
        SessionConfig::default(),
        &mut neuropuls_rt::trace::Tracer::disabled(),
    )
    .result
    .map(|_ticks| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;

    const MEM_LEN: usize = 4096;

    fn setup(die: u64) -> (AttestingDevice, AttestationVerifier) {
        let memory: Vec<u8> = (0..MEM_LEN).map(|i| (i * 31 % 251) as u8).collect();
        let device_puf = PhotonicPuf::reference(DieId(die), 1);
        let model_puf = PhotonicPuf::reference(DieId(die), 2); // same die, own noise stream
        let timing = TimingModel::photonic();
        (
            AttestingDevice::new(device_puf, memory.clone(), timing),
            AttestationVerifier::new(model_puf, memory, timing),
        )
    }

    #[test]
    fn honest_device_passes() {
        let (mut device, mut verifier) = setup(1);
        let request = verifier.begin();
        let report = device.attest(&request).unwrap();
        verifier.verify(&request, &report).unwrap();
    }

    #[test]
    fn repeated_attestations_use_fresh_walks() {
        let (mut device, mut verifier) = setup(2);
        let r1 = verifier.begin();
        let rep1 = device.attest(&r1).unwrap();
        let r2 = verifier.begin();
        let rep2 = device.attest(&r2).unwrap();
        assert_ne!(
            rep1.final_hash, rep2.final_hash,
            "walks must differ per request"
        );
        verifier.verify(&r1, &rep1).unwrap();
        verifier.verify(&r2, &rep2).unwrap();
    }

    #[test]
    fn single_byte_compromise_is_detected() {
        let (mut device, mut verifier) = setup(3);
        device.corrupt_memory(1234, 0xEE);
        let request = verifier.begin();
        let report = device.attest(&request).unwrap();
        assert_eq!(
            verifier.verify(&request, &report),
            Err(ProtocolError::AttestationDigestMismatch)
        );
    }

    #[test]
    fn hide_and_seek_adversary_misses_the_deadline() {
        let (mut device, mut verifier) = setup(4);
        // The adversary relocates its payload ahead of the walk: it
        // produces the *correct* hash but pays per-chunk remap time.
        device.adversary_overhead_ns = TimingModel::photonic().chunk_ns();
        let request = verifier.begin();
        let report = device.attest(&request).unwrap();
        assert!(matches!(
            verifier.verify(&request, &report),
            Err(ProtocolError::AttestationTimeout { .. })
        ));
    }

    #[test]
    fn slow_puf_forces_loose_bound_that_admits_the_attack() {
        // Ablation: with a slow, unpipelined PUF the per-chunk time is
        // dominated by the PUF, the verifier's bound balloons, and the
        // same adversary overhead now *fits inside* the bound.
        let memory: Vec<u8> = vec![7; MEM_LEN];
        let device_puf = PhotonicPuf::reference(DieId(5), 1);
        let model_puf = PhotonicPuf::reference(DieId(5), 2);
        let timing = TimingModel::slow_electronic();
        let mut device = AttestingDevice::new(device_puf, memory.clone(), timing);
        let mut verifier = AttestationVerifier::new(model_puf, memory, timing);
        device.adversary_overhead_ns = TimingModel::photonic().chunk_ns();
        let request = verifier.begin();
        let report = device.attest(&request).unwrap();
        assert!(
            verifier.verify(&request, &report).is_ok(),
            "slow-PUF bound should fail to catch the fast adversary"
        );
    }

    #[test]
    fn wrong_die_model_rejects_genuine_device() {
        // If the verifier models the wrong die, even an honest device
        // fails — the PUF chain is die-bound.
        let memory: Vec<u8> = vec![1; MEM_LEN];
        let device_puf = PhotonicPuf::reference(DieId(6), 1);
        let wrong_model = PhotonicPuf::reference(DieId(7), 1);
        let timing = TimingModel::photonic();
        let mut device = AttestingDevice::new(device_puf, memory.clone(), timing);
        let mut verifier = AttestationVerifier::new(wrong_model, memory, timing);
        let request = verifier.begin();
        let report = device.attest(&request).unwrap();
        assert_eq!(
            verifier.verify(&request, &report),
            Err(ProtocolError::AttestationDigestMismatch)
        );
    }

    #[test]
    fn walk_covers_every_chunk_exactly_once() {
        let response = Response::from_u64(0x1234, 64);
        let order = walk_order(&response, 42, 100);
        let mut seen = [false; 100];
        for &idx in &order {
            assert!(!seen[idx], "chunk {idx} visited twice");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn walk_depends_on_timestamp_and_response() {
        let r = Response::from_u64(0x1, 64);
        let a = walk_order(&r, 1, 64);
        let b = walk_order(&r, 2, 64);
        assert_ne!(a, b, "timestamp must randomize the walk");
        let r2 = Response::from_u64(0x2, 64);
        let c = walk_order(&r2, 1, 64);
        assert_ne!(a, c, "response must randomize the walk");
    }

    #[test]
    fn photonic_timing_is_hash_bound() {
        // §III-B: the pPUF never slows the protocol down.
        let t = TimingModel::photonic();
        assert_eq!(t.chunk_ns(), CHUNK_BYTES as f64 / t.hash_bytes_per_ns);
    }
}
