//! Mutual authentication — the HSC-IoT-style protocol of §III-A and
//! Fig. 4.
//!
//! A single CRP is the shared secret; it is refreshed at every session:
//!
//! ```text
//! Verifier                                  Device
//!    |------------ AuthRequest(N_v) --------->|
//!    |                                        | c_{i+1} = RNG(r_i)
//!    |                                        | r_{i+1} = PUF(c_{i+1})
//!    |<-- m = (r_{i+1}^r_i) || H || CC || N,  |
//!    |        MAC(m, r_i) ---------------------|
//!    | verify MAC with stored r_i             |
//!    | r_{i+1} = unmask                       |
//!    |--------- MAC(c_{i+1}, r_{i+1}) ------->|
//!    |                                        | verify → commit c_{i+1}
//! ```
//!
//! Only one CRP is stored by the Verifier at any time (plus the previous
//! one for loss recovery); CRPs never travel in clear text.
//!
//! The Device canonicalizes its noisy PUF readings with an on-device
//! code-offset secure sketch, so the MAC keys match the Verifier's
//! stored copy bit-for-bit; a reading beyond the code's correction
//! capacity surfaces as an authentication failure (the FRR measured in
//! experiment E4).

use crate::error::ProtocolError;
use neuropuls_crypto::ct::ct_eq;
use neuropuls_crypto::ecc::ConcatenatedCode;
use neuropuls_crypto::fuzzy::SecureSketch;
use neuropuls_crypto::hmac::HmacSha256;
use neuropuls_crypto::prng::CsPrng;
use neuropuls_crypto::sha256::Sha256;
use neuropuls_puf::bits::{Challenge, Response};
use neuropuls_puf::traits::Puf;
use neuropuls_rt::RngCore;

/// Message 1: the Verifier's authentication request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthRequest {
    /// Verifier nonce for freshness.
    pub verifier_nonce: [u8; 16],
}

/// Message 2: the Device's authenticated update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAuth {
    /// `r_{i+1} ⊕ r_i` (packed bits).
    pub masked_response: Vec<u8>,
    /// Hash of the device memory (software-integrity evidence).
    pub memory_hash: [u8; 32],
    /// Clock count: cycles the device reports for its integrity check
    /// task.
    pub clock_count: u64,
    /// Device nonce.
    pub device_nonce: [u8; 16],
    /// HMAC over all fields plus the verifier nonce, keyed with `r_i`.
    pub mac: [u8; 32],
}

/// Message 3: the Verifier's proof of knowledge of the fresh secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifierConfirm {
    /// HMAC over the new challenge and the device nonce, keyed with
    /// `r_{i+1}`.
    pub mac: [u8; 32],
}

fn derive_challenge(response: &Response, width: usize) -> Challenge {
    let mut prng = CsPrng::from_seed_bytes(&response.to_packed());
    let mut packed = vec![0u8; width.div_ceil(8)];
    prng.fill(&mut packed);
    Challenge::from_packed(&packed, width)
}

fn device_mac_input(
    masked: &[u8],
    memory_hash: &[u8; 32],
    clock_count: u64,
    device_nonce: &[u8; 16],
    verifier_nonce: &[u8; 16],
) -> Vec<u8> {
    let mut input = Vec::with_capacity(masked.len() + 32 + 8 + 32);
    input.extend_from_slice(masked);
    input.extend_from_slice(memory_hash);
    input.extend_from_slice(&clock_count.to_le_bytes());
    input.extend_from_slice(device_nonce);
    input.extend_from_slice(verifier_nonce);
    input
}

/// The device side of the protocol.
///
/// Generic over the strong PUF; holds the current challenge and the
/// on-device helper data that canonicalizes noisy readings.
#[derive(Debug)]
pub struct Device<P: Puf> {
    puf: P,
    sketch: SecureSketch<ConcatenatedCode>,
    current_challenge: Challenge,
    current_helper: Vec<u8>,
    /// Pending update, committed only after the verifier confirms.
    pending: Option<(Challenge, Vec<u8>, Response)>,
    /// The device's firmware memory (hashed as integrity evidence).
    memory: Vec<u8>,
    /// Simulated cycles needed for the self-check task.
    clock_count: u64,
    reads_per_eval: usize,
    rng: CsPrng,
}

/// Manufacturing-time provisioning output: the verifier's initial state.
#[derive(Debug, Clone)]
pub struct ProvisionedVerifier {
    /// Canonical current response `r_0`.
    pub current_response: Response,
    /// Previous response kept for loss recovery (None initially).
    pub previous_response: Option<Response>,
    /// Expected device memory hash.
    pub expected_memory_hash: [u8; 32],
    /// Maximum plausible clock count for the self-check task.
    pub max_clock_count: u64,
}

impl<P: Puf> Device<P> {
    /// Provisions a device and its verifier state at manufacturing time:
    /// picks the initial challenge `c_0`, canonicalizes `r_0`, and hands
    /// the verifier its copy.
    ///
    /// # Errors
    ///
    /// Propagates PUF and sketch errors.
    pub fn provision(
        mut puf: P,
        memory: Vec<u8>,
        provisioning_seed: &[u8],
    ) -> Result<(Self, ProvisionedVerifier), ProtocolError> {
        let sketch = SecureSketch::new(ConcatenatedCode::new(3));
        let mut rng = CsPrng::from_seed_bytes(provisioning_seed);
        let width = puf.challenge_bits();
        let mut packed = vec![0u8; width.div_ceil(8)];
        rng.fill(&mut packed);
        let c0 = Challenge::from_packed(&packed, width);

        let usable = sketch.usable_bits(puf.response_bits());
        let golden = puf.respond_golden(&c0, 9)?;
        let canonical = Response::from_bits(golden.bits()[..usable].to_vec());
        let helper = sketch.sketch(canonical.bits(), &mut rng)?;

        let memory_hash = Sha256::digest(&memory);
        let clock_count = 1000 + memory.len() as u64 / 16;

        let device = Device {
            puf,
            sketch,
            current_challenge: c0,
            current_helper: helper,
            pending: None,
            memory,
            clock_count,
            reads_per_eval: 5,
            rng,
        };
        let verifier = ProvisionedVerifier {
            current_response: canonical,
            previous_response: None,
            expected_memory_hash: memory_hash,
            max_clock_count: clock_count + clock_count / 4,
        };
        Ok((device, verifier))
    }

    /// Recomputes the canonical current response from the physical PUF.
    fn current_response(&mut self) -> Result<Response, ProtocolError> {
        let usable = self.current_helper.len();
        let golden = self
            .puf
            .respond_golden(&self.current_challenge, self.reads_per_eval)?;
        let recovered = self
            .sketch
            .recover(&golden.bits()[..usable], &self.current_helper)?;
        Ok(Response::from_bits(recovered))
    }

    /// Tampers with the device memory (test hook for integrity-failure
    /// scenarios).
    pub fn corrupt_memory(&mut self, offset: usize, value: u8) {
        if let Some(byte) = self.memory.get_mut(offset) {
            *byte = value;
        }
    }

    /// Handles an authentication request, producing the device message.
    ///
    /// # Errors
    ///
    /// Fails when the PUF reading cannot be canonicalized (too noisy).
    pub fn respond_to_request(
        &mut self,
        request: &AuthRequest,
    ) -> Result<DeviceAuth, ProtocolError> {
        let r_i = self.current_response()?;

        // Derive the fresh CRP.
        let c_next = derive_challenge(&r_i, self.puf.challenge_bits());
        let usable = self.sketch.usable_bits(self.puf.response_bits());
        let golden = self.puf.respond_golden(&c_next, self.reads_per_eval)?;
        let canonical_next = Response::from_bits(golden.bits()[..usable].to_vec());
        let helper_next = self.sketch.sketch(canonical_next.bits(), &mut self.rng)?;

        let masked_response = canonical_next.xor(&r_i).to_packed();
        let memory_hash = Sha256::digest(&self.memory);
        let mut device_nonce = [0u8; 16];
        self.rng.fill_bytes(&mut device_nonce);

        let mac_input = device_mac_input(
            &masked_response,
            &memory_hash,
            self.clock_count,
            &device_nonce,
            &request.verifier_nonce,
        );
        let mac = HmacSha256::mac(&r_i.to_packed(), &mac_input);

        self.pending = Some((c_next, helper_next, canonical_next));
        Ok(DeviceAuth {
            masked_response,
            memory_hash,
            clock_count: self.clock_count,
            device_nonce,
            mac,
        })
    }

    /// Verifies the verifier's confirmation and commits the CRP update.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OutOfOrder`] without a pending session;
    /// [`ProtocolError::AuthenticationFailed`] on a bad confirmation
    /// (no state is committed in that case).
    pub fn process_confirmation(&mut self, confirm: &VerifierConfirm) -> Result<(), ProtocolError> {
        let Some((c_next, helper_next, r_next)) = self.pending.take() else {
            return Err(ProtocolError::OutOfOrder(
                "confirmation without session".into(),
            ));
        };
        let expected = HmacSha256::mac_parts(
            &r_next.to_packed(),
            &[&c_next.to_packed(), b"verifier-confirm"],
        );
        if !ct_eq(&expected, &confirm.mac) {
            // Restore the pending update: a forged confirmation must not
            // abort the session, a genuine one may still arrive.
            self.pending = Some((c_next, helper_next, r_next));
            return Err(ProtocolError::AuthenticationFailed(
                "verifier confirmation MAC invalid".into(),
            ));
        }
        self.current_challenge = c_next;
        self.current_helper = helper_next;
        Ok(())
    }

    /// Number of PUF reads per canonicalized evaluation.
    pub fn reads_per_eval(&self) -> usize {
        self.reads_per_eval
    }

    /// Aborts a half-open session (no confirmation arrived); the pending
    /// CRP update is discarded and the current CRP stays in force.
    pub fn abort_session(&mut self) {
        self.pending = None;
    }
}

/// The verifier side of the protocol.
#[derive(Debug)]
pub struct Verifier {
    state: ProvisionedVerifier,
    seen_device_nonces: Vec<[u8; 16]>,
    rng: CsPrng,
    desync_recoveries: u64,
}

impl Verifier {
    /// Creates the verifier from its provisioning record.
    pub fn new(state: ProvisionedVerifier, rng_seed: &[u8]) -> Self {
        Verifier {
            state,
            seen_device_nonces: Vec::new(),
            rng: CsPrng::from_seed_bytes(rng_seed),
            desync_recoveries: 0,
        }
    }

    /// Sessions authenticated via the stored *previous* response — i.e.
    /// recoveries from a lost `VerifierConfirm` that left the device one
    /// CRP behind.
    pub fn desync_recoveries(&self) -> u64 {
        self.desync_recoveries
    }

    /// Storage the verifier needs, in bytes — one CRP regardless of how
    /// many sessions run (compare experiment E4's database baseline).
    pub fn storage_bytes(&self) -> usize {
        let r = self.state.current_response.len().div_ceil(8);
        r + self
            .state
            .previous_response
            .as_ref()
            .map_or(0, |p| p.len().div_ceil(8))
            + 32 // expected memory hash
    }

    /// Starts a session.
    pub fn begin_session(&mut self) -> AuthRequest {
        let mut verifier_nonce = [0u8; 16];
        self.rng.fill_bytes(&mut verifier_nonce);
        AuthRequest { verifier_nonce }
    }

    /// Processes the device's message: authenticates the device, checks
    /// integrity evidence, and produces the confirmation.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::OutOfOrder`] without `begin_session`;
    /// [`ProtocolError::Replay`] on a reused device nonce;
    /// [`ProtocolError::AuthenticationFailed`] on MAC, memory-hash or
    /// clock-count failure.
    pub fn process_device_auth(
        &mut self,
        request: &AuthRequest,
        msg: &DeviceAuth,
    ) -> Result<VerifierConfirm, ProtocolError> {
        if self.seen_device_nonces.contains(&msg.device_nonce) {
            return Err(ProtocolError::Replay);
        }
        let mac_input = device_mac_input(
            &msg.masked_response,
            &msg.memory_hash,
            msg.clock_count,
            &msg.device_nonce,
            &request.verifier_nonce,
        );

        // Try the current response, then the previous one (recovery from
        // a lost confirmation).
        let candidates: Vec<Response> = std::iter::once(self.state.current_response.clone())
            .chain(self.state.previous_response.clone())
            .collect();
        let mut matched: Option<(Response, bool)> = None;
        for (idx, r) in candidates.into_iter().enumerate() {
            let expected = HmacSha256::mac(&r.to_packed(), &mac_input);
            if ct_eq(&expected, &msg.mac) {
                matched = Some((r, idx == 1));
                break;
            }
        }
        let (r_i, via_previous) = matched.ok_or_else(|| {
            ProtocolError::AuthenticationFailed("device MAC invalid for known secrets".into())
        })?;

        if !ct_eq(&msg.memory_hash, &self.state.expected_memory_hash) {
            return Err(ProtocolError::AuthenticationFailed(
                "device memory hash mismatch (software integrity)".into(),
            ));
        }
        if msg.clock_count > self.state.max_clock_count {
            return Err(ProtocolError::AuthenticationFailed(format!(
                "clock count {} exceeds bound {}",
                msg.clock_count, self.state.max_clock_count
            )));
        }

        let masked = Response::from_packed(&msg.masked_response, r_i.len());
        let r_next = masked.xor(&r_i);
        let c_next = derive_challenge(&r_i, CHALLENGE_WIDTH);

        self.seen_device_nonces.push(msg.device_nonce);
        if via_previous {
            self.desync_recoveries += 1;
        }

        let mac = HmacSha256::mac_parts(
            &r_next.to_packed(),
            &[&c_next.to_packed(), b"verifier-confirm"],
        );

        // Commit: keep the matched response as "previous" for recovery.
        self.state.previous_response = Some(r_i);
        self.state.current_response = r_next;

        Ok(VerifierConfirm { mac })
    }

    /// Current verifier secret (test hook).
    pub fn current_response(&self) -> &Response {
        &self.state.current_response
    }
}

/// Challenge width used by the reference deployment (the photonic PUF's
/// 64-bit interface).
pub const CHALLENGE_WIDTH: usize = 64;

// ---------------------------------------------------------------------------
// Wire sessions
// ---------------------------------------------------------------------------

use crate::transport::{Channel, Transport};
use crate::wire::{
    classify, drive_report, resend_or_wait, Arq, Envelope, Incoming, MutualAuthMsg, NextWake,
    ProtocolId, Session, SessionAction, SessionConfig, SessionReport, DEFAULT_MAX_TICKS,
};
use neuropuls_rt::codec::ToBytes;
use std::borrow::BorrowMut;
use std::marker::PhantomData;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireVerifierState {
    Start,
    AwaitAuth,
    Done,
}

/// The verifier as a poll-style wire session (initiator: sends
/// `AuthRequest`, awaits `DeviceAuth`, answers `VerifierConfirm`).
///
/// After completing it lingers: a retransmitted `DeviceAuth` (the
/// device missed our confirmation) is answered with the stored
/// confirmation frame, which is what lets a lossy channel still finish
/// Msg3 delivery.
///
/// Generic over how the verifier is held: `V` is anything that
/// [`BorrowMut`]s a [`Verifier`] — a `&mut Verifier` for the classic
/// per-call sessions, or an owned `Verifier` (checked out of a CRP
/// store) for persistent keep-alive slots that create sessions at
/// timer-fire time and recover the rotated record with
/// [`into_inner`](Self::into_inner) when the epoch closes.
pub struct WireVerifier<V: BorrowMut<Verifier>> {
    verifier: V,
    session: u64,
    arq: Arq,
    state: WireVerifierState,
    request: Option<AuthRequest>,
    last_reject: Option<ProtocolError>,
}

impl<V: BorrowMut<Verifier>> WireVerifier<V> {
    /// Wraps `verifier` for one wire session identified by `session`.
    pub fn new(verifier: V, session: u64, cfg: SessionConfig) -> Self {
        WireVerifier {
            verifier,
            session,
            arq: Arq::new(cfg),
            state: WireVerifierState::Start,
            request: None,
            last_reject: None,
        }
    }

    /// Hands the (possibly CRP-rotated) verifier back to the caller.
    pub fn into_inner(self) -> V {
        self.verifier
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }
}

impl<V: BorrowMut<Verifier>> Session for WireVerifier<V> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            WireVerifierState::Start => {
                let request = self.verifier.borrow_mut().begin_session();
                let frame = Envelope::pack(
                    ProtocolId::MutualAuth,
                    self.session,
                    0,
                    &MutualAuthMsg::Request(request.clone()),
                )
                .to_bytes();
                self.request = Some(request);
                self.arq.sent(&frame);
                self.state = WireVerifierState::AwaitAuth;
                Ok(SessionAction::Send(frame))
            }
            WireVerifierState::AwaitAuth => {
                match classify::<MutualAuthMsg>(
                    incoming,
                    ProtocolId::MutualAuth,
                    Some(self.session),
                    1,
                ) {
                    Incoming::Msg(_, MutualAuthMsg::Auth(auth)) => {
                        self.arq.activity();
                        let request = self.request.clone().ok_or_else(|| {
                            ProtocolError::OutOfOrder("device auth before request".into())
                        })?;
                        match self
                            .verifier
                            .borrow_mut()
                            .process_device_auth(&request, &auth)
                        {
                            Ok(confirm) => {
                                let frame = Envelope::pack(
                                    ProtocolId::MutualAuth,
                                    self.session,
                                    2,
                                    &MutualAuthMsg::Confirm(confirm),
                                )
                                .to_bytes();
                                self.arq.sent(&frame);
                                self.state = WireVerifierState::Done;
                                Ok(SessionAction::Send(frame))
                            }
                            Err(e) => self.rejected(e),
                        }
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            WireVerifierState::Done => {
                // Linger: answer a retransmitted DeviceAuth with the
                // stored confirmation; everything else is ignored.
                match classify::<MutualAuthMsg>(
                    incoming,
                    ProtocolId::MutualAuth,
                    Some(self.session),
                    3,
                ) {
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    _ => Ok(SessionAction::Wait),
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.state == WireVerifierState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            WireVerifierState::Start => NextWake::In(0),
            WireVerifierState::AwaitAuth => NextWake::In(self.arq.ticks_to_fire()),
            WireVerifierState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireDeviceState {
    AwaitRequest,
    AwaitConfirm,
    Done,
}

/// The device as a poll-style wire session (responder: awaits
/// `AuthRequest`, answers `DeviceAuth`, awaits `VerifierConfirm`).
///
/// Like [`WireVerifier`], generic over how the endpoint is held: `D`
/// is anything that [`BorrowMut`]s a [`Device<P>`] — `&mut Device<P>`
/// for per-call sessions, an owned `Device<P>` for persistent slots.
pub struct WireDevice<D: BorrowMut<Device<P>>, P: Puf> {
    device: D,
    session: Option<u64>,
    arq: Arq,
    state: WireDeviceState,
    last_reject: Option<ProtocolError>,
    _puf: PhantomData<fn() -> P>,
}

impl<D: BorrowMut<Device<P>>, P: Puf> WireDevice<D, P> {
    /// Wraps `device` for one wire session; the session id is latched
    /// from the first request envelope.
    pub fn new(device: D, cfg: SessionConfig) -> Self {
        WireDevice {
            device,
            session: None,
            arq: Arq::new(cfg),
            state: WireDeviceState::AwaitRequest,
            last_reject: None,
            _puf: PhantomData,
        }
    }

    /// Hands the (possibly CRP-rotated) device back to the caller.
    pub fn into_inner(self) -> D {
        self.device
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }
}

impl<D: BorrowMut<Device<P>>, P: Puf> Session for WireDevice<D, P> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            WireDeviceState::AwaitRequest => {
                match classify::<MutualAuthMsg>(incoming, ProtocolId::MutualAuth, self.session, 0) {
                    Incoming::Msg(session, MutualAuthMsg::Request(request)) => {
                        self.arq.activity();
                        self.session = Some(session);
                        // A PUF that cannot canonicalize is a device
                        // fault, not a channel fault: fail immediately.
                        let auth = self.device.borrow_mut().respond_to_request(&request)?;
                        let frame = Envelope::pack(
                            ProtocolId::MutualAuth,
                            session,
                            1,
                            &MutualAuthMsg::Auth(auth),
                        )
                        .to_bytes();
                        self.arq.sent(&frame);
                        self.state = WireDeviceState::AwaitConfirm;
                        Ok(SessionAction::Send(frame))
                    }
                    Incoming::Msg(..) | Incoming::Duplicate | Incoming::Noise => self.idle(),
                }
            }
            WireDeviceState::AwaitConfirm => {
                match classify::<MutualAuthMsg>(incoming, ProtocolId::MutualAuth, self.session, 2) {
                    Incoming::Msg(_, MutualAuthMsg::Confirm(confirm)) => {
                        self.arq.activity();
                        match self.device.borrow_mut().process_confirmation(&confirm) {
                            Ok(()) => {
                                self.state = WireDeviceState::Done;
                                Ok(SessionAction::Done)
                            }
                            Err(e) => self.rejected(e),
                        }
                    }
                    Incoming::Msg(..) => self.idle(),
                    // A retransmitted request: the verifier missed our
                    // DeviceAuth — resend it.
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            WireDeviceState::Done => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.state == WireDeviceState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            WireDeviceState::AwaitRequest | WireDeviceState::AwaitConfirm => {
                NextWake::In(self.arq.ticks_to_fire())
            }
            WireDeviceState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

/// Runs one authentication session over `channel` as two wire state
/// machines (verifier = [`Side::A`](crate::transport::Side::A), device =
/// [`Side::B`](crate::transport::Side::B)). On failure the device's
/// half-open session is aborted so its CRP state stays consistent (the
/// verifier's previous-response fallback covers the desync).
///
/// Wire activity is recorded into `tracer` (pass
/// [`Tracer::disabled`](neuropuls_rt::trace::Tracer::disabled) for an
/// untraced run) — including a `desync.recovery` instant when this
/// session consumed the verifier's previous-CRP fallback.
pub fn run_wire_session<T: Transport, P: Puf>(
    channel: &mut T,
    device: &mut Device<P>,
    verifier: &mut Verifier,
    session_id: u64,
    cfg: SessionConfig,
    tracer: &mut neuropuls_rt::trace::Tracer,
) -> SessionReport {
    let recoveries_before = verifier.desync_recoveries();
    let report = {
        let mut v = WireVerifier::new(&mut *verifier, session_id, cfg);
        let mut d = WireDevice::new(&mut *device, cfg);
        drive_report(channel, &mut v, &mut d, DEFAULT_MAX_TICKS, tracer)
    };
    if report.result.is_err() {
        device.abort_session();
    }
    let recovered = verifier.desync_recoveries() - recoveries_before;
    if recovered > 0 {
        let tick = report.result.as_ref().map_or(0, |t| u64::from(*t));
        tracer.instant(
            tick,
            "desync.recovery",
            vec![("count", neuropuls_rt::trace::Value::from(recovered))],
        );
    }
    report
}

/// Runs one complete session over a perfect in-memory channel. Returns
/// `Ok(())` when both sides authenticated and rotated the CRP.
///
/// # Errors
///
/// Propagates the first protocol failure.
pub fn run_session<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
) -> Result<(), ProtocolError> {
    let mut channel = Channel::new();
    run_wire_session(
        &mut channel,
        device,
        verifier,
        0,
        SessionConfig::default(),
        &mut neuropuls_rt::trace::Tracer::disabled(),
    )
    .result
    .map(|_ticks| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    fn pair(die: u64) -> (Device<PhotonicPuf>, Verifier) {
        let puf = PhotonicPuf::reference(DieId(die), die * 7 + 1);
        let memory = vec![0xA5; 1024];
        let (device, provisioned) = Device::provision(puf, memory, b"provision-seed").unwrap();
        let verifier = Verifier::new(provisioned, b"verifier-rng");
        (device, verifier)
    }

    #[test]
    fn session_succeeds_and_rotates_secret() {
        let (mut device, mut verifier) = pair(1);
        let before = verifier.current_response().clone();
        run_session(&mut device, &mut verifier).unwrap();
        assert_ne!(verifier.current_response(), &before, "CRP did not rotate");
    }

    #[test]
    fn many_consecutive_sessions_succeed() {
        let (mut device, mut verifier) = pair(2);
        let mut failures = 0;
        for _ in 0..20 {
            if run_session(&mut device, &mut verifier).is_err() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "{failures}/20 sessions failed");
    }

    #[test]
    fn storage_is_constant_across_sessions() {
        let (mut device, mut verifier) = pair(3);
        run_session(&mut device, &mut verifier).unwrap();
        let after_one = verifier.storage_bytes();
        for _ in 0..5 {
            let _ = run_session(&mut device, &mut verifier);
        }
        assert_eq!(verifier.storage_bytes(), after_one);
    }

    #[test]
    fn corrupted_memory_is_rejected() {
        let (mut device, mut verifier) = pair(4);
        device.corrupt_memory(100, 0xFF);
        let err = run_session(&mut device, &mut verifier).unwrap_err();
        assert!(matches!(err, ProtocolError::AuthenticationFailed(msg) if msg.contains("memory")));
    }

    #[test]
    fn replayed_device_message_is_rejected() {
        let (mut device, mut verifier) = pair(5);
        let request = verifier.begin_session();
        let msg = device.respond_to_request(&request).unwrap();
        let confirm = verifier.process_device_auth(&request, &msg).unwrap();
        device.process_confirmation(&confirm).unwrap();
        // Replay the captured message in a new session.
        let request2 = verifier.begin_session();
        let err = verifier.process_device_auth(&request2, &msg).unwrap_err();
        assert_eq!(err, ProtocolError::Replay);
    }

    #[test]
    fn tampered_masked_response_is_rejected() {
        let (mut device, mut verifier) = pair(6);
        let request = verifier.begin_session();
        let mut msg = device.respond_to_request(&request).unwrap();
        msg.masked_response[0] ^= 0x01;
        assert!(matches!(
            verifier.process_device_auth(&request, &msg),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn impostor_device_fails() {
        let (_genuine, mut verifier) = pair(7);
        // The impostor has a different die but receives a genuine-looking
        // provisioning for ITS OWN puf — it still doesn't know the
        // verifier's stored r_0.
        let impostor_puf = PhotonicPuf::reference(DieId(9999), 1);
        let (mut impostor, _own_state) =
            Device::provision(impostor_puf, vec![0xA5; 1024], b"other-seed").unwrap();
        let request = verifier.begin_session();
        let msg = impostor.respond_to_request(&request).unwrap();
        assert!(matches!(
            verifier.process_device_auth(&request, &msg),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn lost_confirmation_recovers_on_next_session() {
        let (mut device, mut verifier) = pair(8);
        // Session where the confirmation never reaches the device: the
        // verifier rotated, the device did not.
        let request = verifier.begin_session();
        let msg = device.respond_to_request(&request).unwrap();
        let _lost_confirm = verifier.process_device_auth(&request, &msg).unwrap();
        device.abort_session(); // device aborts the half-finished session

        // Next session must still succeed via the verifier's previous-
        // response fallback.
        run_session(&mut device, &mut verifier).unwrap();
    }

    #[test]
    fn confirmation_without_session_is_out_of_order() {
        let (mut device, _verifier) = pair(10);
        let bogus = VerifierConfirm { mac: [0; 32] };
        assert!(matches!(
            device.process_confirmation(&bogus),
            Err(ProtocolError::OutOfOrder(_))
        ));
    }

    #[test]
    fn forged_confirmation_does_not_commit() {
        let (mut device, mut verifier) = pair(11);
        let request = verifier.begin_session();
        let msg = device.respond_to_request(&request).unwrap();
        let _ = verifier.process_device_auth(&request, &msg).unwrap();
        let forged = VerifierConfirm { mac: [0x42; 32] };
        assert!(matches!(
            device.process_confirmation(&forged),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
        // The pending update must still be there (not committed).
        assert!(device.pending.is_some());
    }

    #[test]
    fn challenge_derivation_is_deterministic() {
        let r = Response::from_u64(0xABCDEF, 63);
        assert_eq!(derive_challenge(&r, 64), derive_challenge(&r, 64));
        let r2 = Response::from_u64(0xABCDEE, 63);
        assert_ne!(derive_challenge(&r, 64), derive_challenge(&r2, 64));
    }
}
