//! Run reports: per-session outcomes, aggregate counters and the
//! per-class admission accounting shared by the drivers.

use super::admission::ClassId;
use crate::error::ProtocolError;
use crate::wire::ProtocolId;
use neuropuls_rt::trace::Registry;
use std::collections::BTreeMap;

/// Terminal state of one multiplexed session.
#[derive(Debug)]
pub struct GatewayOutcome {
    /// Service the session ran.
    pub protocol: ProtocolId,
    /// Envelope session id.
    pub id: u64,
    /// Traffic class the session was admitted under.
    pub class: ClassId,
    /// Active ticks to completion, or the failure that ended it.
    /// Sessions still queued or in flight when the tick budget ran out
    /// report [`ProtocolError::Timeout`] carrying the retransmit tally
    /// the session had actually accumulated when the budget cut it off.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both endpoints.
    pub retransmits: u32,
    /// Tick the session entered the active set (`None` = never admitted).
    pub admitted_at: Option<u64>,
}

/// Admission accounting for one traffic class of one gateway run.
///
/// The wait columns summarize *backlog waits*: for an admitted session
/// the ticks between submission and admission; for a session the run
/// ended without admitting, the wait is censored at the run length
/// (the session waited the whole run), so a starved class's p99 grows
/// with the tick budget instead of silently vanishing from the
/// histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassReport {
    /// Traffic class the row describes.
    pub class: ClassId,
    /// Sessions submitted under this class.
    pub submitted: usize,
    /// Sessions actually admitted to the active set.
    pub admitted: usize,
    /// Sessions that completed their protocol.
    pub completed: usize,
    /// Median backlog wait in ticks (admission-censored, see above).
    pub wait_p50: u64,
    /// 99th-percentile backlog wait in ticks.
    pub wait_p99: u64,
    /// Worst backlog wait in ticks.
    pub wait_max: u64,
}

/// Aggregate outcome of one gateway run.
#[derive(Debug)]
pub struct GatewayReport {
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions that completed both sides.
    pub completed: usize,
    /// Sessions that failed with a protocol error.
    pub failed: usize,
    /// Sessions still queued or in flight at the tick budget.
    pub unfinished: usize,
    /// Ticks consumed (≤ [`GatewayConfig::max_ticks`]).
    ///
    /// [`GatewayConfig::max_ticks`]: super::GatewayConfig::max_ticks
    pub ticks: u64,
    /// Total frames retransmitted across all sessions.
    pub retransmits: u64,
    /// Frames routed to an already-closed session (counted, dropped).
    pub late_frames: u64,
    /// Decoded frames whose key matched no known session.
    pub unroutable_frames: u64,
    /// Frames that did not decode as an [`Envelope`].
    ///
    /// [`Envelope`]: crate::wire::Envelope
    pub undecodable_frames: u64,
    /// Most sessions simultaneously active.
    pub peak_active: usize,
    /// Most sessions simultaneously staged in the accept queue.
    pub peak_staged: usize,
    /// [`Session::step`] calls the event-driven scheduler actually made.
    ///
    /// [`Session::step`]: crate::wire::Session::step
    pub session_steps: u64,
    /// `Session::step` calls the dense every-session-every-tick loop
    /// would have made for the same run; the ratio to `session_steps`
    /// is the scheduler's work saving on mostly-idle session mixes.
    pub dense_equiv_steps: u64,
    /// Name of the admission policy that ordered the backlog.
    pub policy: &'static str,
    /// Per-class admission accounting, ordered by [`ClassId`].
    pub per_class: Vec<ClassReport>,
    /// Per-session outcomes, in submission order.
    pub outcomes: Vec<GatewayOutcome>,
}

impl GatewayReport {
    /// Whether every submitted session completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.sessions
    }

    /// The [`ClassReport`] row for `class`, if any session carried it.
    pub fn class_report(&self, class: ClassId) -> Option<&ClassReport> {
        self.per_class.iter().find(|c| c.class == class)
    }
}

/// What one persistent keep-alive run did, in aggregate.
#[derive(Debug, Clone)]
pub struct PersistentReport {
    /// Slots the run was started with.
    pub slots: usize,
    /// Slots whose first epoch actually fired inside the horizon.
    pub joined: usize,
    /// Slots that left voluntarily (`on_fire` returned `None`).
    pub left: usize,
    /// Slots evicted by the controller's verdict.
    pub evicted: usize,
    /// Last tick processed.
    pub ticks: u64,
    /// Epochs whose session pair was admitted.
    pub epochs_fired: u64,
    /// Epochs that finished their protocol successfully.
    pub epochs_completed: u64,
    /// Epochs closed by a protocol failure before any deadline.
    pub epochs_failed: u64,
    /// Epochs force-closed by the epoch budget or the horizon.
    pub epochs_missed: u64,
    /// Frames retransmitted across all epochs.
    pub retransmits: u64,
    /// Frames that arrived for an already-closed epoch.
    pub late_frames: u64,
    /// Frames whose envelope key matched no epoch ever admitted.
    pub unroutable_frames: u64,
    /// Frames that did not decode as envelopes at all.
    pub undecodable_frames: u64,
    /// Most epochs live at once.
    pub peak_live: usize,
    /// Real `Session::step` calls made.
    pub session_steps: u64,
    /// Steps the dense no-timer counterfactual would have made: a
    /// keep-alive loop without a timer wheel must poll both sides of
    /// every *resident* device on every tick of its residency, idle
    /// epochs-gaps included — `2 × resident_ticks` per slot.
    pub dense_equiv_steps: u64,
}

impl PersistentReport {
    /// `dense_equiv_steps / session_steps`: how many dense-counterfactual
    /// steps each real step replaced.
    pub fn step_saving(&self) -> f64 {
        if self.session_steps == 0 {
            return 0.0;
        }
        self.dense_equiv_steps as f64 / self.session_steps as f64
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`pct` in
/// 0..=100); 0 for an empty slice. Deterministic integer arithmetic —
/// no float rounding to drift across hosts.
pub(super) fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 - 1) * pct / 100;
    sorted[rank as usize]
}

/// Per-class accumulator the dense driver fills while finalizing.
#[derive(Default)]
pub(super) struct ClassAcc {
    pub(super) submitted: usize,
    pub(super) admitted: usize,
    pub(super) completed: usize,
    pub(super) waits: Vec<u64>,
}

/// Folds per-class accumulators into [`ClassReport`] rows (ordered by
/// class) and mirrors them into `registry` as
/// `gateway.class.<label>.{submitted,admitted,completed}` counters and
/// a `gateway.class.<label>.backlog_wait` histogram.
pub(super) fn build_class_reports(
    stats: BTreeMap<ClassId, ClassAcc>,
    registry: &Registry,
) -> Vec<ClassReport> {
    stats
        .into_iter()
        .map(|(class, mut acc)| {
            acc.waits.sort_unstable();
            let label = class.label();
            registry.counter(
                &format!("gateway.class.{label}.submitted"),
                acc.submitted as u64,
            );
            registry.counter(
                &format!("gateway.class.{label}.admitted"),
                acc.admitted as u64,
            );
            registry.counter(
                &format!("gateway.class.{label}.completed"),
                acc.completed as u64,
            );
            for &w in &acc.waits {
                registry.observe(&format!("gateway.class.{label}.backlog_wait"), w as f64);
            }
            ClassReport {
                class,
                submitted: acc.submitted,
                admitted: acc.admitted,
                completed: acc.completed,
                wait_p50: percentile(&acc.waits, 50),
                wait_p99: percentile(&acc.waits, 99),
                wait_max: acc.waits.last().copied().unwrap_or(0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 0), 7);
        assert_eq!(percentile(&[7], 100), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
    }
}
