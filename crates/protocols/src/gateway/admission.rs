//! Admission policies: who leaves the backlog next.
//!
//! Both gateway drivers funnel every would-be session through one
//! question — *which queued request is admitted next?* — and delegate
//! the answer to an [`AdmissionPolicy`]. The policy sees an opaque
//! [`AdmissionRequest`] (slot index, traffic [`ClassId`], submission
//! tick, optional admission deadline) and hands back slot indices one
//! at a time; everything else about scheduling (accept-queue bounds,
//! active-set capacity, tick cadence) stays in the drivers.
//!
//! Three policies ship:
//!
//! * [`Fifo`] — the default. Strict submission order, reproducing the
//!   pre-policy gateway byte for byte (the golden transcripts pin
//!   this).
//! * [`DeficitWeightedRoundRobin`] — per-class FIFO queues served by a
//!   deficit round-robin ring with weight-proportional quanta. Every
//!   backlogged class is served each ring cycle, so no class can be
//!   head-of-line-blocked into starvation by another class's burst.
//! * [`SlaDeadline`] — earliest-admission-deadline-first, ordered by
//!   the deadline each session's [`NextWake`] announced at submission
//!   (plus an optional per-class SLA offset), with FIFO tie-breaks.
//!
//! All three are deterministic: identical push/pop sequences yield
//! identical admission orders on any host at any thread count.
//!
//! [`NextWake`]: crate::wire::NextWake

use crate::wire::ProtocolId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Traffic class of one session: the unit of admission fairness.
///
/// Classes are a *host-side* scheduling tag — they never appear on the
/// wire, so tagging sessions changes no frame encoding. The default
/// derivation maps each protocol to its own class (same numbering as
/// the envelope protocol tag); fleets can override per session, e.g.
/// [`ClassId::CONTROL_AUTH`] vs [`ClassId::INFERENCE`] devices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u8);

impl ClassId {
    /// Control-plane authentication traffic (fleet auth/attestation
    /// keep-alives).
    pub const CONTROL_AUTH: ClassId = ClassId(16);
    /// Accelerator inference traffic (secure NN batches).
    pub const INFERENCE: ClassId = ClassId(17);

    /// The default class of a session: one class per protocol, numbered
    /// like the envelope protocol tag.
    pub fn from_protocol(protocol: ProtocolId) -> Self {
        match protocol {
            ProtocolId::MutualAuth => ClassId(1),
            ProtocolId::Attestation => ClassId(2),
            ProtocolId::Eke => ClassId(3),
            ProtocolId::SecureNn => ClassId(4),
        }
    }

    /// Human-readable label for traces, registry keys and reports.
    pub fn label(self) -> String {
        match self.0 {
            1 => "mutual_auth".to_string(),
            2 => "attestation".to_string(),
            3 => "eke".to_string(),
            4 => "secure_nn".to_string(),
            16 => "control_auth".to_string(),
            17 => "inference".to_string(),
            n => format!("class{n}"),
        }
    }
}

/// One queued admission candidate, as the drivers describe it to a
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRequest {
    /// Driver slot index; returned verbatim by [`AdmissionPolicy::pop`].
    pub idx: usize,
    /// Traffic class the request is queued under.
    pub class: ClassId,
    /// Tick the request entered the backlog.
    pub submitted: u64,
    /// Absolute admission deadline announced by the session's
    /// [`NextWake`](crate::wire::NextWake) at submission; `None` means
    /// frame-driven only (no deadline — admit last under
    /// [`SlaDeadline`]).
    pub deadline: Option<u64>,
}

/// Backlog ordering discipline of one gateway run.
///
/// The driver pushes every submitted session once and pops whenever
/// accept-queue space frees up; the policy owns the queued set in
/// between. Implementations must be deterministic — `pop` order is a
/// pure function of the push history — because the golden transcripts
/// and the 1-vs-N-thread CI diffs pin the resulting schedules byte for
/// byte.
pub trait AdmissionPolicy: std::fmt::Debug {
    /// Short policy name for reports and registry keys.
    fn name(&self) -> &'static str;

    /// Queues one admission candidate.
    fn push(&mut self, request: AdmissionRequest);

    /// Dequeues the next slot index to admit, or `None` when empty.
    fn pop(&mut self) -> Option<usize>;

    /// Requests currently queued.
    fn len(&self) -> usize;

    /// Whether no request is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh instance with the same configuration (weights, SLA
    /// offsets) and an *empty* queue — how `Box<dyn AdmissionPolicy>`
    /// clones. Configs are cloned between runs, never mid-run, so the
    /// queued state is deliberately not carried over.
    fn fresh(&self) -> Box<dyn AdmissionPolicy>;
}

impl Clone for Box<dyn AdmissionPolicy> {
    fn clone(&self) -> Self {
        self.fresh()
    }
}

/// Strict submission order — the default policy, byte-identical to the
/// pre-policy gateway (all golden transcripts pin it).
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    queue: VecDeque<usize>,
}

impl Fifo {
    /// An empty FIFO backlog.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn push(&mut self, request: AdmissionRequest) {
        self.queue.push_back(request.idx);
    }

    fn pop(&mut self) -> Option<usize> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn fresh(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(Fifo::new())
    }
}

/// Deficit weighted round robin over traffic classes.
///
/// Each class keeps a FIFO queue; backlogged classes sit on a service
/// ring. The class at the ring head is granted a quantum of admissions
/// proportional to its weight (unit cost per session), then the ring
/// rotates. A class's deficit is reset when its queue drains, so idle
/// classes bank no credit. Within a class, order is strict FIFO —
/// which makes a single-class run byte-identical to [`Fifo`].
///
/// Starvation-freedom: every ring cycle serves every backlogged class
/// at least `weight` admissions, so under any overload a class's wait
/// for its next admission is bounded by one ring cycle — no class can
/// postpone another indefinitely.
#[derive(Debug, Clone)]
pub struct DeficitWeightedRoundRobin {
    weights: BTreeMap<ClassId, u64>,
    default_weight: u64,
    queues: BTreeMap<ClassId, VecDeque<usize>>,
    deficit: BTreeMap<ClassId, u64>,
    /// Backlogged classes in service order. Invariant: a class is on
    /// the ring iff its queue is non-empty.
    ring: VecDeque<ClassId>,
    queued: usize,
}

impl Default for DeficitWeightedRoundRobin {
    fn default() -> Self {
        Self::new()
    }
}

impl DeficitWeightedRoundRobin {
    /// An empty scheduler where every class weighs 1 (plain round
    /// robin).
    pub fn new() -> Self {
        Self {
            weights: BTreeMap::new(),
            default_weight: 1,
            queues: BTreeMap::new(),
            deficit: BTreeMap::new(),
            ring: VecDeque::new(),
            queued: 0,
        }
    }

    /// Sets `class`'s quantum to `weight` admissions per ring cycle
    /// (clamped to at least 1).
    pub fn with_weight(mut self, class: ClassId, weight: u64) -> Self {
        self.weights.insert(class, weight.max(1));
        self
    }

    /// Sets the quantum of every class not named by
    /// [`with_weight`](Self::with_weight) (clamped to at least 1).
    pub fn with_default_weight(mut self, weight: u64) -> Self {
        self.default_weight = weight.max(1);
        self
    }

    /// The quantum `class` is granted per ring cycle.
    pub fn weight(&self, class: ClassId) -> u64 {
        self.weights
            .get(&class)
            .copied()
            .unwrap_or(self.default_weight)
    }
}

impl AdmissionPolicy for DeficitWeightedRoundRobin {
    fn name(&self) -> &'static str {
        "dwrr"
    }

    fn push(&mut self, request: AdmissionRequest) {
        let queue = self.queues.entry(request.class).or_default();
        if queue.is_empty() {
            // Re-entering the ring: no banked credit from an idle spell.
            self.deficit.insert(request.class, 0);
            self.ring.push_back(request.class);
        }
        queue.push_back(request.idx);
        self.queued += 1;
    }

    fn pop(&mut self) -> Option<usize> {
        let &class = self.ring.front()?;
        // invariant: a class on the ring always has a non-empty queue,
        // so the entry lookups below cannot miss.
        let quantum = self.weight(class);
        let deficit = self.deficit.entry(class).or_insert(0);
        if *deficit == 0 {
            // The class reached the ring head: replenish its quantum.
            *deficit = quantum;
        }
        *deficit -= 1;
        let spent = *deficit == 0;
        let queue = self.queues.entry(class).or_default();
        let idx = queue.pop_front()?;
        self.queued -= 1;
        if queue.is_empty() {
            self.ring.pop_front();
            self.deficit.insert(class, 0);
        } else if spent {
            self.ring.pop_front();
            self.ring.push_back(class);
        }
        Some(idx)
    }

    fn len(&self) -> usize {
        self.queued
    }

    fn fresh(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(Self {
            weights: self.weights.clone(),
            default_weight: self.default_weight,
            queues: BTreeMap::new(),
            deficit: BTreeMap::new(),
            ring: VecDeque::new(),
            queued: 0,
        })
    }
}

/// Earliest-admission-deadline-first.
///
/// Orders the backlog by each request's announced admission deadline
/// (from [`NextWake::admission_deadline`]) plus an optional per-class
/// SLA offset; deadline ties break by submission order, so a backlog
/// whose deadlines are all equal — every fresh initiator announcing
/// `EveryTick` — admits exactly like [`Fifo`]. Requests without a
/// deadline (frame-driven sides) are admitted last, again in FIFO
/// order.
///
/// [`NextWake::admission_deadline`]: crate::wire::NextWake::admission_deadline
#[derive(Debug, Clone, Default)]
pub struct SlaDeadline {
    offsets: BTreeMap<ClassId, u64>,
    /// `(effective deadline, arrival sequence, slot idx)` — the set
    /// order is the admission order.
    queue: BTreeSet<(u64, u64, usize)>,
    seq: u64,
}

impl SlaDeadline {
    /// An empty deadline queue with no SLA offsets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxes `class`'s deadlines by `offset` ticks: a class with a
    /// looser SLA yields to tighter classes at equal announced
    /// deadlines.
    pub fn with_sla(mut self, class: ClassId, offset: u64) -> Self {
        self.offsets.insert(class, offset);
        self
    }
}

impl AdmissionPolicy for SlaDeadline {
    fn name(&self) -> &'static str {
        "sla_deadline"
    }

    fn push(&mut self, request: AdmissionRequest) {
        let base = request.deadline.unwrap_or(u64::MAX);
        let offset = self.offsets.get(&request.class).copied().unwrap_or(0);
        let deadline = base.saturating_add(offset);
        self.queue.insert((deadline, self.seq, request.idx));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<usize> {
        let first = self.queue.pop_first()?;
        Some(first.2)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn fresh(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(Self {
            offsets: self.offsets.clone(),
            queue: BTreeSet::new(),
            seq: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(idx: usize, class: u8) -> AdmissionRequest {
        AdmissionRequest {
            idx,
            class: ClassId(class),
            submitted: 0,
            deadline: Some(0),
        }
    }

    fn drain(policy: &mut dyn AdmissionPolicy) -> Vec<usize> {
        let mut order = Vec::new();
        while let Some(idx) = policy.pop() {
            order.push(idx);
        }
        order
    }

    #[test]
    fn fifo_preserves_submission_order() {
        let mut p = Fifo::new();
        for i in 0..8 {
            p.push(req(i, (i % 3) as u8));
        }
        assert_eq!(drain(&mut p), (0..8).collect::<Vec<_>>());
        assert!(p.is_empty());
    }

    #[test]
    fn dwrr_single_class_is_fifo() {
        let mut p = DeficitWeightedRoundRobin::new();
        for i in 0..16 {
            p.push(req(i, 1));
        }
        assert_eq!(drain(&mut p), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn dwrr_equal_weights_alternate_classes() {
        let mut p = DeficitWeightedRoundRobin::new();
        // Class 1 floods first; class 2 arrives behind it.
        for i in 0..4 {
            p.push(req(i, 1));
        }
        for i in 4..8 {
            p.push(req(i, 2));
        }
        assert_eq!(drain(&mut p), vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn dwrr_weights_set_the_interleave_ratio() {
        let mut p = DeficitWeightedRoundRobin::new()
            .with_weight(ClassId(1), 3)
            .with_weight(ClassId(2), 1);
        for i in 0..6 {
            p.push(req(i, 1));
        }
        for i in 6..8 {
            p.push(req(i, 2));
        }
        // Three of class 1 per one of class 2.
        assert_eq!(drain(&mut p), vec![0, 1, 2, 6, 3, 4, 5, 7]);
    }

    #[test]
    fn dwrr_is_starvation_free_under_flood() {
        let mut p = DeficitWeightedRoundRobin::new();
        for i in 0..1000 {
            p.push(req(i, 1)); // the flood
        }
        p.push(req(1000, 2)); // the victim, dead last
        let order = drain(&mut p);
        let victim_at = order.iter().position(|&i| i == 1000).unwrap();
        assert!(
            victim_at <= 1,
            "victim class must be served within one ring cycle, got position {victim_at}"
        );
    }

    #[test]
    fn dwrr_interleaves_late_arrivals() {
        let mut p = DeficitWeightedRoundRobin::new();
        for i in 0..3 {
            p.push(req(i, 1));
        }
        assert_eq!(p.pop(), Some(0));
        // Class 2 arrives mid-service: it joins the ring and is served
        // on the next rotation.
        p.push(req(10, 2));
        assert_eq!(drain(&mut p), vec![1, 10, 2]);
    }

    #[test]
    fn sla_orders_by_deadline_with_fifo_ties() {
        let mut p = SlaDeadline::new();
        p.push(AdmissionRequest {
            idx: 0,
            class: ClassId(1),
            submitted: 0,
            deadline: Some(9),
        });
        p.push(AdmissionRequest {
            idx: 1,
            class: ClassId(1),
            submitted: 0,
            deadline: Some(3),
        });
        p.push(AdmissionRequest {
            idx: 2,
            class: ClassId(1),
            submitted: 0,
            deadline: Some(3),
        });
        p.push(AdmissionRequest {
            idx: 3,
            class: ClassId(1),
            submitted: 0,
            deadline: None, // frame-driven: admitted last
        });
        assert_eq!(drain(&mut p), vec![1, 2, 0, 3]);
    }

    #[test]
    fn sla_equal_deadlines_is_fifo() {
        let mut p = SlaDeadline::new();
        for i in 0..12 {
            p.push(req(i, (i % 4) as u8));
        }
        assert_eq!(drain(&mut p), (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn sla_class_offsets_relax_deadlines() {
        let mut p = SlaDeadline::new().with_sla(ClassId(2), 100);
        p.push(AdmissionRequest {
            idx: 0,
            class: ClassId(2),
            submitted: 0,
            deadline: Some(0),
        });
        p.push(AdmissionRequest {
            idx: 1,
            class: ClassId(1),
            submitted: 0,
            deadline: Some(50),
        });
        // Class 2's offset pushes its effective deadline to 100, behind
        // class 1's 50.
        assert_eq!(drain(&mut p), vec![1, 0]);
    }

    #[test]
    fn boxed_clone_keeps_configuration_but_not_queue() {
        let mut p: Box<dyn AdmissionPolicy> =
            Box::new(DeficitWeightedRoundRobin::new().with_weight(ClassId(7), 5));
        p.push(req(0, 7));
        let clone = p.clone();
        assert_eq!(clone.len(), 0, "clone starts empty");
        assert_eq!(clone.name(), "dwrr");
        assert_eq!(p.len(), 1, "original keeps its queue");
    }

    #[test]
    fn class_labels_are_stable() {
        assert_eq!(
            ClassId::from_protocol(ProtocolId::MutualAuth).label(),
            "mutual_auth"
        );
        assert_eq!(ClassId::CONTROL_AUTH.label(), "control_auth");
        assert_eq!(ClassId::INFERENCE.label(), "inference");
        assert_eq!(ClassId(200).label(), "class200");
    }
}
