//! Fleet-scale attestation scheduling on the discrete-event engine.
//!
//! §V's "holistic approach to modeling and simulating a heterogeneous
//! system" includes the verifier side: an edge deployment has one
//! verifier attesting many devices on a period. This module schedules a
//! device fleet through [`crate::event::EventQueue`] and measures
//! verifier utilization, queue depth and per-device turnaround — the
//! capacity-planning numbers a deployment needs.

use crate::event::{EventQueue, Tick};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{AttestationVerifier, AttestingDevice, TimingModel};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::{Rng, SeedableRng};

/// One device of the fleet.
struct FleetDevice {
    device: AttestingDevice,
    verifier: AttestationVerifier,
    memory_bytes: usize,
    compromised: bool,
}

/// Events in the fleet simulation.
enum FleetEvent {
    /// Device `idx` is due for attestation.
    Due(usize),
    /// The verifier finished checking device `idx`.
    Done(usize, bool),
}

/// Aggregate results of a fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetReport {
    /// Devices attested.
    pub devices: usize,
    /// Total attestations performed.
    pub attestations: usize,
    /// Attestations that passed.
    pub passed: usize,
    /// Compromised devices that were caught (all of them must be).
    pub compromised_caught: usize,
    /// Compromised devices planted.
    pub compromised_planted: usize,
    /// Verifier busy fraction over the campaign.
    pub verifier_utilization: f64,
    /// Maximum verifier backlog observed (requests waiting).
    pub max_backlog: usize,
    /// Mean turnaround (request → verdict) in µs.
    pub mean_turnaround_us: f64,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of devices.
    pub devices: usize,
    /// Attestation period per device, µs of simulated time.
    pub period_us: f64,
    /// Campaign length, µs.
    pub horizon_us: f64,
    /// Fraction of devices planted with corrupted memory.
    pub compromised_fraction: f64,
    /// RNG seed (device sizes, stagger, compromise selection).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            devices: 8,
            period_us: 20.0,
            horizon_us: 100.0,
            compromised_fraction: 0.25,
            seed: 0xF1EE7,
        }
    }
}

/// Runs the fleet campaign.
///
/// The verifier is a serial resource: concurrent requests queue. Device
/// walk time and verifier check time both follow the photonic timing
/// model (the verifier must recompute the same walk).
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    assert!(config.devices > 0, "fleet needs at least one device");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let timing = TimingModel::photonic();

    // Small secure-boot-sized regions: E17 studies *scheduling*, not
    // walk length (E5 covers the latter), so keep per-attestation work
    // light while the timing math stays exact.
    let mut fleet: Vec<FleetDevice> = (0..config.devices)
        .map(|i| {
            let bytes = *[256usize, 512, 1024].get(rng.gen_range(0..3)).expect("in range");
            let memory: Vec<u8> = (0..bytes).map(|b| (b * 31 % 251) as u8).collect();
            let die = DieId(0xF1_0000 + i as u64);
            let mut device = AttestingDevice::new(
                PhotonicPuf::reference(die, 1),
                memory.clone(),
                timing,
            );
            let compromised = rng.gen::<f64>() < config.compromised_fraction;
            if compromised {
                device.corrupt_memory(bytes / 2, 0xEE);
            }
            FleetDevice {
                device,
                verifier: AttestationVerifier::new(
                    PhotonicPuf::reference(die, 2),
                    memory,
                    timing,
                ),
                memory_bytes: bytes,
                compromised,
            }
        })
        .collect();

    // Ticks are nanoseconds here.
    let mut queue: EventQueue<FleetEvent> = EventQueue::new();
    for i in 0..config.devices {
        let stagger = rng.gen_range(0..(config.period_us * 1000.0) as u64);
        queue.schedule(stagger, FleetEvent::Due(i));
    }

    let horizon = (config.horizon_us * 1000.0) as Tick;
    let period = (config.period_us * 1000.0) as Tick;
    let mut verifier_free_at: Tick = 0;
    let mut busy_ns: u64 = 0;
    let mut backlog: usize = 0;
    let mut max_backlog = 0usize;
    let mut attestations = 0usize;
    let mut passed = 0usize;
    let mut caught = vec![false; config.devices];
    let mut turnaround_sum_ns = 0u64;

    queue.run_until(horizon, |queue, now, event| match event {
        FleetEvent::Due(idx) => {
            let entry = &mut fleet[idx];
            let request = entry.verifier.begin();
            let report = entry.device.attest(&request).expect("attestation runs");
            let ok = entry.verifier.verify(&request, &report).is_ok();
            // The verifier recomputes the walk serially: busy for the
            // honest walk duration of this device.
            let chunks = entry.memory_bytes.div_ceil(64) as f64;
            let check_ns = (chunks * timing.chunk_ns()) as Tick;
            let start = verifier_free_at.max(now);
            backlog += usize::from(start > now);
            max_backlog = max_backlog.max(backlog);
            verifier_free_at = start + check_ns;
            busy_ns += check_ns;
            queue.schedule(verifier_free_at, FleetEvent::Done(idx, ok));
            turnaround_sum_ns += verifier_free_at - now;
            // Next periodic attestation.
            if now + period <= horizon {
                queue.schedule(now + period, FleetEvent::Due(idx));
            }
        }
        FleetEvent::Done(idx, ok) => {
            backlog = backlog.saturating_sub(1);
            attestations += 1;
            if ok {
                passed += 1;
            } else if fleet[idx].compromised {
                caught[idx] = true;
            }
        }
    });

    let planted = fleet.iter().filter(|d| d.compromised).count();
    FleetReport {
        devices: config.devices,
        attestations,
        passed,
        compromised_caught: caught.iter().filter(|&&c| c).count(),
        compromised_planted: planted,
        verifier_utilization: busy_ns as f64 / horizon.max(1) as f64,
        max_backlog,
        mean_turnaround_us: if attestations == 0 {
            0.0
        } else {
            turnaround_sum_ns as f64 / attestations as f64 / 1000.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_catches_every_compromised_device() {
        let report = run_fleet(&FleetConfig::default());
        assert!(report.attestations > 0);
        assert_eq!(
            report.compromised_caught, report.compromised_planted,
            "{report:?}"
        );
        // Honest devices pass: passes + compromised failures = total.
        assert!(report.passed > 0, "{report:?}");
    }

    #[test]
    fn utilization_grows_with_fleet_size() {
        let small = run_fleet(&FleetConfig {
            devices: 2,
            ..FleetConfig::default()
        });
        let large = run_fleet(&FleetConfig {
            devices: 12,
            ..FleetConfig::default()
        });
        assert!(
            large.verifier_utilization > small.verifier_utilization,
            "small {small:?} large {large:?}"
        );
    }

    #[test]
    fn oversubscribed_verifier_builds_backlog() {
        let report = run_fleet(&FleetConfig {
            devices: 24,
            period_us: 2.0,
            horizon_us: 20.0,
            ..FleetConfig::default()
        });
        assert!(report.max_backlog > 0, "{report:?}");
        assert!(report.verifier_utilization > 0.5, "{report:?}");
    }

    #[test]
    fn empty_compromise_fraction_passes_everything() {
        let report = run_fleet(&FleetConfig {
            compromised_fraction: 0.0,
            ..FleetConfig::default()
        });
        assert_eq!(report.compromised_planted, 0);
        assert_eq!(report.passed, report.attestations, "{report:?}");
    }
}
