//! E2 — §II-A quality claims of the microring-array PUF \[12\]:
//! uniqueness/reliability/uniformity close to ideal and good NIST test
//! scores.

use crate::{Rendered, Scale};
use neuropuls_metrics::entropy::min_entropy_per_bit;
use neuropuls_metrics::nist;
use neuropuls_metrics::quality::{quality_report, QualityReport};
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::traits::Puf;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// Outcome bundle for assertions.
#[derive(Debug)]
pub struct Outcome {
    /// The §II metric set.
    pub report: QualityReport,
    /// Min-entropy per bit of the population.
    pub min_entropy: f64,
    /// NIST battery pass rate of one device's concatenated responses.
    pub nist_pass_rate: f64,
}

/// Runs the population study.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let devices = scale.pick(8, 50);
    let rereads = scale.pick(6, 100);
    let nist_bits = scale.pick(2048, 16_384);

    let mut rng = StdRng::seed_from_u64(0xE2E2);
    let challenge = Challenge::random(64, &mut rng);
    // Each die derives its own identity and noise seed from its index,
    // so the population fans out on the pool with byte-identical output.
    let per_device = neuropuls_rt::pool::par_map((0..devices).collect(), |d| {
        let mut puf = PhotonicPuf::reference(DieId(9_000 + d as u64), 23 + d as u64);
        let golden = puf.respond_golden(&challenge, 9).expect("eval").into_bits();
        let rereads: Vec<Vec<u8>> = (0..rereads)
            .map(|_| puf.respond(&challenge).expect("eval").into_bits())
            .collect();
        (golden, rereads)
    });
    let mut golden = Vec::with_capacity(devices);
    let mut rereads_all = Vec::with_capacity(devices);
    for (g, r) in per_device {
        golden.push(g);
        rereads_all.push(r);
    }
    let report = quality_report(&golden, &rereads_all);
    let min_entropy = min_entropy_per_bit(&golden);

    let mut stream_puf = PhotonicPuf::reference(DieId(4242), 2);
    let mut bits = Vec::with_capacity(nist_bits);
    while bits.len() < nist_bits {
        let c = Challenge::random(64, &mut rng);
        bits.extend(stream_puf.respond(&c).expect("eval").into_bits());
    }
    let results = nist::battery(&bits);
    let nist_pass_rate = nist::pass_rate(&results);

    let mut out = Rendered::new(format!(
        "E2 (§II-A) — photonic PUF quality, {devices} devices × {rereads} re-reads"
    ));
    out.push(format!(
        "{:<28} {:>10} {:>10}",
        "metric", "measured", "ideal"
    ));
    out.push(format!(
        "{:<28} {:>10.4} {:>10}",
        "uniqueness (inter-die FHD)", report.uniqueness.mean, "0.5"
    ));
    out.push(format!(
        "{:<28} {:>10.4} {:>10}",
        "reliability (1 - intra FHD)", report.reliability.mean, "1.0"
    ));
    out.push(format!(
        "{:<28} {:>10.4} {:>10}",
        "uniformity (ones fraction)", report.uniformity.mean, "0.5"
    ));
    out.push(format!(
        "{:<28} {:>10.4} {:>10}",
        "bit-aliasing entropy (mean)", report.mean_bit_aliasing, "1.0"
    ));
    out.push(format!(
        "{:<28} {:>10.4} {:>10}",
        "min-entropy per bit", min_entropy, "1.0"
    ));
    out.push(format!(
        "NIST battery over {} bits: {:.0}% passed",
        bits.len(),
        nist_pass_rate * 100.0
    ));
    for r in &results {
        out.push(format!(
            "  {:<22} p = {:<8.4} {}",
            r.name,
            r.p_value,
            if r.passed { "pass" } else { "FAIL" }
        ));
    }
    (
        out,
        Outcome {
            report,
            min_entropy,
            nist_pass_rate,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_quality_matches_claims() {
        let (_, outcome) = run(Scale::Smoke);
        assert!((outcome.report.uniqueness.mean - 0.5).abs() < 0.1);
        assert!(outcome.report.reliability.mean > 0.95);
        assert!(outcome.nist_pass_rate >= 0.6);
    }
}
