//! E21 — batched photonic inference throughput: sweeps batch size and
//! analog model over the 4-layer reference MLP, comparing the wave-
//! pipelined batch latency model against the scalar one-input-per-pass
//! baseline. Every cell runs the same batch twice — pool pinned to one
//! thread, then to eight — and checks the outputs bit-for-bit, which is
//! the paper's determinism claim: the per-item noise streams are
//! re-derived from `(seed, epoch, index)`, never from worker identity.

use crate::{Rendered, Scale};
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::{AnalogModel, PhotonicEngine};
use neuropuls_rt::pool;

/// Input width of the reference workload (and, symmetrically, its
/// output width).
pub const REFERENCE_WIDTH: usize = 16;

/// The reference workload: a four-layer dense MLP, 16-32-32-32-16,
/// 3072 MACs per inference. Weights land on a deterministic grid well
/// inside the quantizer range.
pub fn reference_network() -> NetworkConfig {
    NetworkConfig::mlp(&[16, 32, 32, 32, 16], |l, o, i| {
        ((l * 131 + o * 17 + i * 5) % 41) as f32 / 20.0 - 1.0
    })
}

/// Deterministic batch of activation vectors for [`reference_network`].
pub fn batch_inputs(batch: usize) -> Vec<Vec<f64>> {
    (0..batch)
        .map(|n| {
            (0..REFERENCE_WIDTH)
                .map(|i| ((n * REFERENCE_WIDTH + i) % 29) as f64 / 14.5 - 1.0)
                .collect()
        })
        .collect()
}

/// One sweep cell: an analog model and a batch size.
#[derive(Debug, Clone, Copy)]
struct Cell {
    model_name: &'static str,
    model: AnalogModel,
    batch: usize,
}

/// Deterministic outcome of one cell.
#[derive(Debug, Clone)]
struct CellResult {
    cell: Cell,
    macs_per_inf: u64,
    draws_per_inf: u64,
    energy_per_inf_pj: f64,
    ns_per_inf: f64,
    modeled_inf_per_s: f64,
    /// Wave-pipelined speedup over `batch` scalar passes:
    /// `layers * batch / (layers + batch - 1)`.
    modeled_speedup: f64,
    /// Outputs at 1 worker and at 8 workers are bit-identical.
    thread_invariant: bool,
    checksum: f64,
}

/// Loads a fresh engine and pushes one batch through it at the given
/// pool width. Returns the outputs and the accumulated stats.
fn run_batch_at(
    cell: Cell,
    threads: usize,
) -> (Vec<Vec<f64>>, neuropuls_accel::engine::EngineStats) {
    pool::with_threads(threads, || {
        let seed = 0xE21_0000 ^ ((cell.batch as u64) << 8) ^ cell.model_name.len() as u64;
        let mut engine = PhotonicEngine::new(cell.model, seed);
        engine
            .load(reference_network())
            .expect("reference network fits the quantizer");
        let outputs = engine
            .infer_batch(&batch_inputs(cell.batch))
            .expect("batch matches the loaded widths");
        (outputs, engine.stats())
    })
}

fn bit_identical(a: &[Vec<f64>], b: &[Vec<f64>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

fn run_cell(cell: Cell) -> CellResult {
    let (out_1, stats) = run_batch_at(cell, 1);
    let (out_8, _) = run_batch_at(cell, 8);
    let n = cell.batch as f64;
    let layers = reference_network().layers.len() as f64;
    let scalar_ns = n * layers * cell.model.layer_latency_ns;
    CellResult {
        cell,
        macs_per_inf: stats.macs / cell.batch as u64,
        draws_per_inf: stats.noise_draws / cell.batch as u64,
        energy_per_inf_pj: stats.energy_pj / n,
        ns_per_inf: stats.busy_ns / n,
        modeled_inf_per_s: n / stats.busy_ns * 1e9,
        modeled_speedup: scalar_ns / stats.busy_ns,
        thread_invariant: bit_identical(&out_1, &out_8),
        checksum: out_1.iter().flatten().sum(),
    }
}

fn render_table(out: &mut Rendered, results: &[CellResult]) {
    out.push(format!(
        "{:>10} {:>6} {:>9} {:>10} {:>9} {:>9} {:>11} {:>8} {:>6} {:>13}",
        "model",
        "batch",
        "macs/inf",
        "draws/inf",
        "pJ/inf",
        "ns/inf",
        "inf/s",
        "speedup",
        "1t=8t",
        "checksum"
    ));
    for r in results {
        out.push(format!(
            "{:>10} {:>6} {:>9} {:>10} {:>9.1} {:>9.2} {:>11.0} {:>7.2}x {:>6} {:>13.6}",
            r.cell.model_name,
            r.cell.batch,
            r.macs_per_inf,
            r.draws_per_inf,
            r.energy_per_inf_pj,
            r.ns_per_inf,
            r.modeled_inf_per_s,
            r.modeled_speedup,
            if r.thread_invariant { "yes" } else { "NO" },
            r.checksum,
        ));
    }
}

/// Per-cell summary row for the smoke assertions: `(model, batch,
/// modeled speedup, thread-invariant)`.
pub type CellSummary = (&'static str, usize, f64, bool);

/// Runs the batch-size × analog-model sweep and renders one table per
/// model. Cells run serially on purpose: each cell pins the pool width
/// (1, then 8) for its thread-identity check, so the sweep itself must
/// not fan out through `par_map`.
pub fn run(scale: Scale) -> (Rendered, Vec<CellSummary>) {
    let batches: Vec<usize> = scale.pick(vec![1, 64], vec![1, 8, 64, 256]);
    let models: [(&'static str, AnalogModel); 2] = [
        ("reference", AnalogModel::reference()),
        ("ideal", AnalogModel::ideal()),
    ];

    let mut results: Vec<CellResult> = Vec::new();
    for &(model_name, model) in &models {
        for &batch in &batches {
            results.push(run_cell(Cell {
                model_name,
                model,
                batch,
            }));
        }
    }

    let mut out = Rendered::new("E21 — batched photonic inference throughput");
    let macs = results.first().map_or(0, |r| r.macs_per_inf);
    out.push(format!(
        "4-layer reference MLP, {macs} MACs/inference; latency follows the wave-pipelined \
         model (layers + batch - 1 stage times per batch):"
    ));
    render_table(&mut out, &results);
    out.push(String::new());
    out.push(
        "speedup is modeled pipelined latency vs batch-many scalar passes; the ideal \
         model draws no noise at all (draws/inf = 0) while the reference model pays one \
         draw per MAC in either path"
            .to_string(),
    );
    out.push(
        "1t=8t re-runs every batch with the pool pinned to 1 and to 8 workers and \
         compares outputs bit-for-bit: noise is re-derived per item, never per worker"
            .to_string(),
    );

    let summary = results
        .iter()
        .map(|r| {
            (
                r.cell.model_name,
                r.cell.batch,
                r.modeled_speedup,
                r.thread_invariant,
            )
        })
        .collect();
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_accel_throughput_sweep() {
        let (rendered, summary) = run(Scale::Smoke);
        assert!(!summary.is_empty());
        for &(model, batch, speedup, invariant) in &summary {
            assert!(
                invariant,
                "{model} batch {batch} must be bit-identical at 1 and 8 threads"
            );
            if batch == 1 {
                assert!(
                    (speedup - 1.0).abs() < 1e-9,
                    "a single-item batch has nothing to pipeline"
                );
            }
        }
        let (_, _, speedup, _) = summary
            .iter()
            .find(|(model, batch, _, _)| *model == "reference" && *batch == 64)
            .copied()
            .expect("smoke sweep carries the acceptance cell");
        assert!(
            speedup >= 3.0,
            "batch 64 must pipeline at least 3x over scalar passes, got {speedup:.2}x"
        );
        // The output is deterministic: a second run renders identically.
        let (again, _) = run(Scale::Smoke);
        assert_eq!(rendered.stable_string(), again.stable_string());
    }
}
