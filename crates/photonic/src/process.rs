//! Manufacturing process variation.
//!
//! A PUF's secret *is* its process variation: nominally identical devices
//! differ in waveguide widths, coupling gaps and ring radii, which shift
//! effective indices, coupling ratios and resonance phases. This module
//! models a fabricated *die* as a deterministic stream of Gaussian
//! perturbations derived from a die seed, so that
//!
//! * the same die always re-materializes identically (needed for
//!   enrollment / in-field comparisons), and
//! * different dies are statistically independent.

use neuropuls_rt::{Rng, RngCore, SeedableRng};

/// Identifies one fabricated die (chip instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieId(pub u64);

impl DieId {
    /// Wafer-style helper: die `index` of lot `lot`.
    pub fn from_lot(lot: u32, index: u32) -> Self {
        DieId(((lot as u64) << 32) | index as u64)
    }
}

impl std::fmt::Display for DieId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "die-{:016x}", self.0)
    }
}

/// Strength of the fabrication variability, expressed as the standard
/// deviations of the per-component perturbations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// σ of random phase offsets accumulated along a waveguide segment
    /// (radians). Dominated by width/thickness variation of the guide.
    pub phase_sigma: f64,
    /// σ of the power-coupling-ratio deviation of directional couplers
    /// (dimensionless, applied to the coupling angle).
    pub coupling_sigma: f64,
    /// σ of ring-resonator round-trip phase detuning (radians) — the most
    /// sensitive parameter (resonance shifts of nm-scale geometry).
    pub ring_detune_sigma: f64,
    /// σ of the relative amplitude-loss deviation per element.
    pub loss_sigma: f64,
}

impl ProcessVariation {
    /// Typical SOI foundry corner used throughout the experiments.
    pub fn typical_soi() -> Self {
        ProcessVariation {
            phase_sigma: std::f64::consts::PI, // phases fully randomized die-to-die
            coupling_sigma: 0.05,
            ring_detune_sigma: 0.8,
            loss_sigma: 0.02,
        }
    }

    /// A tight (well-controlled) process — used in ablations to show PUF
    /// uniqueness degrading when variability shrinks.
    pub fn tight(scale: f64) -> Self {
        let typical = Self::typical_soi();
        ProcessVariation {
            phase_sigma: typical.phase_sigma * scale,
            coupling_sigma: typical.coupling_sigma * scale,
            ring_detune_sigma: typical.ring_detune_sigma * scale,
            loss_sigma: typical.loss_sigma * scale,
        }
    }
}

impl Default for ProcessVariation {
    fn default() -> Self {
        Self::typical_soi()
    }
}

/// Deterministic per-die sampler of fabrication perturbations.
///
/// Internally a seeded PRNG: component constructors draw their
/// perturbations in a fixed order, so a die rebuilt from the same
/// [`DieId`] and [`ProcessVariation`] is bit-identical.
///
/// # Example
///
/// ```
/// use neuropuls_photonic::process::{DieId, DieSampler, ProcessVariation};
///
/// let mut a = DieSampler::new(DieId(7), ProcessVariation::typical_soi());
/// let mut b = DieSampler::new(DieId(7), ProcessVariation::typical_soi());
/// assert_eq!(a.phase_offset(), b.phase_offset());
/// ```
#[derive(Debug, Clone)]
pub struct DieSampler {
    rng: neuropuls_rt::rngs::StdRng,
    variation: ProcessVariation,
}

impl DieSampler {
    /// Creates the sampler for `die` under the given process corner.
    pub fn new(die: DieId, variation: ProcessVariation) -> Self {
        // Mix the die id through SplitMix64 so consecutive ids give
        // decorrelated streams.
        let mut z = die.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_exact_mut(8).enumerate() {
            let v = z.wrapping_add((i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        DieSampler {
            rng: neuropuls_rt::rngs::StdRng::from_seed(seed),
            variation,
        }
    }

    /// The process corner this sampler draws from.
    pub fn variation(&self) -> ProcessVariation {
        self.variation
    }

    /// Draws a waveguide phase offset (radians).
    pub fn phase_offset(&mut self) -> f64 {
        self.gaussian() * self.variation.phase_sigma
    }

    /// Draws a coupling-angle perturbation (radians).
    pub fn coupling_offset(&mut self) -> f64 {
        self.gaussian() * self.variation.coupling_sigma
    }

    /// Draws a ring round-trip detuning (radians).
    pub fn ring_detune(&mut self) -> f64 {
        self.gaussian() * self.variation.ring_detune_sigma
    }

    /// Draws a relative loss deviation (multiplier around 1.0, clamped to
    /// stay physical, i.e. never providing gain above 1).
    pub fn loss_factor(&mut self, nominal: f64) -> f64 {
        let factor = nominal * (1.0 + self.gaussian() * self.variation.loss_sigma);
        factor.clamp(0.0, 1.0)
    }

    /// Draws a standard Gaussian via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.gen::<f64>();
            let u2: f64 = self.rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Raw 64-bit draw (for structural choices such as routing
    /// permutations).
    pub fn raw_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw in `[lo, hi)` — used for layout-level diversity such
    /// as per-component path lengths and ring circumferences.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.gen::<f64>() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_die_same_stream() {
        let mut a = DieSampler::new(DieId(42), ProcessVariation::typical_soi());
        let mut b = DieSampler::new(DieId(42), ProcessVariation::typical_soi());
        for _ in 0..100 {
            assert_eq!(a.phase_offset().to_bits(), b.phase_offset().to_bits());
            assert_eq!(a.ring_detune().to_bits(), b.ring_detune().to_bits());
        }
    }

    #[test]
    fn different_dies_diverge() {
        let mut a = DieSampler::new(DieId(1), ProcessVariation::typical_soi());
        let mut b = DieSampler::new(DieId(2), ProcessVariation::typical_soi());
        let va: Vec<u64> = (0..8).map(|_| a.raw_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.raw_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn adjacent_die_ids_are_decorrelated() {
        // SplitMix mixing: consecutive ids must not give near-identical
        // Gaussian draws.
        let mut a = DieSampler::new(DieId(100), ProcessVariation::typical_soi());
        let mut b = DieSampler::new(DieId(101), ProcessVariation::typical_soi());
        let da: Vec<f64> = (0..32).map(|_| a.gaussian()).collect();
        let db: Vec<f64> = (0..32).map(|_| b.gaussian()).collect();
        let corr: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum::<f64>() / 32.0;
        assert!(corr.abs() < 0.5, "correlation {corr}");
    }

    #[test]
    fn gaussian_moments() {
        let mut sampler = DieSampler::new(DieId(7), ProcessVariation::typical_soi());
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| sampler.gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn loss_factor_stays_physical() {
        let mut sampler = DieSampler::new(DieId(9), ProcessVariation::tight(10.0));
        for _ in 0..1000 {
            let f = sampler.loss_factor(0.98);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn lot_ids_compose() {
        assert_ne!(DieId::from_lot(1, 2), DieId::from_lot(2, 1));
        assert_eq!(DieId::from_lot(0, 5), DieId(5));
    }
}
