//! Tiny criterion-compatible benchmark timer.
//!
//! Implements the subset of the `criterion` API the bench targets use
//! (`Criterion`, `BenchmarkGroup`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, plus the [`criterion_group!`](crate::criterion_group)
//! / [`criterion_main!`](crate::criterion_main) macros). Each benchmark
//! is warmed up, then timed over batched samples; mean/p50/p99 go to
//! stdout and — the part the experiment trajectory consumes — to a
//! machine-readable `BENCH_<target>.json` report in the working
//! directory:
//!
//! ```json
//! {
//!   "schema": "neuropuls-bench-v1",
//!   "target": "primitives",
//!   "benchmarks": [
//!     {"name": "crypto/sha256_4k", "samples": 50, "iters_per_sample": 12,
//!      "mean_ns": 81234.5, "p50_ns": 80911.0, "p99_ns": 90122.0,
//!      "throughput_bytes": 4096, "throughput_elements": null}
//!   ]
//! }
//! ```

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-benchmark wall-time budget; samples are trimmed to stay inside.
const SAMPLE_BUDGET: Duration = Duration::from_millis(500);
/// Warmup budget before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// One finished measurement, as serialized into the JSON report.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    samples: usize,
    iters_per_sample: u64,
    mean_ns: f64,
    p50_ns: f64,
    p99_ns: f64,
    throughput_bytes: Option<u64>,
    throughput_elements: Option<u64>,
}

static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost. The in-repo timer always
/// times routines individually, so the variants are equivalent; the
/// type exists for criterion source compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group; benchmarks inside are reported as
    /// `"<group>/<name>"`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Times one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Attaches a throughput annotation to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Closes the group (kept for criterion parity; reporting is
    /// per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Handed to benchmark closures; `iter`/`iter_batched` perform the
/// actual timing.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, called in batches after a warmup phase.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < WARMUP_BUDGET && warmup_iters < 100_000 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let est_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

        // Pick a batch size so each sample takes ~budget/samples.
        let per_sample = SAMPLE_BUDGET.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / est_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let per_iter_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(per_iter_ns);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        let mut spent = Duration::ZERO;
        while warmup_start.elapsed() < WARMUP_BUDGET && warmup_iters < 100_000 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            warmup_iters += 1;
        }
        let est_iter = spent.as_secs_f64() / warmup_iters.max(1) as f64;

        let per_sample = SAMPLE_BUDGET.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / est_iter.max(1e-9)) as u64).clamp(1, 100_000);

        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                timed += t0.elapsed();
            }
            self.samples.push(timed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut bencher);

    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    let record = Record {
        name: name.to_string(),
        samples: sorted.len(),
        iters_per_sample: bencher.iters_per_sample,
        mean_ns: mean,
        p50_ns: percentile(&sorted, 0.50),
        p99_ns: percentile(&sorted, 0.99),
        throughput_bytes: match throughput {
            Some(Throughput::Bytes(b)) => Some(b),
            _ => None,
        },
        throughput_elements: match throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        },
    };
    println!(
        "bench {:<40} mean {:>12.1} ns  p50 {:>12.1} ns  p99 {:>12.1} ns  ({} samples x {} iters)",
        record.name,
        record.mean_ns,
        record.p50_ns,
        record.p99_ns,
        record.samples,
        record.iters_per_sample
    );
    RESULTS.lock().expect("results mutex").push(record);
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The benchmark target name: the executable stem with cargo's
/// trailing `-<hash>` stripped.
fn target_name() -> String {
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match exe.rsplit_once('-') {
        Some((stem, suffix))
            if suffix.len() >= 8 && suffix.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            stem.to_string()
        }
        _ => exe,
    }
}

/// Writes the accumulated `BENCH_<target>.json` report. Called by
/// [`criterion_main!`](crate::criterion_main) after all groups ran.
pub fn write_report() {
    let records = RESULTS.lock().expect("results mutex");
    let target = target_name();
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"neuropuls-bench-v1\",\n");
    json.push_str(&format!("  \"target\": \"{}\",\n", json_escape(&target)));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
             \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \
             \"throughput_bytes\": {}, \"throughput_elements\": {}}}{}\n",
            json_escape(&r.name),
            r.samples,
            r.iters_per_sample,
            r.mean_ns,
            r.p50_ns,
            r.p99_ns,
            r.throughput_bytes
                .map_or("null".to_string(), |b| b.to_string()),
            r.throughput_elements
                .map_or("null".to_string(), |n| n.to_string()),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = format!("BENCH_{target}.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Declares a group runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::criterion::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group and writes the JSON
/// report, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::criterion::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 5.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples.len(), 5);
        assert!(b.iters_per_sample >= 1);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn json_escape_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
