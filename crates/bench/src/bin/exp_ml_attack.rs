//! Regenerates the §IV ML-modeling study (E6).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::ml_attack::run(scale);
    print!("{out}");
}
