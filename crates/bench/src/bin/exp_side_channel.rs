//! Regenerates the §IV side-channel study (E7).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::side_channel::run(scale);
    print!("{out}");
}
