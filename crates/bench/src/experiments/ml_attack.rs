//! E6 — §IV: machine-learning modeling attacks. Accuracy vs. training
//! CRPs for the arbiter PUF (breaks), the 4-XOR arbiter (harder), the
//! photonic PUF (resists), and the challenge-encrypted arbiter of \[30\]
//! (resists despite the weak inner PUF). Includes the memory-depth
//! ablation of the design-choices list in `DESIGN.md`.

use crate::{Rendered, Scale};
use neuropuls_attacks::ml::{model_attack, parity_features, raw_features, AttackOutcome};
use neuropuls_photonic::circuit::MeshSpec;
use neuropuls_photonic::process::{DieId, ProcessVariation};
use neuropuls_puf::arbiter::{ArbiterPuf, XorArbiterPuf};
use neuropuls_puf::challenge_encryption::ChallengeEncryptedPuf;
use neuropuls_puf::photonic::{PhotonicPuf, PhotonicPufConfig};

/// Results per target: (label, outcomes per CRP budget).
pub type Series = (String, Vec<AttackOutcome>);

/// Runs the study.
pub fn run(scale: Scale) -> (Rendered, Vec<Series>) {
    let budgets: Vec<usize> = scale.pick(vec![100, 400], vec![100, 500, 2000, 10_000]);
    let test = scale.pick(200, 1000);
    let epochs = scale.pick(20, 40);

    let mut series: Vec<Series> = Vec::new();

    let mut arbiter = ArbiterPuf::fabricate(DieId(0xE6), 64, 1);
    series.push((
        "arbiter-64".into(),
        budgets
            .iter()
            .map(|&n| model_attack(&mut arbiter, parity_features, n, test, 0, epochs, 1).unwrap())
            .collect(),
    ));

    let mut xor4 = XorArbiterPuf::fabricate(DieId(0xE6 + 1), 64, 4, 1);
    series.push((
        "4-xor-arbiter-64".into(),
        budgets
            .iter()
            .map(|&n| model_attack(&mut xor4, parity_features, n, test, 0, epochs, 2).unwrap())
            .collect(),
    ));

    let mut encrypted =
        ChallengeEncryptedPuf::new(ArbiterPuf::fabricate(DieId(0xE6 + 2), 64, 1), [0x5E; 32]);
    series.push((
        "arbiter + challenge-encryption [30]".into(),
        budgets
            .iter()
            .map(|&n| model_attack(&mut encrypted, parity_features, n, test, 0, epochs, 3).unwrap())
            .collect(),
    ));

    let mut photonic = PhotonicPuf::reference(DieId(0xE6 + 3), 1);
    series.push((
        "photonic (reference mesh)".into(),
        budgets
            .iter()
            .map(|&n| model_attack(&mut photonic, raw_features, n, test, 0, epochs, 4).unwrap())
            .collect(),
    ));

    // Ablation: a shallow memory-less mesh is easier to model.
    let shallow_config = PhotonicPufConfig {
        mesh: MeshSpec {
            ring_density: 0.0,
            depth: 2,
            ..MeshSpec::reference()
        },
        ..PhotonicPufConfig::reference()
    };
    let mut shallow = PhotonicPuf::fabricate(
        DieId(0xE6 + 4),
        shallow_config,
        ProcessVariation::typical_soi(),
        1,
    );
    series.push((
        "photonic ablation (no rings, depth 2)".into(),
        budgets
            .iter()
            .map(|&n| model_attack(&mut shallow, raw_features, n, test, 0, epochs, 5).unwrap())
            .collect(),
    ));

    let mut out = Rendered::new("E6 (§IV) — ML modeling attack accuracy vs training CRPs");
    let header = budgets
        .iter()
        .map(|b| format!("{b:>9}"))
        .collect::<Vec<_>>()
        .join("");
    out.push(format!("{:<40}{header}", "target \\ CRPs"));
    for (label, outcomes) in &series {
        let row = outcomes
            .iter()
            .map(|o| format!("{:>8.1}%", o.accuracy * 100.0))
            .collect::<Vec<_>>()
            .join("");
        out.push(format!("{label:<40}{row}"));
    }
    out.push(
        "(50% = coin flip; the paper's claim: electronic delay PUFs break, photonic resists)"
            .to_string(),
    );
    (out, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ml_attack_ordering() {
        let (_, series) = run(Scale::Smoke);
        let last = |name: &str| {
            series
                .iter()
                .find(|(label, _)| label.starts_with(name))
                .map(|(_, o)| o.last().unwrap().accuracy)
                .unwrap()
        };
        let arbiter = last("arbiter-64");
        let photonic = last("photonic (reference");
        assert!(arbiter > 0.85, "arbiter not broken: {arbiter}");
        assert!(photonic < 0.75, "photonic modelled: {photonic}");
        assert!(arbiter > photonic + 0.15);
        let encrypted = last("arbiter + challenge");
        assert!(
            encrypted < arbiter - 0.2,
            "challenge encryption ineffective: {encrypted} vs {arbiter}"
        );
    }
}
