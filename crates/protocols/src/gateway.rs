//! Concurrent session gateway: many wire sessions, one transport.
//!
//! The §III drivers in [`crate::wire`] run exactly one session per
//! channel. A production verifier terminates *fleets*: hundreds of
//! devices authenticate, attest, key-exchange and stream inference
//! blobs over one physical link. This module multiplexes any number of
//! concurrent [`Session`] pairs — all four protocols mixed freely —
//! over a single shared [`Transport`] by demultiplexing on the
//! [`Envelope`] tags (`protocol`, `session`) that every frame already
//! carries.
//!
//! # Scheduling model
//!
//! The gateway is a deterministic *event-driven* poll loop. The
//! original implementation stepped every active session on every tick,
//! so a session idling out a 3-tick ARQ timeout cost as much as one
//! doing work. The current loop instead wakes a session side only when
//! something can actually happen to it — a frame arrived for it, or
//! its ARQ timer (announced via [`Session::next_wake`]) expires — and
//! fast-forwards the skipped silent steps in O(1) with
//! [`Session::skip_silence`]. Timer expiry is tracked by a
//! [`neuropuls_rt::sched::TimerWheel`], so per-tick work is
//! proportional to the number of *runnable* sides, not the number of
//! active sessions.
//!
//! Each tick:
//!
//! 1. **Admit** — sessions move backlog → accept queue → active set.
//!    The accept queue is bounded ([`GatewayConfig::accept_queue`]) and
//!    the active set is bounded ([`GatewayConfig::max_active`]); a
//!    session's ARQ clock only runs while it is active, so queued
//!    sessions cannot time out waiting for admission. Newly admitted
//!    sides arm their first wake.
//! 2. **Expire** — the timer wheel advances one tick and yields the
//!    sides whose ARQ deadline is now.
//! 3. **Route A** — every frame pending on [`Side::A`] is decoded and
//!    appended to the owning session's initiator inbox; the owning
//!    side becomes runnable.
//! 4. **Step runnable initiators** — each runnable initiator is
//!    stepped with at most one inbox frame, ordered by the same
//!    tick-rotated round-robin the dense loop used, so no session
//!    systematically transmits first and the shared-wire send order is
//!    identical to the dense schedule.
//! 5. **Route B / step runnable responders** — the mirror image for
//!    [`Side::B`].
//! 6. **Close** — slots touched this tick whose two sides both
//!    finished (or either side failed) leave the active set, freeing
//!    capacity for the queue.
//!
//! The wake contract makes this observationally identical to the dense
//! loop: a session reporting [`NextWake::In`]`(n)` guarantees its next
//! `n - 1` frameless steps are silent idle-clock ticks, which
//! `skip_silence` replays in one call right before the next real step.
//! The per-session cadence of [`crate::wire::drive`] is
//! preserved exactly: an initiator frame sent on tick *t* reaches the
//! responder on tick *t*, and the reply reaches the initiator on tick
//! *t + 1*. Over a lossless transport the gateway therefore produces,
//! per session, byte-identical wire transcripts to running each
//! session alone (`tests/` pins this property), and the golden
//! mixed-protocol trace is byte-identical to the dense loop's.
//!
//! # Demux rules
//!
//! * Frames that do not decode as an [`Envelope`] are dropped and
//!   counted (`undecodable_frames`); a session treats a missing frame
//!   exactly like decoded noise, so this cannot change behavior.
//! * Frames whose `(protocol, session)` key matches a *closed* slot are
//!   late arrivals — duplicates or reordered stragglers from a session
//!   that already completed. They are dropped and counted
//!   (`late_frames`), never silently lost.
//! * Frames with an unknown key are counted as `unroutable_frames`.
//!
//! The gateway itself is single-threaded and allocation-light;
//! fleet-scale runs fan out *independent* gateways (one per shared
//! link) on `neuropuls_rt::pool`, whose ordered-merge contract keeps
//! the aggregate deterministic under any thread count.

use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use crate::wire::{Envelope, ProtocolId, Session, SessionAction};
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::sched::{TimerId, TimerWheel};
use neuropuls_rt::trace::{Registry, Tracer, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Human-readable protocol label for traces and reports.
pub fn protocol_label(protocol: ProtocolId) -> &'static str {
    match protocol {
        ProtocolId::MutualAuth => "mutual_auth",
        ProtocolId::Attestation => "attestation",
        ProtocolId::Eke => "eke",
        ProtocolId::SecureNn => "secure_nn",
    }
}

/// One session to multiplex: the two endpoints plus the envelope key
/// (`protocol`, `id`) its frames carry on the shared wire.
pub struct SessionPair<'x> {
    /// Service discriminator routed on.
    pub protocol: ProtocolId,
    /// Session identifier routed on (chosen unique by the caller).
    pub id: u64,
    /// The [`Side::A`] endpoint (verifier / client / initiator).
    pub initiator: Box<dyn Session + 'x>,
    /// The [`Side::B`] endpoint (device / accelerator / responder).
    pub responder: Box<dyn Session + 'x>,
}

/// Capacity and budget knobs of one gateway run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Sessions running concurrently (ARQ clocks ticking).
    pub max_active: usize,
    /// Sessions staged for admission; overflow waits in the backlog.
    pub accept_queue: usize,
    /// Total tick budget for the whole run.
    pub max_ticks: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_active: 64,
            accept_queue: 16,
            max_ticks: 4096,
        }
    }
}

/// Terminal state of one multiplexed session.
#[derive(Debug)]
pub struct GatewayOutcome {
    /// Service the session ran.
    pub protocol: ProtocolId,
    /// Envelope session id.
    pub id: u64,
    /// Active ticks to completion, or the failure that ended it.
    /// Sessions still queued or in flight when the tick budget ran out
    /// report [`ProtocolError::Timeout`] carrying the retransmit tally
    /// the session had actually accumulated when the budget cut it off.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both endpoints.
    pub retransmits: u32,
    /// Tick the session entered the active set (`None` = never admitted).
    pub admitted_at: Option<u64>,
}

/// Aggregate outcome of one gateway run.
#[derive(Debug)]
pub struct GatewayReport {
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions that completed both sides.
    pub completed: usize,
    /// Sessions that failed with a protocol error.
    pub failed: usize,
    /// Sessions still queued or in flight at the tick budget.
    pub unfinished: usize,
    /// Ticks consumed (≤ [`GatewayConfig::max_ticks`]).
    pub ticks: u64,
    /// Total frames retransmitted across all sessions.
    pub retransmits: u64,
    /// Frames routed to an already-closed session (counted, dropped).
    pub late_frames: u64,
    /// Decoded frames whose key matched no known session.
    pub unroutable_frames: u64,
    /// Frames that did not decode as an [`Envelope`].
    pub undecodable_frames: u64,
    /// Most sessions simultaneously active.
    pub peak_active: usize,
    /// Most sessions simultaneously staged in the accept queue.
    pub peak_staged: usize,
    /// [`Session::step`] calls the event-driven scheduler actually made.
    pub session_steps: u64,
    /// `Session::step` calls the dense every-session-every-tick loop
    /// would have made for the same run; the ratio to `session_steps`
    /// is the scheduler's work saving on mostly-idle session mixes.
    pub dense_equiv_steps: u64,
    /// Per-session outcomes, in submission order.
    pub outcomes: Vec<GatewayOutcome>,
}

impl GatewayReport {
    /// Whether every submitted session completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.sessions
    }
}

enum SlotState {
    Backlog,
    Staged,
    Active,
    Closed,
}

/// Event-scheduling bookkeeping for one side of one slot.
#[derive(Clone, Copy, Default)]
struct WakeState {
    /// Tick of the next dense-loop step not yet replayed: every dense
    /// step before it has been applied, either directly or folded into
    /// a [`Session::skip_silence`] fast-forward.
    next_dense_step: u64,
    /// Armed timer for the side's announced wake deadline.
    timer: Option<TimerId>,
    /// Tick this side first reported done (`None` while in flight).
    done_tick: Option<u64>,
    /// Steps taken after done — frame-driven duplicate re-serves.
    post_done_steps: u64,
}

struct Slot<'x> {
    pair: SessionPair<'x>,
    state: SlotState,
    inbox_a: VecDeque<Vec<u8>>,
    inbox_b: VecDeque<Vec<u8>>,
    admitted_at: Option<u64>,
    ticks_active: u32,
    result: Option<Result<u32, ProtocolError>>,
    wake_a: WakeState,
    wake_b: WakeState,
    /// Which side's step failure closed the slot (ordering detail the
    /// dense-equivalent step accounting needs).
    failed_side: Option<Side>,
}

impl Slot<'_> {
    fn close(&mut self, result: Result<u32, ProtocolError>) {
        self.state = SlotState::Closed;
        self.result = Some(result);
    }

    fn retransmits(&self) -> u32 {
        self.pair.initiator.retransmits() + self.pair.responder.retransmits()
    }
}

/// Timer-wheel token for one side of one slot.
fn wake_token(idx: usize, side: Side) -> u64 {
    ((idx as u64) << 1) | u64::from(side == Side::B)
}

/// Inverse of [`wake_token`].
fn token_side(token: u64) -> (usize, Side) {
    let side = if token & 1 == 0 { Side::A } else { Side::B };
    ((token >> 1) as usize, side)
}

/// Runs every session in `sessions` to completion (or failure) over the
/// shared `transport`, multiplexing frames by their envelope key.
///
/// Instrumentation: one `gateway.session` span per session (admission
/// to close, carrying protocol, ticks and retransmits), instants for
/// late / unroutable frames, and `gateway.*` counters plus a
/// `gateway.session_ticks` histogram folded into `registry`. Pass
/// [`Tracer::disabled`] and a throwaway [`Registry`] for an
/// uninstrumented run.
///
/// The report is total: every submitted session appears in
/// [`GatewayReport::outcomes`] exactly once, on every path. Duplicate
/// `(protocol, id)` keys fail the later session immediately with
/// [`ProtocolError::OutOfOrder`] rather than corrupting the demux.
pub fn run_gateway<T: Transport>(
    transport: &mut T,
    sessions: Vec<SessionPair<'_>>,
    config: GatewayConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> GatewayReport {
    let mut slots: Vec<Slot<'_>> = sessions
        .into_iter()
        .map(|pair| Slot {
            pair,
            state: SlotState::Backlog,
            inbox_a: VecDeque::new(),
            inbox_b: VecDeque::new(),
            admitted_at: None,
            ticks_active: 0,
            result: None,
            wake_a: WakeState::default(),
            wake_b: WakeState::default(),
            failed_side: None,
        })
        .collect();
    registry.counter("gateway.sessions", slots.len() as u64);

    // Demux table: envelope key -> slot index. A key maps to at most
    // one *open* slot; closed slots move to `closed_keys` so stragglers
    // are recognized as late rather than unroutable.
    let mut routes: BTreeMap<(ProtocolId, u64), usize> = BTreeMap::new();
    let mut backlog: VecDeque<usize> = VecDeque::new();
    for (idx, slot) in slots.iter_mut().enumerate() {
        let key = (slot.pair.protocol, slot.pair.id);
        match routes.entry(key) {
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(idx);
                backlog.push_back(idx);
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                slot.close(Err(ProtocolError::OutOfOrder(format!(
                    "duplicate gateway session key {}/{}",
                    protocol_label(key.0),
                    key.1
                ))));
            }
        }
    }

    let mut staged: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    // position[idx] = index of slot `idx` inside `active` (usize::MAX
    // when not active); keeps rotation-key lookups O(1).
    let mut position: Vec<usize> = vec![usize::MAX; slots.len()];
    let mut late_frames = 0u64;
    let mut unroutable_frames = 0u64;
    let mut undecodable_frames = 0u64;
    let mut peak_active = 0usize;
    let mut peak_staged = 0usize;
    let mut ticks = 0u64;
    let mut open = slots.iter().filter(|s| s.result.is_none()).count();

    // Event-driven scheduling state: ARQ deadlines live in the timer
    // wheel; `carry_*` holds sides whose inbox still has queued frames
    // after this tick's step (runnable again next tick, like the dense
    // loop's one-frame-per-tick cadence); `session_steps` counts real
    // `Session::step` calls for the O(runnable) claim.
    let mut wheel = TimerWheel::new();
    let mut fired: Vec<(u64, u64)> = Vec::new();
    let mut carry_a: Vec<usize> = Vec::new();
    let mut carry_b: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut session_steps = 0u64;
    let mut dense_equiv_steps = 0u64;

    let mut route = |transport: &mut T,
                     side: Side,
                     slots: &mut Vec<Slot<'_>>,
                     tracer: &mut Tracer,
                     tick: u64,
                     pending: &mut Vec<usize>| {
        while let Some(frame) = transport.recv(side) {
            let Ok(env) = Envelope::from_bytes(&frame) else {
                undecodable_frames += 1;
                continue;
            };
            match routes.get(&(env.protocol, env.session)) {
                Some(&idx) => {
                    // invariant: `routes` only holds indices produced by
                    // enumerate() over `slots`, which never shrinks.
                    let Some(slot) = slots.get_mut(idx) else {
                        unroutable_frames += 1;
                        continue;
                    };
                    if matches!(slot.state, SlotState::Closed) {
                        late_frames += 1;
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.late_frame",
                                vec![
                                    ("protocol", Value::from(protocol_label(env.protocol))),
                                    ("session", Value::from(env.session)),
                                ],
                            );
                        }
                    } else {
                        if side == Side::A {
                            slot.inbox_a.push_back(frame);
                        } else {
                            slot.inbox_b.push_back(frame);
                        }
                        // A frame makes an active side runnable this
                        // tick; staged slots keep it queued and become
                        // runnable at admission instead.
                        if matches!(slot.state, SlotState::Active) {
                            pending.push(idx);
                        }
                    }
                }
                None => {
                    unroutable_frames += 1;
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "gateway.unroutable",
                            vec![
                                ("protocol", Value::from(protocol_label(env.protocol))),
                                ("session", Value::from(env.session)),
                            ],
                        );
                    }
                }
            }
        }
    };

    while open > 0 && ticks < config.max_ticks {
        let tick = ticks;
        // Sides runnable this tick: inbox frames carried over from the
        // last tick, plus admissions / timer fires / routed frames
        // collected below.
        let mut now_a: Vec<usize> = std::mem::take(&mut carry_a);
        let mut now_b: Vec<usize> = std::mem::take(&mut carry_b);

        // Phase 1 — admit: backlog refills the bounded accept queue,
        // the accept queue fills free active capacity, FIFO throughout.
        while staged.len() < config.accept_queue {
            match backlog.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Staged;
                    }
                    staged.push_back(idx);
                }
                None => break,
            }
        }
        peak_staged = peak_staged.max(staged.len());
        while active.len() < config.max_active {
            match staged.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Active;
                        slot.admitted_at = Some(tick);
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.admit",
                                vec![
                                    ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                                    ("session", Value::from(slot.pair.id)),
                                ],
                            );
                        }
                        // Arm the first wake for both sides. The dense
                        // loop steps a fresh side at the admission tick
                        // itself, so a side announcing `In(n)` fires at
                        // `tick + n - 1`; frames queued while staged
                        // make it runnable immediately.
                        for side in [Side::A, Side::B] {
                            let (session, queued) = match side {
                                Side::A => (slot.pair.initiator.as_ref(), !slot.inbox_a.is_empty()),
                                Side::B => (slot.pair.responder.as_ref(), !slot.inbox_b.is_empty()),
                            };
                            let deadline = session.next_wake().admission_deadline(tick);
                            let wake = match side {
                                Side::A => &mut slot.wake_a,
                                Side::B => &mut slot.wake_b,
                            };
                            wake.next_dense_step = tick;
                            if queued || deadline == Some(tick) {
                                match side {
                                    Side::A => now_a.push(idx),
                                    Side::B => now_b.push(idx),
                                }
                            } else if let Some(d) = deadline {
                                wake.timer = Some(wheel.schedule_at(d, wake_token(idx, side)));
                            }
                        }
                    }
                    position[idx] = active.len();
                    active.push(idx);
                }
                None => break,
            }
        }
        peak_active = peak_active.max(active.len());

        // Phase 2 — expire: collect the sides whose announced ARQ
        // deadline is this tick. Timers armed during this tick's
        // admission all lie strictly in the future.
        fired.clear();
        wheel.advance_to(tick, &mut fired);
        for &(_, token) in &fired {
            let (idx, side) = token_side(token);
            match side {
                Side::A => now_a.push(idx),
                Side::B => now_b.push(idx),
            }
        }

        // Fair rotation: which active session transmits first cycles
        // with the tick, so early slots get no standing head start on
        // the shared wire. Runnable sides are stepped in exactly the
        // rotated order the dense loop would have visited them, so the
        // shared-wire send sequence is identical.
        let len = active.len();
        let rotation = if len == 0 { 0 } else { (tick as usize) % len };

        // Phase 3/4 — deliver pending side-A frames, step runnable
        // initiators.
        route(transport, Side::A, &mut slots, tracer, tick, &mut now_a);
        let run_a = runnable_order(&mut now_a, &slots, &position, len, rotation);
        for &idx in &run_a {
            step_wake(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::A,
                tick,
                &mut session_steps,
                &mut carry_a,
                &mut touched,
            );
        }

        // Phase 5 — the responder mirror.
        route(transport, Side::B, &mut slots, tracer, tick, &mut now_b);
        let run_b = runnable_order(&mut now_b, &slots, &position, len, rotation);
        for &idx in &run_b {
            step_wake(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::B,
                tick,
                &mut session_steps,
                &mut carry_b,
                &mut touched,
            );
        }

        // Phase 6 — close finished and failed slots. Only slots stepped
        // this tick can newly satisfy a close condition, and the dense
        // loop emitted closes in rotation order, so visit the touched
        // set in that order.
        touched.sort_unstable_by_key(|&idx| (position[idx] + len - rotation) % len);
        touched.dedup();
        let mut any_closed = false;
        for &idx in &touched {
            let Some(slot) = slots.get_mut(idx) else {
                continue;
            };
            if matches!(slot.state, SlotState::Closed) {
                continue;
            }
            let ta = slot.admitted_at.unwrap_or(tick);
            if slot.result.is_some() {
                // A side failed during stepping this tick. The dense
                // loop ticked this slot's clock on every prior active
                // tick but not the failing one.
                slot.ticks_active = (tick - ta) as u32;
                slot.state = SlotState::Closed;
            } else if slot.pair.initiator.done() && slot.pair.responder.done() {
                slot.ticks_active = (tick - ta + 1) as u32;
                let t = slot.ticks_active;
                slot.close(Ok(t));
            } else {
                continue;
            }
            for wake in [&mut slot.wake_a, &mut slot.wake_b] {
                if let Some(id) = wake.timer.take() {
                    wheel.cancel(id);
                }
            }
            dense_equiv_steps += dense_steps_at_close(slot, tick);
            if tracer.is_enabled() {
                let ok = matches!(slot.result, Some(Ok(_)));
                tracer.instant(
                    tick,
                    "gateway.session_closed",
                    vec![
                        ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                        ("session", Value::from(slot.pair.id)),
                        ("ok", Value::from(ok)),
                        ("ticks", Value::from(slot.ticks_active)),
                        ("retransmits", Value::from(slot.retransmits())),
                    ],
                );
            }
            open = open.saturating_sub(1);
            any_closed = true;
        }
        touched.clear();
        if any_closed {
            active.retain(|&idx| {
                let keep = slots
                    .get(idx)
                    .is_some_and(|s| !matches!(s.state, SlotState::Closed));
                if !keep {
                    position[idx] = usize::MAX;
                }
                keep
            });
            for (pos, &idx) in active.iter().enumerate() {
                position[idx] = pos;
            }
        }

        ticks += 1;
    }

    // Budget exhausted: everything still open is unfinished. The
    // timeout error reports the retransmit tally the session had
    // actually accumulated when the budget cut it off, not a flat zero.
    let mut unfinished = 0usize;
    for slot in &mut slots {
        if slot.result.is_none() {
            unfinished += 1;
            if matches!(slot.state, SlotState::Active) {
                dense_equiv_steps += dense_steps_unfinished(slot, ticks);
            }
            let retries = slot.retransmits();
            slot.close(Err(ProtocolError::Timeout { retries }));
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut retransmits = 0u64;
    let outcomes: Vec<GatewayOutcome> = slots
        .into_iter()
        .map(|slot| {
            let result = slot
                .result
                .unwrap_or(Err(ProtocolError::Timeout { retries: 0 }));
            match &result {
                Ok(t) => {
                    completed += 1;
                    registry.observe("gateway.session_ticks", f64::from(*t));
                }
                Err(_) => failed += 1,
            }
            let r = slot.pair.initiator.retransmits() + slot.pair.responder.retransmits();
            retransmits += u64::from(r);
            GatewayOutcome {
                protocol: slot.pair.protocol,
                id: slot.pair.id,
                result,
                retransmits: r,
                admitted_at: slot.admitted_at,
            }
        })
        .collect();
    // `failed` counted every Err outcome; unfinished sessions are their
    // own column, not protocol failures.
    failed = failed.saturating_sub(unfinished);

    registry.counter("gateway.completed", completed as u64);
    registry.counter("gateway.failed", failed as u64);
    registry.counter("gateway.unfinished", unfinished as u64);
    registry.counter("gateway.retransmits", retransmits);
    registry.counter("gateway.late_frames", late_frames);
    registry.counter("gateway.unroutable_frames", unroutable_frames);
    registry.counter("gateway.undecodable_frames", undecodable_frames);
    registry.counter("gateway.session_steps", session_steps);
    registry.counter("gateway.dense_equiv_steps", dense_equiv_steps);

    let report = GatewayReport {
        sessions: outcomes.len(),
        completed,
        failed,
        unfinished,
        ticks,
        retransmits,
        late_frames,
        unroutable_frames,
        undecodable_frames,
        peak_active,
        peak_staged,
        session_steps,
        dense_equiv_steps,
        outcomes,
    };
    if tracer.is_enabled() {
        tracer.instant(
            ticks.saturating_sub(1),
            "gateway.result",
            vec![
                ("sessions", Value::from(report.sessions)),
                ("completed", Value::from(report.completed)),
                ("failed", Value::from(report.failed)),
                ("unfinished", Value::from(report.unfinished)),
                ("ticks", Value::from(report.ticks)),
                ("retransmits", Value::from(report.retransmits)),
                ("late_frames", Value::from(report.late_frames)),
                ("peak_active", Value::from(report.peak_active)),
            ],
        );
    }
    report
}

/// Dedups one tick's candidate runnable sides and orders them exactly
/// as the dense loop's tick-rotated round-robin would have visited
/// them. Stale candidates (slots no longer active) are dropped.
fn runnable_order(
    cand: &mut Vec<usize>,
    slots: &[Slot<'_>],
    position: &[usize],
    len: usize,
    rotation: usize,
) -> Vec<usize> {
    if len == 0 {
        cand.clear();
        return Vec::new();
    }
    let mut keyed: Vec<(usize, usize)> = cand
        .drain(..)
        .filter(|&idx| {
            slots
                .get(idx)
                .is_some_and(|s| matches!(s.state, SlotState::Active))
                && position.get(idx).is_some_and(|&p| p != usize::MAX)
        })
        .map(|idx| ((position[idx] + len - rotation) % len, idx))
        .collect();
    keyed.sort_unstable();
    keyed.dedup();
    keyed.into_iter().map(|(_, idx)| idx).collect()
}

/// Steps one runnable side of one active slot with at most one inbox
/// frame, after fast-forwarding the silent steps the dense loop would
/// have taken since the side's last real step. Mirrors the per-tick
/// cadence of [`crate::wire::drive`]: a finished side with an
/// empty inbox is left alone (its clock stops), a finished side *with*
/// a frame still steps so it can re-serve duplicates, and a step
/// failure closes the whole slot. Re-arms the side's wake timer from
/// [`Session::next_wake`] and carries the side to the next tick when
/// its inbox still holds queued frames.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn step_wake<T: Transport>(
    transport: &mut T,
    slots: &mut [Slot<'_>],
    wheel: &mut TimerWheel,
    idx: usize,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
    carry: &mut Vec<usize>,
    touched: &mut Vec<usize>,
) {
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    if slot.result.is_some() || !matches!(slot.state, SlotState::Active) {
        return;
    }
    let frame = match side {
        Side::A => slot.inbox_a.pop_front(),
        Side::B => slot.inbox_b.pop_front(),
    };
    let queued_after = match side {
        Side::A => !slot.inbox_a.is_empty(),
        Side::B => !slot.inbox_b.is_empty(),
    };
    let (session, wake): (&mut dyn Session, &mut WakeState) = match side {
        Side::A => (slot.pair.initiator.as_mut(), &mut slot.wake_a),
        Side::B => (slot.pair.responder.as_mut(), &mut slot.wake_b),
    };
    let out = step_side_core(
        transport,
        session,
        wake,
        frame,
        wheel,
        wake_token(idx, side),
        side,
        tick,
        session_steps,
    );
    if !out.stepped {
        return;
    }
    touched.push(idx);
    if let Some(e) = out.error {
        slot.result = Some(Err(e));
        slot.failed_side = Some(side);
    }
    if slot.result.is_none() && queued_after {
        carry.push(idx);
    }
}

/// What [`step_side_core`] produced: whether a real `Session::step`
/// happened, and the failure that must close the slot, if any.
struct SideStep {
    stepped: bool,
    error: Option<ProtocolError>,
}

/// The side-step core shared by [`run_gateway`] and
/// [`run_persistent_gateway`]: replays the silent gap the dense loop
/// would have ticked through, makes at most one real `Session::step`
/// with `frame`, re-arms the side's wake timer from
/// [`Session::next_wake`] (under `token`) and transmits whatever the
/// step produced. A finished side with no frame is left alone — its
/// clock is stopped, exactly like the dense loop.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn step_side_core<T: Transport>(
    transport: &mut T,
    session: &mut dyn Session,
    wake: &mut WakeState,
    frame: Option<Vec<u8>>,
    wheel: &mut TimerWheel,
    token: u64,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
) -> SideStep {
    if frame.is_none() && session.done() {
        // The dense loop skips a finished side with nothing to read.
        return SideStep {
            stepped: false,
            error: None,
        };
    }
    let was_done = session.done();
    if !was_done {
        // Replay the frameless steps the dense loop took between this
        // side's last real step and now; the `NextWake` contract
        // guarantees they were all silent idle-clock ticks.
        let gap = tick.saturating_sub(wake.next_dense_step);
        if gap > 0 {
            session.skip_silence(gap as u32);
        }
    }
    *session_steps += 1;
    let step_result = session.step(frame.as_deref());
    let now_done = session.done();
    let wants = if step_result.is_ok() && !now_done {
        Some(session.next_wake())
    } else {
        None
    };
    wake.next_dense_step = tick + 1;
    if was_done {
        wake.post_done_steps += 1;
    } else if now_done && wake.done_tick.is_none() {
        wake.done_tick = Some(tick);
    }
    if let Some(id) = wake.timer.take() {
        wheel.cancel(id);
    }
    if let Some(w) = wants {
        if let Some(d) = w.rearm_deadline(tick) {
            wake.timer = Some(wheel.schedule_at(d, token));
        }
    }
    match step_result {
        Ok(SessionAction::Send(f)) => {
            transport.send(side, f);
            SideStep {
                stepped: true,
                error: None,
            }
        }
        Ok(SessionAction::Wait | SessionAction::Done) => SideStep {
            stepped: true,
            error: None,
        },
        Err(e) => SideStep {
            stepped: true,
            error: Some(e),
        },
    }
}

/// `Session::step` calls the dense O(active) loop would have made for
/// this slot, reconstructed when the slot closes at `tick`. Per side:
/// one step per active tick until the side finished (or the slot
/// closed), plus the frame-driven steps a finished side took to
/// re-serve duplicates.
fn dense_steps_at_close(slot: &Slot<'_>, tick: u64) -> u64 {
    let Some(ta) = slot.admitted_at else {
        return 0;
    };
    let mut total = 0u64;
    for side in [Side::A, Side::B] {
        let wake = match side {
            Side::A => &slot.wake_a,
            Side::B => &slot.wake_b,
        };
        // The last tick the dense loop would step this side: the close
        // tick, except the responder of a slot whose initiator failed
        // earlier in the same tick (its phase never runs).
        let last = if matches!((slot.failed_side, side), (Some(Side::A), Side::B)) {
            tick.saturating_sub(1)
        } else {
            tick
        };
        total += match wake.done_tick {
            Some(td) => (td - ta + 1) + wake.post_done_steps,
            None => (last + 1).saturating_sub(ta),
        };
    }
    total
}

/// [`dense_steps_at_close`] for a slot still active when the tick
/// budget (`end` ticks, exclusive) ran out: the dense loop would have
/// stepped each unfinished side on every remaining tick.
fn dense_steps_unfinished(slot: &Slot<'_>, end: u64) -> u64 {
    let Some(ta) = slot.admitted_at else {
        return 0;
    };
    let mut total = 0u64;
    for wake in [&slot.wake_a, &slot.wake_b] {
        total += match wake.done_tick {
            Some(td) => (td - ta + 1) + wake.post_done_steps,
            None => end.saturating_sub(ta),
        };
    }
    total
}

// ---------------------------------------------------------------------------
// Persistent keep-alive slots
// ---------------------------------------------------------------------------

/// One epoch's session pair, built by a [`KeepAlive`] controller when a
/// slot's re-attestation timer fires.
pub struct EpochSession<I, R> {
    /// Service discriminator the epoch's envelopes are routed on.
    pub protocol: ProtocolId,
    /// Envelope session id. Must be unique across the whole run: a
    /// stale frame from an earlier epoch must never key-match a live
    /// session, only ever land in the late-frame bin.
    pub id: u64,
    /// The [`Side::A`] endpoint.
    pub initiator: I,
    /// The [`Side::B`] endpoint.
    pub responder: R,
}

/// Terminal state of one keep-alive epoch, handed back to the
/// controller together with its endpoints.
#[derive(Debug)]
pub struct EpochOutcome {
    /// Active ticks to completion, or the failure that ended the epoch.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both endpoints this epoch.
    pub retransmits: u32,
    /// Whether the epoch-budget deadline (or the run horizon) forced
    /// this close before the protocol finished.
    pub missed_deadline: bool,
}

impl EpochOutcome {
    /// Whether the epoch's protocol run completed successfully.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// The controller's verdict on a slot after one of its epochs closed.
pub enum SlotVerdict {
    /// Keep the slot resident and fire its next epoch at tick `at`
    /// (clamped into the future by the timer wheel).
    Rearm {
        /// Absolute tick of the next epoch fire.
        at: u64,
    },
    /// Evict the device: the slot never fires again and its residency
    /// ends at the closing tick.
    Evict,
}

/// Lifecycle policy for the resident slots of one persistent gateway
/// run. The controller owns everything long-lived (device identities,
/// CRP checkouts, eviction counters); the gateway owns everything
/// per-epoch (timers, inboxes, wire scheduling). Associated endpoint
/// types let the controller recover its concrete session objects at
/// epoch close — e.g. a `WireVerifier<Verifier>` checked out of a CRP
/// store at fire time and committed back at close.
pub trait KeepAlive {
    /// The [`Side::A`] endpoint type for this controller's epochs.
    type Initiator: Session;
    /// The [`Side::B`] endpoint type for this controller's epochs.
    type Responder: Session;

    /// A slot's re-attestation timer fired at `now`: build the epoch's
    /// session pair, or return `None` to leave the fleet voluntarily
    /// (the slot departs and never fires again).
    fn on_fire(
        &mut self,
        slot: usize,
        epoch: u32,
        now: u64,
    ) -> Option<EpochSession<Self::Initiator, Self::Responder>>;

    /// An epoch closed at `now` (protocol finished, a side failed, the
    /// epoch budget expired, or the run horizon cut it off). The
    /// endpoints are handed back; decide whether the slot re-arms or is
    /// evicted. A `Rearm` verdict after the horizon cutoff is ignored.
    fn on_close(
        &mut self,
        slot: usize,
        epoch: u32,
        now: u64,
        outcome: &EpochOutcome,
        initiator: Self::Initiator,
        responder: Self::Responder,
    ) -> SlotVerdict;
}

/// Knobs for [`run_persistent_gateway`].
#[derive(Debug, Clone, Copy)]
pub struct PersistentConfig {
    /// Last tick processed (the run covers ticks `1..=horizon`). Any
    /// epoch still live at the horizon closes as missed.
    pub horizon: u64,
    /// Ticks an epoch may stay live before its deadline timer
    /// force-closes it as missed (`0` = unbounded).
    pub epoch_budget: u64,
}

impl Default for PersistentConfig {
    fn default() -> Self {
        Self {
            horizon: 4096,
            epoch_budget: 0,
        }
    }
}

/// What one persistent keep-alive run did, in aggregate.
#[derive(Debug, Clone)]
pub struct PersistentReport {
    /// Slots the run was started with.
    pub slots: usize,
    /// Slots whose first epoch actually fired inside the horizon.
    pub joined: usize,
    /// Slots that left voluntarily (`on_fire` returned `None`).
    pub left: usize,
    /// Slots evicted by the controller's verdict.
    pub evicted: usize,
    /// Last tick processed.
    pub ticks: u64,
    /// Epochs whose session pair was admitted.
    pub epochs_fired: u64,
    /// Epochs that finished their protocol successfully.
    pub epochs_completed: u64,
    /// Epochs closed by a protocol failure before any deadline.
    pub epochs_failed: u64,
    /// Epochs force-closed by the epoch budget or the horizon.
    pub epochs_missed: u64,
    /// Frames retransmitted across all epochs.
    pub retransmits: u64,
    /// Frames that arrived for an already-closed epoch.
    pub late_frames: u64,
    /// Frames whose envelope key matched no epoch ever admitted.
    pub unroutable_frames: u64,
    /// Frames that did not decode as envelopes at all.
    pub undecodable_frames: u64,
    /// Most epochs live at once.
    pub peak_live: usize,
    /// Real `Session::step` calls made.
    pub session_steps: u64,
    /// Steps the dense no-timer counterfactual would have made: a
    /// keep-alive loop without a timer wheel must poll both sides of
    /// every *resident* device on every tick of its residency, idle
    /// epochs-gaps included — `2 × resident_ticks` per slot.
    pub dense_equiv_steps: u64,
}

impl PersistentReport {
    /// `dense_equiv_steps / session_steps`: how many dense-counterfactual
    /// steps each real step replaced.
    pub fn step_saving(&self) -> f64 {
        if self.session_steps == 0 {
            return 0.0;
        }
        self.dense_equiv_steps as f64 / self.session_steps as f64
    }
}

/// One live epoch riding a resident slot.
struct LiveEpoch<I, R> {
    protocol: ProtocolId,
    id: u64,
    epoch: u32,
    initiator: I,
    responder: R,
    inbox_a: VecDeque<Vec<u8>>,
    inbox_b: VecDeque<Vec<u8>>,
    wake_a: WakeState,
    wake_b: WakeState,
    started_at: u64,
    deadline: Option<TimerId>,
    /// Set by a failing `Session::step`; success is computed at close.
    result: Option<Result<u32, ProtocolError>>,
}

/// One resident device slot: alive from its first fire until it leaves
/// or is evicted, holding at most one live epoch at a time.
struct KeepSlot<I, R> {
    live: Option<LiveEpoch<I, R>>,
    next_epoch: u32,
    fire: Option<TimerId>,
    joined_at: Option<u64>,
    departed_at: Option<u64>,
}

/// Timer-token kinds for persistent slots: `token = slot * 4 + kind`.
const KIND_WAKE_A: u64 = 0;
const KIND_WAKE_B: u64 = 1;
const KIND_FIRE: u64 = 2;
const KIND_DEADLINE: u64 = 3;

fn keep_token(idx: usize, kind: u64) -> u64 {
    ((idx as u64) << 2) | kind
}

/// Frame-classification counters shared by both route directions.
#[derive(Default)]
struct FrameCounters {
    late: u64,
    unroutable: u64,
    undecodable: u64,
}

/// [`runnable_order`] for persistent slots: a candidate is runnable
/// while its slot holds a live epoch.
fn keep_runnable_order<I, R>(
    cand: &mut Vec<usize>,
    slots: &[KeepSlot<I, R>],
    position: &[usize],
    len: usize,
    rotation: usize,
) -> Vec<usize> {
    if len == 0 {
        cand.clear();
        return Vec::new();
    }
    let mut keyed: Vec<(usize, usize)> = cand
        .drain(..)
        .filter(|&idx| {
            slots.get(idx).is_some_and(|s| s.live.is_some())
                && position.get(idx).is_some_and(|&p| p != usize::MAX)
        })
        .map(|idx| ((position[idx] + len - rotation) % len, idx))
        .collect();
    keyed.sort_unstable();
    keyed.dedup();
    keyed.into_iter().map(|(_, idx)| idx).collect()
}

/// Drains one transport direction into live-epoch inboxes, classifying
/// everything else: closed-epoch keys are late, never-seen keys are
/// unroutable, undecodable bytes are counted and dropped.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn route_keepalive<T: Transport, I, R>(
    transport: &mut T,
    side: Side,
    slots: &mut [KeepSlot<I, R>],
    routes: &BTreeMap<(ProtocolId, u64), usize>,
    closed_keys: &BTreeSet<(ProtocolId, u64)>,
    tracer: &mut Tracer,
    tick: u64,
    pending: &mut Vec<usize>,
    counters: &mut FrameCounters,
) {
    while let Some(frame) = transport.recv(side) {
        let Ok(env) = Envelope::from_bytes(&frame) else {
            counters.undecodable += 1;
            continue;
        };
        let key = (env.protocol, env.session);
        match routes.get(&key) {
            Some(&idx) => {
                let Some(live) = slots.get_mut(idx).and_then(|s| s.live.as_mut()) else {
                    counters.unroutable += 1;
                    continue;
                };
                if side == Side::A {
                    live.inbox_a.push_back(frame);
                } else {
                    live.inbox_b.push_back(frame);
                }
                pending.push(idx);
            }
            None if closed_keys.contains(&key) => {
                counters.late += 1;
                if tracer.is_enabled() {
                    tracer.instant(
                        tick,
                        "keepalive.late_frame",
                        vec![
                            ("protocol", Value::from(protocol_label(env.protocol))),
                            ("session", Value::from(env.session)),
                        ],
                    );
                }
            }
            None => {
                counters.unroutable += 1;
                if tracer.is_enabled() {
                    tracer.instant(
                        tick,
                        "keepalive.unroutable",
                        vec![
                            ("protocol", Value::from(protocol_label(env.protocol))),
                            ("session", Value::from(env.session)),
                        ],
                    );
                }
            }
        }
    }
}

/// [`step_wake`] for persistent slots: steps one runnable side of one
/// live epoch through [`step_side_core`], records a step failure on the
/// epoch and carries the side when frames stay queued.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn step_keepalive<T: Transport, I: Session, R: Session>(
    transport: &mut T,
    slots: &mut [KeepSlot<I, R>],
    wheel: &mut TimerWheel,
    idx: usize,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
    carry: &mut Vec<usize>,
    touched: &mut Vec<usize>,
) {
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    let Some(live) = slot.live.as_mut() else {
        return;
    };
    if live.result.is_some() {
        return;
    }
    let frame = match side {
        Side::A => live.inbox_a.pop_front(),
        Side::B => live.inbox_b.pop_front(),
    };
    let queued_after = match side {
        Side::A => !live.inbox_a.is_empty(),
        Side::B => !live.inbox_b.is_empty(),
    };
    let kind = match side {
        Side::A => KIND_WAKE_A,
        Side::B => KIND_WAKE_B,
    };
    let (session, wake): (&mut dyn Session, &mut WakeState) = match side {
        Side::A => (&mut live.initiator, &mut live.wake_a),
        Side::B => (&mut live.responder, &mut live.wake_b),
    };
    let out = step_side_core(
        transport,
        session,
        wake,
        frame,
        wheel,
        keep_token(idx, kind),
        side,
        tick,
        session_steps,
    );
    if !out.stepped {
        return;
    }
    touched.push(idx);
    if let Some(e) = out.error {
        live.result = Some(Err(e));
    }
    if live.result.is_none() && queued_after {
        carry.push(idx);
    }
}

/// Drives a fleet of long-lived keep-alive slots over one shared
/// transport. Each slot stays resident across its whole lifetime;
/// periodic re-attestation epochs are armed as timers on the runtime
/// timer wheel and the loop fast-forwards over the idle gaps between
/// epochs (no live session and no carried frames ⇒ jump straight to
/// the next armed deadline). Within an epoch the per-tick cadence is
/// exactly [`run_gateway`]'s: route A → step runnable initiators →
/// route B → step runnable responders → close, with the same
/// tick-rotated fairness (rotation restarts whenever the live set goes
/// from empty to non-empty, so a lone cohort of epochs replays the
/// dense loop's `tick % len` rotation from zero).
///
/// `first_fire[i]` arms slot `i`'s first epoch; ticks start at 1 (a
/// `first_fire` of 0 fires at tick 1). Same-tick fires admit in slot
/// order, so a zero-jitter cohort builds its sessions in exactly the
/// device order a round-by-round sweep would.
pub fn run_persistent_gateway<T: Transport, K: KeepAlive>(
    transport: &mut T,
    first_fire: &[u64],
    controller: &mut K,
    config: PersistentConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> PersistentReport {
    let n = first_fire.len();
    let mut slots: Vec<KeepSlot<K::Initiator, K::Responder>> = (0..n)
        .map(|_| KeepSlot {
            live: None,
            next_epoch: 0,
            fire: None,
            joined_at: None,
            departed_at: None,
        })
        .collect();
    let mut wheel = TimerWheel::new();
    for (i, &at) in first_fire.iter().enumerate() {
        slots[i].fire = Some(wheel.schedule_at(at, keep_token(i, KIND_FIRE)));
    }
    registry.counter("keepalive.slots", n as u64);

    let mut routes: BTreeMap<(ProtocolId, u64), usize> = BTreeMap::new();
    let mut closed_keys: BTreeSet<(ProtocolId, u64)> = BTreeSet::new();
    let mut live_order: Vec<usize> = Vec::new();
    let mut position: Vec<usize> = vec![usize::MAX; n];
    // Rotation epoch base: reset whenever the live set goes from empty
    // to non-empty so an isolated cohort rotates exactly like a dense
    // run started at its fire tick.
    let mut busy_base = 0u64;

    let mut counters = FrameCounters::default();
    let mut fired: Vec<(u64, u64)> = Vec::new();
    let mut carry_a: Vec<usize> = Vec::new();
    let mut carry_b: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut fires: Vec<usize> = Vec::new();
    let mut expired: Vec<usize> = Vec::new();

    let mut joined = 0usize;
    let mut left = 0usize;
    let mut evicted = 0usize;
    let mut epochs_fired = 0u64;
    let mut epochs_completed = 0u64;
    let mut epochs_failed = 0u64;
    let mut epochs_missed = 0u64;
    let mut retransmits = 0u64;
    let mut peak_live = 0usize;
    let mut session_steps = 0u64;
    let mut dense_equiv_steps = 0u64;

    let mut tick = 0u64;
    loop {
        // Pick the next tick anything can happen on. With no live
        // epoch and no carried frames, jump straight to the next armed
        // timer — the idle fast-forward between attestation epochs.
        let idle = live_order.is_empty() && carry_a.is_empty() && carry_b.is_empty();
        let next = if idle {
            match wheel.next_deadline() {
                Some(d) => d,
                // No slot will ever fire again: the fleet has fully
                // departed.
                None => break,
            }
        } else {
            tick + 1
        };
        if next > config.horizon {
            break;
        }
        tick = next;

        let mut now_a: Vec<usize> = std::mem::take(&mut carry_a);
        let mut now_b: Vec<usize> = std::mem::take(&mut carry_b);

        // Phase 1 — timers: wake fires feed the runnable sets, epoch
        // fires admit new sessions, deadline fires force-close.
        fired.clear();
        wheel.advance_to(tick, &mut fired);
        fires.clear();
        expired.clear();
        for &(_, token) in &fired {
            let idx = (token >> 2) as usize;
            match token & 3 {
                KIND_WAKE_A => now_a.push(idx),
                KIND_WAKE_B => now_b.push(idx),
                KIND_FIRE => fires.push(idx),
                _ => expired.push(idx),
            }
        }
        // The wheel yields same-deadline timers in schedule order —
        // i.e. the close order of the previous epochs. Admission must
        // be in slot order so a zero-jitter cohort matches a
        // round-by-round sweep's device-order session construction.
        fires.sort_unstable();
        expired.sort_unstable();

        // Phase 2 — epoch-budget expiries close their epochs as missed
        // before anything steps this tick.
        let mut any_expired = false;
        for &i in &expired {
            let (epoch, outcome, initiator, responder) = {
                let Some(slot) = slots.get_mut(i) else {
                    continue;
                };
                let Some(mut live) = slot.live.take() else {
                    continue;
                };
                live.deadline = None;
                for wake in [&mut live.wake_a, &mut live.wake_b] {
                    if let Some(id) = wake.timer.take() {
                        wheel.cancel(id);
                    }
                }
                routes.remove(&(live.protocol, live.id));
                closed_keys.insert((live.protocol, live.id));
                let r = live.initiator.retransmits() + live.responder.retransmits();
                retransmits += u64::from(r);
                let outcome = EpochOutcome {
                    result: Err(ProtocolError::Timeout { retries: r }),
                    retransmits: r,
                    missed_deadline: true,
                };
                (live.epoch, outcome, live.initiator, live.responder)
            };
            epochs_missed += 1;
            if tracer.is_enabled() {
                tracer.instant(
                    tick,
                    "keepalive.close",
                    vec![
                        ("slot", Value::from(i as u64)),
                        ("epoch", Value::from(u64::from(epoch))),
                        ("ok", Value::from(false)),
                        ("missed", Value::from(true)),
                        ("retransmits", Value::from(outcome.retransmits)),
                    ],
                );
            }
            let verdict = controller.on_close(i, epoch, tick, &outcome, initiator, responder);
            apply_verdict(
                &mut slots[i],
                i,
                verdict,
                tick,
                &mut wheel,
                &mut evicted,
                &mut dense_equiv_steps,
                tracer,
            );
            any_expired = true;
        }
        if any_expired {
            reindex_live(&mut live_order, &slots, &mut position);
        }

        // Phase 3 — epoch fires admit new sessions, mirroring
        // `run_gateway`'s admission: both sides' first wakes derive
        // from `next_wake` at the fire tick itself.
        for &i in &fires {
            let Some(slot) = slots.get(i) else {
                continue;
            };
            if slot.live.is_some() || slot.departed_at.is_some() {
                // A stale fire for a slot that was force-closed and
                // re-armed the same tick cannot happen (re-arms clamp
                // into the future); be safe anyway.
                continue;
            }
            let epoch = slots[i].next_epoch;
            slots[i].next_epoch += 1;
            slots[i].fire = None;
            match controller.on_fire(i, epoch, tick) {
                None => {
                    // Voluntary departure.
                    if slots[i].joined_at.is_none() {
                        slots[i].joined_at = Some(tick);
                        joined += 1;
                    }
                    slots[i].departed_at = Some(tick);
                    left += 1;
                    dense_equiv_steps += resident_dense_steps(&slots[i], tick);
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "keepalive.leave",
                            vec![("slot", Value::from(i as u64))],
                        );
                    }
                }
                Some(es) => {
                    if slots[i].joined_at.is_none() {
                        slots[i].joined_at = Some(tick);
                        joined += 1;
                    }
                    epochs_fired += 1;
                    let key = (es.protocol, es.id);
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "keepalive.fire",
                            vec![
                                ("slot", Value::from(i as u64)),
                                ("epoch", Value::from(u64::from(epoch))),
                                ("protocol", Value::from(protocol_label(es.protocol))),
                                ("session", Value::from(es.id)),
                            ],
                        );
                    }
                    if routes.contains_key(&key) {
                        // Session-id collision with a live epoch: the
                        // epoch fails instantly instead of hijacking an
                        // open route.
                        epochs_failed += 1;
                        let outcome = EpochOutcome {
                            result: Err(ProtocolError::OutOfOrder(format!(
                                "duplicate keepalive session key {}/{}",
                                protocol_label(key.0),
                                key.1
                            ))),
                            retransmits: 0,
                            missed_deadline: false,
                        };
                        let verdict = controller.on_close(
                            i,
                            epoch,
                            tick,
                            &outcome,
                            es.initiator,
                            es.responder,
                        );
                        apply_verdict(
                            &mut slots[i],
                            i,
                            verdict,
                            tick,
                            &mut wheel,
                            &mut evicted,
                            &mut dense_equiv_steps,
                            tracer,
                        );
                        continue;
                    }
                    routes.insert(key, i);
                    closed_keys.remove(&key);
                    let mut live = LiveEpoch {
                        protocol: es.protocol,
                        id: es.id,
                        epoch,
                        initiator: es.initiator,
                        responder: es.responder,
                        inbox_a: VecDeque::new(),
                        inbox_b: VecDeque::new(),
                        wake_a: WakeState {
                            next_dense_step: tick,
                            ..WakeState::default()
                        },
                        wake_b: WakeState {
                            next_dense_step: tick,
                            ..WakeState::default()
                        },
                        started_at: tick,
                        deadline: None,
                        result: None,
                    };
                    if config.epoch_budget > 0 {
                        live.deadline =
                            Some(wheel.schedule_at(
                                tick + config.epoch_budget,
                                keep_token(i, KIND_DEADLINE),
                            ));
                    }
                    for side in [Side::A, Side::B] {
                        let session: &dyn Session = match side {
                            Side::A => &live.initiator,
                            Side::B => &live.responder,
                        };
                        let deadline = session.next_wake().admission_deadline(tick);
                        let kind = match side {
                            Side::A => KIND_WAKE_A,
                            Side::B => KIND_WAKE_B,
                        };
                        let wake = match side {
                            Side::A => &mut live.wake_a,
                            Side::B => &mut live.wake_b,
                        };
                        if deadline == Some(tick) {
                            match side {
                                Side::A => now_a.push(i),
                                Side::B => now_b.push(i),
                            }
                        } else if let Some(d) = deadline {
                            wake.timer = Some(wheel.schedule_at(d, keep_token(i, kind)));
                        }
                    }
                    if live_order.is_empty() {
                        busy_base = tick;
                    }
                    slots[i].live = Some(live);
                    position[i] = live_order.len();
                    live_order.push(i);
                }
            }
        }
        peak_live = peak_live.max(live_order.len());

        // Phases 4/5 — exactly `run_gateway`'s per-tick cadence on the
        // live set, with rotation measured from the cohort's busy base.
        let len = live_order.len();
        let rotation = if len == 0 {
            0
        } else {
            ((tick - busy_base) as usize) % len
        };

        route_keepalive(
            transport,
            Side::A,
            &mut slots,
            &routes,
            &closed_keys,
            tracer,
            tick,
            &mut now_a,
            &mut counters,
        );
        let run_a = keep_runnable_order(&mut now_a, &slots, &position, len, rotation);
        for &idx in &run_a {
            step_keepalive(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::A,
                tick,
                &mut session_steps,
                &mut carry_a,
                &mut touched,
            );
        }

        route_keepalive(
            transport,
            Side::B,
            &mut slots,
            &routes,
            &closed_keys,
            tracer,
            tick,
            &mut now_b,
            &mut counters,
        );
        let run_b = keep_runnable_order(&mut now_b, &slots, &position, len, rotation);
        for &idx in &run_b {
            step_keepalive(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::B,
                tick,
                &mut session_steps,
                &mut carry_b,
                &mut touched,
            );
        }

        // Phase 6 — close finished and failed epochs in rotation order,
        // mirroring the dense loop's close emission order.
        touched.sort_unstable_by_key(|&idx| (position[idx] + len - rotation) % len);
        touched.dedup();
        let mut any_closed = false;
        for &i in &touched {
            let closing = {
                let Some(live) = slots.get(i).and_then(|s| s.live.as_ref()) else {
                    continue;
                };
                live.result.is_some() || (live.initiator.done() && live.responder.done())
            };
            if !closing {
                continue;
            }
            let (epoch, outcome, initiator, responder) = {
                let slot = &mut slots[i];
                let Some(mut live) = slot.live.take() else {
                    continue;
                };
                for wake in [&mut live.wake_a, &mut live.wake_b] {
                    if let Some(id) = wake.timer.take() {
                        wheel.cancel(id);
                    }
                }
                if let Some(id) = live.deadline.take() {
                    wheel.cancel(id);
                }
                routes.remove(&(live.protocol, live.id));
                closed_keys.insert((live.protocol, live.id));
                let r = live.initiator.retransmits() + live.responder.retransmits();
                retransmits += u64::from(r);
                let result = match live.result.take() {
                    Some(res) => res,
                    None => Ok((tick - live.started_at + 1) as u32),
                };
                let outcome = EpochOutcome {
                    result,
                    retransmits: r,
                    missed_deadline: false,
                };
                (live.epoch, outcome, live.initiator, live.responder)
            };
            match &outcome.result {
                Ok(t) => {
                    epochs_completed += 1;
                    registry.observe("keepalive.epoch_ticks", f64::from(*t));
                }
                Err(_) => epochs_failed += 1,
            }
            if tracer.is_enabled() {
                tracer.instant(
                    tick,
                    "keepalive.close",
                    vec![
                        ("slot", Value::from(i as u64)),
                        ("epoch", Value::from(u64::from(epoch))),
                        ("ok", Value::from(outcome.succeeded())),
                        ("missed", Value::from(false)),
                        ("retransmits", Value::from(outcome.retransmits)),
                    ],
                );
            }
            let verdict = controller.on_close(i, epoch, tick, &outcome, initiator, responder);
            apply_verdict(
                &mut slots[i],
                i,
                verdict,
                tick,
                &mut wheel,
                &mut evicted,
                &mut dense_equiv_steps,
                tracer,
            );
            any_closed = true;
        }
        touched.clear();
        if any_closed {
            reindex_live(&mut live_order, &slots, &mut position);
        }
    }

    // Horizon cutoff: epochs still live close as missed so the
    // controller always gets its endpoints back (e.g. to commit CRP
    // checkouts). Rearm verdicts are moot — the run is over.
    for (i, slot) in slots.iter_mut().enumerate() {
        let Some(live) = slot.live.take() else {
            continue;
        };
        let r = live.initiator.retransmits() + live.responder.retransmits();
        retransmits += u64::from(r);
        routes.remove(&(live.protocol, live.id));
        closed_keys.insert((live.protocol, live.id));
        epochs_missed += 1;
        let outcome = EpochOutcome {
            result: Err(ProtocolError::Timeout { retries: r }),
            retransmits: r,
            missed_deadline: true,
        };
        if tracer.is_enabled() {
            tracer.instant(
                tick,
                "keepalive.close",
                vec![
                    ("slot", Value::from(i as u64)),
                    ("epoch", Value::from(u64::from(live.epoch))),
                    ("ok", Value::from(false)),
                    ("missed", Value::from(true)),
                    ("retransmits", Value::from(outcome.retransmits)),
                ],
            );
        }
        let verdict = controller.on_close(
            i,
            live.epoch,
            tick,
            &outcome,
            live.initiator,
            live.responder,
        );
        if matches!(verdict, SlotVerdict::Evict) {
            slot.departed_at = Some(tick);
            evicted += 1;
        }
    }
    // Residency accounting for every slot still resident at the end.
    for slot in &slots {
        if slot.departed_at.is_none() {
            dense_equiv_steps += resident_dense_steps(slot, tick);
        }
    }

    registry.counter("keepalive.epochs_fired", epochs_fired);
    registry.counter("keepalive.epochs_completed", epochs_completed);
    registry.counter("keepalive.epochs_failed", epochs_failed);
    registry.counter("keepalive.epochs_missed", epochs_missed);
    registry.counter("keepalive.left", left as u64);
    registry.counter("keepalive.evicted", evicted as u64);
    registry.counter("keepalive.retransmits", retransmits);
    registry.counter("keepalive.late_frames", counters.late);
    registry.counter("keepalive.unroutable_frames", counters.unroutable);
    registry.counter("keepalive.undecodable_frames", counters.undecodable);
    registry.counter("keepalive.session_steps", session_steps);
    registry.counter("keepalive.dense_equiv_steps", dense_equiv_steps);

    let report = PersistentReport {
        slots: n,
        joined,
        left,
        evicted,
        ticks: tick,
        epochs_fired,
        epochs_completed,
        epochs_failed,
        epochs_missed,
        retransmits,
        late_frames: counters.late,
        unroutable_frames: counters.unroutable,
        undecodable_frames: counters.undecodable,
        peak_live,
        session_steps,
        dense_equiv_steps,
    };
    if tracer.is_enabled() {
        tracer.instant(
            tick,
            "keepalive.result",
            vec![
                ("slots", Value::from(report.slots)),
                ("joined", Value::from(report.joined)),
                ("left", Value::from(report.left)),
                ("evicted", Value::from(report.evicted)),
                ("epochs_fired", Value::from(report.epochs_fired)),
                ("epochs_completed", Value::from(report.epochs_completed)),
                ("epochs_missed", Value::from(report.epochs_missed)),
                ("session_steps", Value::from(report.session_steps)),
            ],
        );
    }
    report
}

/// Applies a controller verdict to a slot whose epoch just closed.
#[expect(
    clippy::too_many_arguments,
    reason = "verdict application touches scheduler, accounting, and trace state"
)]
fn apply_verdict<I, R>(
    slot: &mut KeepSlot<I, R>,
    idx: usize,
    verdict: SlotVerdict,
    tick: u64,
    wheel: &mut TimerWheel,
    evicted: &mut usize,
    dense_equiv_steps: &mut u64,
    tracer: &mut Tracer,
) {
    match verdict {
        SlotVerdict::Rearm { at } => {
            slot.fire = Some(wheel.schedule_at(at, keep_token(idx, KIND_FIRE)));
        }
        SlotVerdict::Evict => {
            slot.departed_at = Some(tick);
            *evicted += 1;
            *dense_equiv_steps += resident_dense_steps(slot, tick);
            if tracer.is_enabled() {
                tracer.instant(
                    tick,
                    "keepalive.evict",
                    vec![("slot", Value::from(idx as u64))],
                );
            }
        }
    }
}

/// Steps the dense no-timer counterfactual would have spent keeping
/// this slot resident: two polls (one per side) on every tick from the
/// slot's join to `end`, inclusive.
fn resident_dense_steps<I, R>(slot: &KeepSlot<I, R>, end: u64) -> u64 {
    match slot.joined_at {
        Some(j) => 2 * (end.saturating_sub(j) + 1),
        None => 0,
    }
}

/// Rebuilds the live-order vector and position index after closes
/// removed slots from the live set.
fn reindex_live<I, R>(
    live_order: &mut Vec<usize>,
    slots: &[KeepSlot<I, R>],
    position: &mut [usize],
) {
    live_order.retain(|&idx| {
        let keep = slots.get(idx).is_some_and(|s| s.live.is_some());
        if !keep {
            position[idx] = usize::MAX;
        }
        keep
    });
    for (pos, &idx) in live_order.iter().enumerate() {
        position[idx] = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::{
        AttestationVerifier, AttestingDevice, TimingModel, WireAttestationVerifier,
        WireAttestingDevice,
    };
    use crate::eke::{EkeParty, WireEkeInitiator, WireEkeResponder};
    use crate::mutual_auth::{Device, Verifier, WireDevice, WireVerifier};
    use crate::secure_nn::{NetworkOwner, SecureAccelerator, WireNnClient, WireNnServer};
    use crate::transport::{Channel, FaultRates, FaultyChannel};
    use crate::wire::SessionConfig;
    use neuropuls_accel::config::NetworkConfig;
    use neuropuls_accel::engine::PhotonicEngine;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::bits::Response;
    use neuropuls_puf::photonic::PhotonicPuf;
    use std::collections::BTreeMap;

    /// A bundle of endpoint state backing one four-protocol session mix.
    struct Endpoints {
        auth: Vec<(Device<PhotonicPuf>, Verifier)>,
        attest: Vec<(AttestingDevice, AttestationVerifier)>,
        eke: Vec<(EkeParty, EkeParty)>,
        nn: Vec<(SecureAccelerator, Vec<u8>, Vec<u8>)>,
    }

    fn endpoints(n: usize, seed: u8) -> Endpoints {
        let auth = (0..n)
            .map(|i| {
                let puf = PhotonicPuf::reference(DieId(40 + i as u64), 1);
                let (device, provisioned) =
                    Device::provision(puf, vec![seed; 512], format!("prov-{seed}-{i}").as_bytes())
                        .expect("provisions");
                let verifier = Verifier::new(provisioned, format!("verif-{seed}-{i}").as_bytes());
                (device, verifier)
            })
            .collect();
        let attest = (0..n)
            .map(|i| {
                let memory: Vec<u8> = (0..1024).map(|j| (j * 13 + i * 7) as u8).collect();
                let timing = TimingModel::photonic();
                let device = AttestingDevice::new(
                    PhotonicPuf::reference(DieId(60 + i as u64), 1),
                    memory.clone(),
                    timing,
                );
                let verifier = AttestationVerifier::new(
                    PhotonicPuf::reference(DieId(60 + i as u64), 2),
                    memory,
                    timing,
                );
                (device, verifier)
            })
            .collect();
        let eke = (0..n)
            .map(|i| {
                let crp = Response::from_u64(0x1234_5678 ^ (i as u64), 63);
                let initiator = EkeParty::new(&crp, format!("eke-i-{seed}-{i}").as_bytes());
                let responder = EkeParty::new(&crp, format!("eke-r-{seed}-{i}").as_bytes());
                (initiator, responder)
            })
            .collect();
        let nn = (0..n)
            .map(|i| {
                let key = [seed ^ i as u8; 32];
                let mut owner = NetworkOwner::new(key, format!("own-{seed}-{i}").as_bytes());
                let accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
                let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
                let network = owner.cipher_network(&config);
                let input = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
                (accel, network, input)
            })
            .collect();
        Endpoints {
            auth,
            attest,
            eke,
            nn,
        }
    }

    /// Builds one SessionPair per endpoint, all four protocols, with
    /// distinct session ids.
    fn pairs<'x>(ep: &'x mut Endpoints, cfg: SessionConfig) -> Vec<SessionPair<'x>> {
        let mut out: Vec<SessionPair<'x>> = Vec::new();
        let mut sid = 1u64;
        for (device, verifier) in &mut ep.auth {
            out.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: sid,
                initiator: Box::new(WireVerifier::new(verifier, sid, cfg)),
                responder: Box::new(WireDevice::new(device, cfg)),
            });
            sid += 1;
        }
        for (device, verifier) in &mut ep.attest {
            out.push(SessionPair {
                protocol: ProtocolId::Attestation,
                id: sid,
                initiator: Box::new(WireAttestationVerifier::new(verifier, sid, cfg)),
                responder: Box::new(WireAttestingDevice::new(device, cfg)),
            });
            sid += 1;
        }
        for (initiator, responder) in &mut ep.eke {
            out.push(SessionPair {
                protocol: ProtocolId::Eke,
                id: sid,
                initiator: Box::new(WireEkeInitiator::new(initiator, sid, cfg)),
                responder: Box::new(WireEkeResponder::new(responder, cfg)),
            });
            sid += 1;
        }
        for (accel, network, input) in &mut ep.nn {
            out.push(SessionPair {
                protocol: ProtocolId::SecureNn,
                id: sid,
                initiator: Box::new(WireNnClient::new(sid, network.clone(), input.clone(), cfg)),
                responder: Box::new(WireNnServer::new(accel, cfg)),
            });
            sid += 1;
        }
        out
    }

    /// A mutual-auth [`KeepAlive`] controller for persistent-driver
    /// tests: owned endpoints move into each epoch's wire sessions and
    /// come back at close, with consecutive-failure eviction and a
    /// per-device epoch quota after which the slot leaves voluntarily.
    struct AuthFleet {
        endpoints: Vec<Option<(Device<PhotonicPuf>, Verifier)>>,
        period: u64,
        epochs_per_device: u32,
        max_fails: u32,
        cfg: SessionConfig,
        last_fire: Vec<u64>,
        fails: Vec<u32>,
        /// Per-slot epoch log: (succeeded, active ticks, retransmits).
        records: Vec<Vec<(bool, u32, u32)>>,
    }

    impl AuthFleet {
        fn new(
            auth: Vec<(Device<PhotonicPuf>, Verifier)>,
            period: u64,
            epochs_per_device: u32,
            max_fails: u32,
        ) -> Self {
            let n = auth.len();
            Self {
                endpoints: auth.into_iter().map(Some).collect(),
                period,
                epochs_per_device,
                max_fails,
                cfg: SessionConfig::default(),
                last_fire: vec![0; n],
                fails: vec![0; n],
                records: vec![Vec::new(); n],
            }
        }
    }

    impl KeepAlive for AuthFleet {
        type Initiator = WireVerifier<Verifier>;
        type Responder = WireDevice<Device<PhotonicPuf>, PhotonicPuf>;

        fn on_fire(
            &mut self,
            slot: usize,
            epoch: u32,
            now: u64,
        ) -> Option<EpochSession<Self::Initiator, Self::Responder>> {
            if epoch >= self.epochs_per_device {
                return None;
            }
            let (device, verifier) = self.endpoints[slot].take()?;
            self.last_fire[slot] = now;
            let sid = u64::from(epoch) * self.endpoints.len() as u64 + slot as u64 + 1;
            Some(EpochSession {
                protocol: ProtocolId::MutualAuth,
                id: sid,
                initiator: WireVerifier::new(verifier, sid, self.cfg),
                responder: WireDevice::new(device, self.cfg),
            })
        }

        fn on_close(
            &mut self,
            slot: usize,
            _epoch: u32,
            _now: u64,
            outcome: &EpochOutcome,
            initiator: Self::Initiator,
            responder: Self::Responder,
        ) -> SlotVerdict {
            let verifier = initiator.into_inner();
            let device = responder.into_inner();
            self.endpoints[slot] = Some((device, verifier));
            let ticks = match &outcome.result {
                Ok(t) => *t,
                Err(_) => 0,
            };
            self.records[slot].push((outcome.succeeded(), ticks, outcome.retransmits));
            if outcome.succeeded() {
                self.fails[slot] = 0;
            } else {
                self.fails[slot] += 1;
                if self.fails[slot] >= self.max_fails {
                    return SlotVerdict::Evict;
                }
            }
            SlotVerdict::Rearm {
                at: self.last_fire[slot] + self.period,
            }
        }
    }

    /// Three resident devices re-attest over three widely spaced
    /// epochs; the loop fast-forwards the idle gaps, so the real step
    /// count stays far below the resident-polling counterfactual.
    #[test]
    fn persistent_slots_reattest_and_fast_forward_idle_gaps() {
        let ep = endpoints(3, 0x21);
        let mut ctl = AuthFleet::new(ep.auth, 200, 3, 3);
        let mut channel = Channel::new();
        let registry = Registry::new();
        let report = run_persistent_gateway(
            &mut channel,
            &[0, 0, 0],
            &mut ctl,
            PersistentConfig {
                horizon: 2000,
                epoch_budget: 64,
            },
            &mut Tracer::disabled(),
            &registry,
        );
        assert_eq!(report.joined, 3);
        assert_eq!(report.epochs_fired, 9);
        assert_eq!(report.epochs_completed, 9, "{report:?}");
        assert_eq!(report.epochs_failed, 0);
        assert_eq!(report.epochs_missed, 0);
        assert_eq!(report.left, 3);
        assert_eq!(report.evicted, 0);
        for rec in &ctl.records {
            assert_eq!(rec.len(), 3);
            assert!(rec.iter().all(|&(ok, _, _)| ok), "{rec:?}");
        }
        assert!(
            report.step_saving() > 5.0,
            "idle fast-forward should dominate: {report:?}"
        );
        assert_eq!(registry.counter_value("keepalive.epochs_completed"), 9);
        assert_eq!(
            registry.counter_value("keepalive.session_steps"),
            report.session_steps
        );
    }

    /// A device with tampered memory fails every re-attestation; after
    /// `max_fails` consecutive failures the controller's verdict evicts
    /// it while healthy slots ride out their full epoch quota.
    #[test]
    fn corrupted_device_is_evicted_after_consecutive_failures() {
        let mut ep = endpoints(3, 0x22);
        ep.auth[1].0.corrupt_memory(100, 0xFF);
        let mut ctl = AuthFleet::new(ep.auth, 100, 4, 2);
        let mut channel = Channel::new();
        let report = run_persistent_gateway(
            &mut channel,
            &[0, 0, 0],
            &mut ctl,
            PersistentConfig {
                horizon: 4000,
                epoch_budget: 64,
            },
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.evicted, 1, "{report:?}");
        assert_eq!(report.left, 2);
        assert_eq!(ctl.records[1].len(), 2, "evicted after two failures");
        assert!(ctl.records[1].iter().all(|&(ok, _, _)| !ok));
        assert_eq!(report.epochs_failed, 2);
        assert_eq!(report.epochs_completed, 8);
        // The endpoints always come back to the controller, eviction
        // included.
        assert!(ctl.endpoints.iter().all(Option::is_some));
    }

    /// An epoch budget of one tick can never fit a full handshake: the
    /// deadline timer force-closes every epoch as missed and the
    /// controller still gets its endpoints back.
    #[test]
    fn epoch_budget_expiry_closes_epochs_as_missed() {
        let ep = endpoints(2, 0x23);
        let mut ctl = AuthFleet::new(ep.auth, 50, 2, 10);
        let mut channel = Channel::new();
        let report = run_persistent_gateway(
            &mut channel,
            &[0, 0],
            &mut ctl,
            PersistentConfig {
                horizon: 300,
                epoch_budget: 1,
            },
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.epochs_fired, 4);
        assert_eq!(report.epochs_completed, 0);
        assert_eq!(report.epochs_missed, 4, "{report:?}");
        assert_eq!(report.left, 2);
        assert!(ctl.endpoints.iter().all(Option::is_some));
        assert!(ctl.records.iter().flatten().all(|&(ok, _, _)| !ok));
    }

    /// The round-equivalence kernel at gateway level: one zero-jitter
    /// persistent epoch over a lossy link produces the byte-identical
    /// wire transcript and per-device outcomes of a [`run_gateway`]
    /// round with the same sessions and channel seed.
    #[test]
    fn single_persistent_epoch_matches_run_gateway_byte_for_byte() {
        let loss = FaultRates::loss(0.1);
        let ep = endpoints(3, 0x24);
        let mut ctl = AuthFleet::new(ep.auth, 1000, 1, 3);
        let mut persistent_link = FaultyChannel::new(loss, 0x5EED_0001);
        let report = run_persistent_gateway(
            &mut persistent_link,
            &[0, 0, 0],
            &mut ctl,
            PersistentConfig {
                horizon: 500,
                epoch_budget: 0,
            },
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.epochs_fired, 3);

        let mut ep = endpoints(3, 0x24);
        let cfg = SessionConfig::default();
        let mut sessions: Vec<SessionPair<'_>> = Vec::new();
        for (i, (device, verifier)) in ep.auth.iter_mut().enumerate() {
            let sid = i as u64 + 1;
            sessions.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: sid,
                initiator: Box::new(WireVerifier::new(&mut *verifier, sid, cfg)),
                responder: Box::new(WireDevice::new(&mut *device, cfg)),
            });
        }
        let mut round_link = FaultyChannel::new(loss, 0x5EED_0001);
        let round = run_gateway(
            &mut round_link,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(persistent_link.transcript(), round_link.transcript());
        for (i, out) in round.outcomes.iter().enumerate() {
            let (ok, ticks, retransmits) = ctl.records[i][0];
            assert_eq!(ok, out.result.is_ok(), "slot {i}");
            if let Ok(t) = out.result {
                assert_eq!(ticks, t, "slot {i}");
            }
            assert_eq!(retransmits, out.retransmits, "slot {i}");
        }
    }

    /// Batched secure-NN sessions multiplexed by the gateway against
    /// ONE shared engine: a single owner loads the network out of
    /// band, every session streams its own chunked batch, and the
    /// per-session inference accounting folds into the registry.
    #[test]
    fn batched_nn_sessions_share_one_engine_through_the_gateway() {
        use crate::secure_nn::{share_accelerator, WireNnBatchClient, WireNnBatchServer};
        let key = [0x4E; 32];
        let mut owner = NetworkOwner::new(key, b"gw-batch-owner");
        let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
        let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
        accel.load_network(&owner.cipher_network(&config)).unwrap();
        let shared = share_accelerator(accel);
        let registry = Registry::new();
        let cfg = SessionConfig::default();
        let k = 4usize;
        let per_session = 150usize; // ~64 B sealed each: > one chunk budget
        let blobs: Vec<Vec<Vec<u8>>> = (1..=k as u64)
            .map(|sid| {
                let inputs: Vec<Vec<f64>> = (0..per_session)
                    .map(|i| vec![(i as f64 + sid as f64) * 0.01; 4])
                    .collect();
                owner.cipher_inputs(&inputs)
            })
            .collect();
        let mut sessions: Vec<SessionPair<'_>> = Vec::new();
        for (i, input_blobs) in blobs.iter().enumerate() {
            let sid = i as u64 + 1;
            sessions.push(SessionPair {
                protocol: ProtocolId::SecureNn,
                id: sid,
                initiator: Box::new(WireNnBatchClient::execute_only(sid, input_blobs, cfg)),
                responder: Box::new(
                    WireNnBatchServer::new(shared.clone(), cfg).with_metrics(&registry),
                ),
            });
        }
        let mut channel = FaultyChannel::new(FaultRates::loss(0.05), 0xBA7C_6A7E);
        let mut tracer = Tracer::disabled();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut tracer,
            &registry,
        );
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(registry.counter_value("secure_nn.batch.executes"), k as u64);
        assert_eq!(
            registry.counter_value("secure_nn.batch.items"),
            (k * per_session) as u64
        );
        // All batches ran on the one engine.
        assert_eq!(shared.borrow().stats().inferences, (k * per_session) as u64);
    }

    #[test]
    fn mixed_protocols_share_one_lossless_transport() {
        let mut ep = endpoints(3, 0x11);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = Channel::new();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.sessions, n);
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.late_frames, 0);
        assert_eq!(report.unroutable_frames, 0);
        assert_eq!(report.undecodable_frames, 0);
        assert_eq!(report.peak_active, n);
        // Every EKE pair agreed on a key through the shared wire.
        for (initiator, responder) in &ep.eke {
            assert_eq!(initiator.session(), responder.session());
        }
    }

    #[test]
    fn mixed_protocols_survive_a_shared_lossy_transport() {
        let mut ep = endpoints(4, 0x22);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = FaultyChannel::new(FaultRates::loss(0.1), 0x6A7E_1055);
        let registry = Registry::new();
        let mut tracer = Tracer::disabled();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut tracer,
            &registry,
        );
        assert_eq!(report.sessions, n);
        assert!(report.all_completed(), "{report:?}");
        assert!(report.retransmits > 0, "10% loss must force retransmits");
        assert_eq!(registry.counter_value("gateway.completed"), n as u64);
        assert_eq!(
            registry.counter_value("gateway.retransmits"),
            report.retransmits
        );
        // The event-driven scheduler never steps more than the dense
        // loop would, and idle ARQ waits mean it steps strictly less.
        assert!(report.session_steps > 0);
        assert!(
            report.session_steps < report.dense_equiv_steps,
            "wake scheduling saved nothing: {} vs {}",
            report.session_steps,
            report.dense_equiv_steps
        );
        // Whatever the fault pattern left in flight after close is
        // accounted as late, never lost.
        let drained = channel.drain_late();
        assert_eq!(channel.stats().late_drained, drained);
    }

    #[test]
    fn bounded_admission_queues_sessions_without_timing_them_out() {
        let mut ep = endpoints(6, 0x33);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = Channel::new();
        let config = GatewayConfig {
            max_active: 2,
            accept_queue: 3,
            max_ticks: 4096,
        };
        let report = run_gateway(
            &mut channel,
            sessions,
            config,
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert!(report.all_completed(), "{report:?}");
        assert!(report.peak_active <= 2);
        assert!(report.peak_staged <= 3);
        assert_eq!(report.retransmits, 0, "queued sessions must not tick ARQ");
        // Admission is staggered: not everyone got in on tick 0.
        let first = report
            .outcomes
            .iter()
            .filter(|o| o.admitted_at == Some(0))
            .count();
        assert_eq!(first, 2);
        assert!(report.outcomes.iter().all(|o| o.admitted_at.is_some()));
        assert_eq!(report.sessions, n);
    }

    /// The multiplexing property the whole module rests on: over a
    /// lossless shared transport, a gateway run with K interleaved
    /// sessions produces — per session — *byte-identical* wire
    /// transcripts to K independent `drive`-based runs. The gateway
    /// reproduces the single-session tick cadence exactly; only the
    /// interleaving on the shared wire differs.
    #[test]
    fn interleaved_sessions_match_independent_transcripts() {
        let cfg = SessionConfig::default();

        // Gateway run: 12 sessions (3 of each protocol) on one wire.
        let mut ep = endpoints(3, 0x77);
        let sessions = pairs(&mut ep, cfg);
        let keys: Vec<(ProtocolId, u64)> = sessions.iter().map(|p| (p.protocol, p.id)).collect();
        let mut shared = Channel::new();
        let report = run_gateway(
            &mut shared,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert!(report.all_completed(), "{report:?}");

        // Split the shared transcript by envelope key, preserving order.
        type SessionTranscript = Vec<(Side, Vec<u8>)>;
        let mut per_session: BTreeMap<(ProtocolId, u64), SessionTranscript> = BTreeMap::new();
        for (side, frame) in shared.transcript() {
            let env = Envelope::from_bytes(frame).expect("lossless frames decode");
            per_session
                .entry((env.protocol, env.session))
                .or_default()
                .push((*side, frame.clone()));
        }

        // Independent runs: identical endpoint states (same seeds) and
        // identical session ids, one dedicated channel each.
        let mut ep2 = endpoints(3, 0x77);
        let singles = pairs(&mut ep2, cfg);
        for (pair, key) in singles.into_iter().zip(keys) {
            let mut solo = Channel::new();
            let mut a = pair.initiator;
            let mut b = pair.responder;
            crate::wire::drive(
                &mut solo,
                a.as_mut(),
                b.as_mut(),
                crate::wire::DEFAULT_MAX_TICKS,
                &mut Tracer::disabled(),
            )
            .expect("independent session completes");
            let expected = solo.transcript();
            let actual = per_session.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            assert_eq!(
                actual,
                expected,
                "session {}/{} transcript diverged between gateway and solo run",
                protocol_label(key.0),
                key.1
            );
        }
    }

    #[test]
    fn duplicate_session_keys_fail_fast_without_corrupting_routing() {
        let mut ep = endpoints(2, 0x44);
        let cfg = SessionConfig::default();
        let mut sessions = Vec::new();
        for (device, verifier) in &mut ep.auth {
            sessions.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: 7, // same key on purpose
                initiator: Box::new(WireVerifier::new(verifier, 7, cfg)),
                responder: Box::new(WireDevice::new(device, cfg)),
            });
        }
        let mut channel = Channel::new();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 1);
        assert!(report
            .outcomes
            .iter()
            .any(|o| matches!(o.result, Err(ProtocolError::OutOfOrder(_)))));
    }

    #[test]
    fn tick_budget_reports_unfinished_sessions() {
        let mut ep = endpoints(2, 0x55);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let mut channel = Channel::new();
        let config = GatewayConfig {
            max_active: 1,
            accept_queue: 1,
            max_ticks: 3, // far too few for eight sessions
        };
        let report = run_gateway(
            &mut channel,
            sessions,
            config,
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.ticks, 3);
        assert!(report.unfinished > 0);
        assert_eq!(
            report.completed + report.failed + report.unfinished,
            report.sessions
        );
    }
}
