//! Criterion benchmarks for the cryptographic and photonic primitives.

use neuropuls_crypto::chacha20::ChaCha20;
use neuropuls_crypto::hmac::HmacSha256;
use neuropuls_crypto::sha256::Sha256;
use neuropuls_crypto::x25519;
use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::traits::Puf;
use neuropuls_rt::criterion::{BatchSize, Criterion, Throughput};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;
use neuropuls_rt::{criterion_group, criterion_main};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xA5u8; 4096];

    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_4k", |b| {
        b.iter(|| Sha256::digest(std::hint::black_box(&data)))
    });
    group.bench_function("hmac_sha256_4k", |b| {
        b.iter(|| HmacSha256::mac(b"key", std::hint::black_box(&data)))
    });
    group.bench_function("chacha20_4k", |b| {
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        b.iter_batched(
            || data.clone(),
            |mut buf| ChaCha20::new(&key, &nonce).apply(&mut buf),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    c.bench_function("x25519_scalar_mult", |b| {
        let scalar = [0x42u8; 32];
        b.iter(|| x25519::public_key(std::hint::black_box(&scalar)))
    });
}

fn bench_puf(c: &mut Criterion) {
    let mut group = c.benchmark_group("puf");
    let mut puf = PhotonicPuf::reference(DieId(1), 1);
    let mut rng = StdRng::seed_from_u64(1);
    let challenge = Challenge::random(64, &mut rng);

    group.bench_function("photonic_eval_noisy", |b| {
        b.iter(|| puf.respond(std::hint::black_box(&challenge)).unwrap())
    });
    group.bench_function("photonic_eval_deterministic", |b| {
        b.iter(|| {
            puf.respond_deterministic(std::hint::black_box(&challenge))
                .unwrap()
        })
    });
    group.bench_function("photonic_fabricate", |b| {
        let mut die = 0u64;
        b.iter(|| {
            die += 1;
            PhotonicPuf::reference(DieId(die), 1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crypto, bench_puf);
criterion_main!(benches);
