//! Active protocol attacks against the mutual-authentication service —
//! the adversary models the HSC-IoT design claims to resist (§III-A).
//!
//! All campaigns are mounted *on the wire*: the adversary sits between
//! the two genuine endpoints as a man-in-the-middle hook on a
//! [`FaultyChannel`] (or speaks the wire protocol itself, for blind
//! forgery) and manipulates serialized [`Envelope`] frames. An attack
//! attempt "succeeds" only if the full wire session completes — i.e.
//! the verifier accepted the adversarial frame and issued Msg3.

use std::cell::RefCell;
use std::rc::Rc;

use neuropuls_protocols::error::ProtocolError;
use neuropuls_protocols::mutual_auth::{
    run_wire_session, Device, DeviceAuth, Verifier, WireVerifier,
};
use neuropuls_protocols::transport::{Channel, FaultRates, FaultyChannel, MitmVerdict, Side};
use neuropuls_protocols::wire::{
    drive_report, Envelope, MutualAuthMsg, ProtocolId, Session, SessionAction, SessionConfig,
    DEFAULT_MAX_TICKS,
};
use neuropuls_puf::traits::Puf;
use neuropuls_rt::codec::{FromBytes, ToBytes};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::trace::Tracer;
use neuropuls_rt::{Rng, SeedableRng};

/// Result of one adversarial campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Attack attempts made.
    pub attempts: usize,
    /// Attempts the verifier (wrongly) accepted.
    pub successes: usize,
}

impl CampaignOutcome {
    /// Attack success rate.
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// Parses a frame as a mutual-authentication envelope.
fn as_auth_envelope(frame: &[u8]) -> Option<(Envelope, MutualAuthMsg)> {
    let env = Envelope::from_bytes(frame).ok()?;
    if env.protocol != ProtocolId::MutualAuth {
        return None;
    }
    let msg = env.open::<MutualAuthMsg>().ok()?;
    Some((env, msg))
}

/// Replay campaign: wiretap one genuine session to capture the device's
/// `DeviceAuth` payload, then splice that stale payload into `attempts`
/// fresh sessions (re-enveloped under the live session id and sequence
/// number so it is indistinguishable from in-session traffic at the
/// framing layer).
///
/// # Errors
///
/// Fails only if the *genuine* capture session cannot run.
pub fn replay_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
) -> Result<CampaignOutcome, ProtocolError> {
    // Passive phase: record the genuine DeviceAuth payload off the wire.
    let captured: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let tap = Rc::clone(&captured);
    let mut channel = FaultyChannel::new(FaultRates::none(), 0x5EED);
    channel.set_mitm(Box::new(move |from, frame| {
        if from == Side::B {
            if let Some((env, MutualAuthMsg::Auth(_))) = as_auth_envelope(frame) {
                *tap.borrow_mut() = Some(env.payload);
            }
        }
        MitmVerdict::Forward
    }));
    run_wire_session(
        &mut channel,
        device,
        verifier,
        0,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    )
    .result?;
    let payload = captured
        .borrow_mut()
        .take()
        .ok_or_else(|| ProtocolError::OutOfOrder("no DeviceAuth captured on the wire".into()))?;

    // Active phase: replace every fresh DeviceAuth with the stale one.
    let mut successes = 0;
    for i in 0..attempts {
        let mut channel = FaultyChannel::new(FaultRates::none(), 0x5EED ^ (i as u64 + 1));
        let stale = payload.clone();
        channel.set_mitm(Box::new(move |from, frame| {
            if from == Side::B {
                if let Some((env, MutualAuthMsg::Auth(_))) = as_auth_envelope(frame) {
                    let spliced = Envelope {
                        protocol: env.protocol,
                        session: env.session,
                        seq: env.seq,
                        payload: stale.clone(),
                    };
                    return MitmVerdict::Replace(spliced.to_bytes());
                }
            }
            MitmVerdict::Forward
        }));
        let report = run_wire_session(
            &mut channel,
            device,
            verifier,
            1 + i as u64,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        if report.succeeded() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// Man-in-the-middle bit-flip campaign: relay genuine wire sessions but
/// flip one random bit of the masked PUF response inside every
/// `DeviceAuth` frame before re-encoding it (so the frame still parses
/// and only the MAC check can catch the tamper).
///
/// # Errors
///
/// Reserved for infrastructure failures; the expected outcome of every
/// attempt — the verifier rejecting the session — is *not* an error.
pub fn mitm_tamper_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
    seed: u64,
) -> Result<CampaignOutcome, ProtocolError> {
    let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
    let mut successes = 0;
    for i in 0..attempts {
        let mut channel = FaultyChannel::new(FaultRates::none(), seed ^ (i as u64).wrapping_add(1));
        let rng = Rc::clone(&rng);
        channel.set_mitm(Box::new(move |from, frame| {
            if from == Side::B {
                if let Some((env, MutualAuthMsg::Auth(mut auth))) = as_auth_envelope(frame) {
                    let mut rng = rng.borrow_mut();
                    let byte = rng.gen_range(0..auth.masked_response.len());
                    let bit = rng.gen_range(0u8..8);
                    auth.masked_response[byte] ^= 1u8 << bit;
                    let tampered = Envelope::pack(
                        ProtocolId::MutualAuth,
                        env.session,
                        env.seq,
                        &MutualAuthMsg::Auth(auth),
                    );
                    return MitmVerdict::Replace(tampered.to_bytes());
                }
            }
            MitmVerdict::Forward
        }));
        let report = run_wire_session(
            &mut channel,
            device,
            verifier,
            i as u64,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        if report.succeeded() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// A wire endpoint that impersonates a device without knowing the PUF
/// secret: it answers every `AuthRequest` (including retransmissions)
/// with a freshly fabricated `DeviceAuth` carrying a random MAC.
struct ForgingAttacker {
    rng: StdRng,
    accepted: bool,
}

impl ForgingAttacker {
    fn forge(&mut self) -> DeviceAuth {
        let mut masked = vec![0u8; 8];
        self.rng.fill(masked.as_mut_slice());
        DeviceAuth {
            masked_response: masked,
            memory_hash: self.rng.gen(),
            clock_count: self.rng.gen_range(0..2000),
            device_nonce: self.rng.gen(),
            mac: self.rng.gen(),
        }
    }
}

impl Session for ForgingAttacker {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        let Some(frame) = incoming else {
            return Ok(SessionAction::Wait);
        };
        match as_auth_envelope(frame) {
            Some((env, MutualAuthMsg::Request(_))) => {
                let forged = self.forge();
                let frame = Envelope::pack(
                    ProtocolId::MutualAuth,
                    env.session,
                    1,
                    &MutualAuthMsg::Auth(forged),
                )
                .to_bytes();
                Ok(SessionAction::Send(frame))
            }
            // A confirmation means the verifier accepted a forgery.
            Some((_, MutualAuthMsg::Confirm(_))) => {
                self.accepted = true;
                Ok(SessionAction::Done)
            }
            _ => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.accepted
    }

    fn retransmits(&self) -> u32 {
        0
    }
}

/// Blind forgery campaign: the attacker speaks the wire protocol (it
/// knows the message format but not the secret) and feeds the verifier
/// random MACs until the verifier's retry budget runs out. Each attempt
/// is one full wire session, so the verifier actually sees
/// `1 + max_retries` distinct forgeries per attempt.
pub fn forgery_campaign(verifier: &mut Verifier, attempts: usize, seed: u64) -> CampaignOutcome {
    let mut attacker = ForgingAttacker {
        rng: StdRng::seed_from_u64(seed),
        accepted: false,
    };
    let mut successes = 0;
    for i in 0..attempts {
        attacker.accepted = false;
        let mut channel = Channel::new();
        let mut wire_verifier =
            WireVerifier::new(&mut *verifier, i as u64, SessionConfig::default());
        let report = drive_report(
            &mut channel,
            &mut wire_verifier,
            &mut attacker,
            DEFAULT_MAX_TICKS,
            &mut Tracer::disabled(),
        );
        if report.succeeded() || attacker.accepted {
            successes += 1;
        }
    }
    CampaignOutcome {
        attempts,
        successes,
    }
}

/// Desynchronization campaign: suppress every `VerifierConfirm` (Msg3)
/// on the wire so the verifier rotates its CRP while the device does
/// not, then let a clean session run. The attack succeeds only if the
/// suppressed session somehow completed *or* the follow-up session
/// fails — i.e. the device was locked out. The HSC-IoT previous-CRP
/// fallback makes both impossible.
///
/// # Errors
///
/// Reserved for infrastructure failures.
pub fn desync_suppression_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
) -> Result<CampaignOutcome, ProtocolError> {
    let mut successes = 0;
    for i in 0..attempts {
        let mut channel = FaultyChannel::new(FaultRates::none(), 0xDE5C ^ i as u64);
        channel.set_mitm(Box::new(|_from, frame| {
            if matches!(
                as_auth_envelope(frame),
                Some((_, MutualAuthMsg::Confirm(_)))
            ) {
                return MitmVerdict::Drop;
            }
            MitmVerdict::Forward
        }));
        let suppressed = run_wire_session(
            &mut channel,
            device,
            verifier,
            2 * i as u64,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        channel.clear_mitm();
        let recovered = run_wire_session(
            &mut channel,
            device,
            verifier,
            2 * i as u64 + 1,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        if suppressed.succeeded() || !recovered.succeeded() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    fn pair(die: u64) -> (Device<PhotonicPuf>, Verifier) {
        let puf = PhotonicPuf::reference(DieId(die), die + 3);
        let (device, provisioned) =
            Device::provision(puf, vec![0x11; 512], b"attack-seed").unwrap();
        (device, Verifier::new(provisioned, b"attack-verifier"))
    }

    #[test]
    fn replays_never_succeed() {
        let (mut device, mut verifier) = pair(1);
        let outcome = replay_campaign(&mut device, &mut verifier, 20).unwrap();
        assert_eq!(outcome.successes, 0);
        assert_eq!(outcome.attempts, 20);
    }

    #[test]
    fn mitm_bit_flips_never_succeed() {
        let (mut device, mut verifier) = pair(2);
        let outcome = mitm_tamper_campaign(&mut device, &mut verifier, 15, 77).unwrap();
        assert_eq!(outcome.successes, 0);
    }

    #[test]
    fn blind_forgeries_never_succeed() {
        let (_, mut verifier) = pair(3);
        let outcome = forgery_campaign(&mut verifier, 200, 78);
        assert_eq!(outcome.successes, 0);
        assert!((outcome.rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn msg3_suppression_cannot_lock_out_the_device() {
        let (mut device, mut verifier) = pair(5);
        let outcome = desync_suppression_campaign(&mut device, &mut verifier, 6).unwrap();
        assert_eq!(outcome.successes, 0);
        // Every suppressed session forced one previous-CRP recovery.
        assert_eq!(verifier.desync_recoveries(), 6);
    }

    #[test]
    fn genuine_sessions_still_work_after_attacks() {
        let (mut device, mut verifier) = pair(4);
        let _ = replay_campaign(&mut device, &mut verifier, 5).unwrap();
        let _ = mitm_tamper_campaign(&mut device, &mut verifier, 5, 79).unwrap();
        let _ = forgery_campaign(&mut verifier, 5, 80);
        let _ = desync_suppression_campaign(&mut device, &mut verifier, 2).unwrap();
        neuropuls_protocols::mutual_auth::run_session(&mut device, &mut verifier).unwrap();
    }
}
