#!/usr/bin/env bash
# Hermetic-build gate: prove the workspace builds and tests with no
# registry, no network, and no pre-populated cargo cache.
#
# Three checks:
#   1. manifest audit  — every [dependencies]/[dev-dependencies] entry in
#      every Cargo.toml must be a `path` dependency (the workspace table
#      included); any version/git/registry dependency fails the gate.
#   2. offline build   — `cargo build --release --offline` plus
#      `cargo build --examples --offline` from a CLEAN, empty CARGO_HOME,
#      so a cached crates.io download cannot mask a regression.
#   3. offline tests   — the tier-1 suite (`cargo test --offline`) in the
#      same clean environment.
#
# Usage: scripts/check_hermetic.sh [--keep-tmp]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

fail() {
    echo "check_hermetic: FAIL: $*" >&2
    exit 1
}

# ---------------------------------------------------------------- check 1
echo "== check 1: manifest audit (path dependencies only)"
manifests=$(find . -name Cargo.toml -not -path "./target/*")
bad=0
for m in $manifests; do
    # Walk the dependency tables; flag any entry that is not a pure
    # path/workspace dependency. Table-style sections
    # ([dependencies.foo]) would also be caught by the `version`/`git`
    # keys they must contain.
    offending=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            line = $0
            sub(/#.*/, "", line)
            if (line ~ /workspace[[:space:]]*=[[:space:]]*true/) next
            if (line ~ /path[[:space:]]*=/ && line !~ /version|git|registry/) next
            print "    " line
        }
    ' "$m")
    if [ -n "$offending" ]; then
        echo "  non-path dependency in $m:"
        echo "$offending"
        bad=1
    fi
done
[ "$bad" -eq 0 ] || fail "manifest audit found non-path dependencies"
echo "   ok: every dependency is a path dependency"

# ------------------------------------------------------------- checks 2+3
CLEAN_HOME=$(mktemp -d)
KEEP_TMP=${1:-}
cleanup() {
    if [ "$KEEP_TMP" != "--keep-tmp" ]; then
        rm -rf "$CLEAN_HOME"
    else
        echo "keeping $CLEAN_HOME"
    fi
}
trap cleanup EXIT

export CARGO_HOME="$CLEAN_HOME/cargo"
mkdir -p "$CARGO_HOME"
# A separate target dir so cached artifacts from interactive builds
# cannot hide a compile error either.
export CARGO_TARGET_DIR="$CLEAN_HOME/target"

echo "== check 2: offline release build from clean CARGO_HOME"
cargo build --release --offline || fail "offline release build broke"
echo "   ok"

echo "== check 2b: offline example build"
cargo build --examples --offline || fail "offline example build broke"
echo "   ok"

echo "== check 3: offline tier-1 tests"
cargo test -q --offline || fail "offline tests broke"
echo "   ok"

echo "check_hermetic: PASS"
