//! Deterministic parallel experiment harness — a std-only thread pool.
//!
//! The workspace is hermetic (no rayon, no crossbeam), but the paper's
//! evaluation sweeps are embarrassingly parallel device populations:
//! 100 dies × 50 reads in E1, 50 dies × 100 re-reads in E2, independent
//! fleet sizes in E17. This module gives those loops a `par_map` /
//! `par_chunks` surface built on [`std::thread::scope`] with nothing
//! but `std`.
//!
//! # Determinism contract
//!
//! Parallel output is **byte-identical** to serial output. The pool
//! guarantees its half of the contract — results come back in input
//! order regardless of which worker computed them, and the worker count
//! never influences *what* is computed, only *where*. Callers must hold
//! up the other half: every item derives its randomness from its own
//! seed (die id, experiment id, item index), never from RNG state
//! shared across items. CI enforces the end-to-end property by diffing
//! `exp_all --smoke` at 1 and N threads.
//!
//! # Sizing
//!
//! The worker count comes from, in priority order:
//!
//! 1. a scoped [`with_threads`] override (used by tests and by the
//!    serial baseline pass of `exp_all --baseline`);
//! 2. the `NEUROPULS_THREADS` environment variable (read once per
//!    process; invalid or zero values are ignored);
//! 3. [`std::thread::available_parallelism`].
//!
//! At 1 thread every entry point degrades to a plain serial loop on the
//! calling thread — no threads are spawned, so thread-local state and
//! panic backtraces behave exactly like hand-written serial code.
//!
//! # Panics
//!
//! A panic in any item closure is propagated to the caller after all
//! workers have been joined (the scope never leaks detached threads),
//! mirroring the serial behavior as closely as possible: the first
//! panicking worker's payload is re-raised via
//! [`std::panic::resume_unwind`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cached process-wide worker count (override excluded).
static CONFIGURED: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped override installed by [`with_threads`]; inherited by
    /// pool workers so nested `par_map` calls see the same width.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The process-wide default worker count: `NEUROPULS_THREADS` if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if unavailable). Computed once and cached.
pub fn configured_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        if let Ok(v) = std::env::var("NEUROPULS_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
            eprintln!("NEUROPULS_THREADS={v:?} is not a positive integer; ignoring");
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// The worker count the next `par_map`/`par_chunks` call on this thread
/// will use: the innermost [`with_threads`] override, else
/// [`configured_threads`].
pub fn current_threads() -> usize {
    OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(configured_threads)
}

/// Runs `f` with the pool width forced to `n` on this thread (and on
/// any workers transitively spawned by pool calls inside `f`). Restores
/// the previous width on exit, including on unwind.
///
/// `with_threads(1, ...)` is the supported way to force a fully serial
/// execution for baselines and determinism diffs.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Maps `f` over `items` on the pool, preserving input order.
///
/// Items are claimed by workers through an atomic cursor (dynamic load
/// balancing — a slow die does not stall the rest of the population),
/// and each result is returned at its item's input index, so the output
/// is independent of scheduling. With 1 effective thread, or 0/1 items,
/// this is exactly `items.into_iter().map(f).collect()` on the calling
/// thread.
///
/// # Panics
///
/// Re-raises the first observed panic from `f` after all workers have
/// finished.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let len = items.len();
    // Each worker takes ownership of the items it claims; a per-slot
    // mutex is the std-only way to hand out `T` by value from a shared
    // slice (uncontended by construction: every index is claimed once).
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let inherited = OVERRIDE.with(|o| o.get());

    let slots_ref = &slots;
    let cursor_ref = &cursor;
    let f_ref = &f;

    let collected = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    OVERRIDE.with(|o| o.set(inherited));
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let item = slots_ref[i]
                            .lock()
                            .expect("slot mutex poisoned")
                            .take()
                            .expect("every index is claimed exactly once");
                        out.push((i, f_ref(item)));
                    }
                    out
                })
            })
            .collect();

        let mut merged: Vec<(usize, R)> = Vec::with_capacity(len);
        let mut panicked = None;
        for handle in handles {
            match handle.join() {
                Ok(part) => merged.extend(part),
                Err(payload) => panicked = panicked.or(Some(payload)),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        merged
    });

    let mut results: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for (i, r) in collected {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index produced a result"))
        .collect()
}

/// Maps `f` over `chunk_size`-sized windows of `items` on the pool,
/// preserving chunk order (the last chunk may be shorter). Serial
/// fallback, ordering and panic semantics match [`par_map`].
///
/// # Panics
///
/// Panics if `chunk_size == 0`; re-raises worker panics like
/// [`par_map`].
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_map(chunks, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_map_preserves_order() {
        let out = with_threads(4, || par_map((0..100).collect(), |i: usize| i * i));
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<usize> = with_threads(4, || par_map(Vec::<usize>::new(), |i| i));
        assert!(out.is_empty());
    }

    #[test]
    fn one_thread_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let spawned = AtomicBool::new(false);
        with_threads(1, || {
            par_map(vec![1, 2, 3], |i: i32| {
                if std::thread::current().id() != caller {
                    spawned.store(true, Ordering::Relaxed);
                }
                i
            })
        });
        assert!(
            !spawned.load(Ordering::Relaxed),
            "1-thread fallback must not spawn workers"
        );
    }

    #[test]
    fn panic_propagates_and_workers_join() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map((0..32).collect(), |i: usize| {
                    if i == 7 {
                        panic!("die 7 exploded");
                    }
                    i
                })
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "die 7 exploded");
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let before = current_threads();
        let _ = std::panic::catch_unwind(|| {
            with_threads(3, || panic!("boom"));
        });
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn with_threads_nests() {
        with_threads(4, || {
            assert_eq!(current_threads(), 4);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 4);
        });
    }

    #[test]
    fn workers_inherit_override() {
        // A nested par_map inside a worker must see the scoped width.
        let widths = with_threads(2, || par_map(vec![(), ()], |()| current_threads()));
        assert_eq!(widths, vec![2, 2]);
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<usize> = (0..10).collect();
        let sums = with_threads(4, || par_chunks(&items, 3, |c| c.iter().sum::<usize>()));
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks(&[1, 2, 3], 0, |c: &[i32]| c.len());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // The pool half of the determinism contract: identical results
        // at every width.
        let serial = with_threads(1, || {
            par_map((0..64).collect(), |i: u64| i.wrapping_mul(0x9E37))
        });
        let wide = with_threads(8, || {
            par_map((0..64).collect(), |i: u64| i.wrapping_mul(0x9E37))
        });
        assert_eq!(serial, wide);
    }
}
