//! Photonic reservoir layer.
//!
//! §II-A notes the PUF's resonant memory mixes past and present bits
//! "similarly to what happens in reservoir computing" — the same
//! NEUROPULS platform runs reservoir workloads on the accelerator. This
//! module provides a small echo-state-style reservoir whose state update
//! mimics a ring-loaded photonic cavity: a leaky integrator with fixed
//! random input/recurrent couplings and a saturating optical
//! nonlinearity.

use neuropuls_photonic::laser::gaussian;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// A fixed-random photonic reservoir.
#[derive(Debug, Clone)]
pub struct Reservoir {
    input_weights: Vec<Vec<f64>>, // nodes × inputs
    recurrent: Vec<Vec<f64>>,     // nodes × nodes
    state: Vec<f64>,
    leak: f64,
}

impl Reservoir {
    /// Builds a reservoir of `nodes` nodes over `inputs` input channels.
    /// `spectral_scale` controls the recurrent strength (keep < 1 for the
    /// echo-state property); `seed` fixes the random couplings.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `inputs` is zero, or `spectral_scale` is not
    /// in `(0, 1)`.
    pub fn new(nodes: usize, inputs: usize, spectral_scale: f64, seed: u64) -> Self {
        assert!(nodes > 0 && inputs > 0, "degenerate reservoir");
        assert!(
            spectral_scale > 0.0 && spectral_scale < 1.0,
            "spectral scale must be in (0,1) for the echo-state property"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let input_weights = (0..nodes)
            .map(|_| (0..inputs).map(|_| gaussian(&mut rng) * 0.5).collect())
            .collect();
        // Normalize rows so the recurrent map is a contraction bounded by
        // spectral_scale (row-sum norm bounds the spectral radius).
        let raw: Vec<Vec<f64>> = (0..nodes)
            .map(|_| (0..nodes).map(|_| gaussian(&mut rng)).collect())
            .collect();
        let max_row_sum = raw
            .iter()
            .map(|row| row.iter().map(|w| w.abs()).sum::<f64>())
            .fold(f64::MIN_POSITIVE, f64::max);
        let recurrent = raw
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|w| w / max_row_sum * spectral_scale)
                    .collect()
            })
            .collect();
        Reservoir {
            input_weights,
            recurrent,
            state: vec![0.0; nodes],
            leak: 0.3,
        }
    }

    /// Number of reservoir nodes.
    pub fn nodes(&self) -> usize {
        self.state.len()
    }

    /// Clears the reservoir state.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = 0.0);
    }

    /// Advances one time step with input `u`, returning the new state.
    ///
    /// # Panics
    ///
    /// Panics if `u` has the wrong width.
    pub fn step(&mut self, u: &[f64]) -> &[f64] {
        assert_eq!(u.len(), self.input_weights[0].len(), "input width mismatch");
        let n = self.state.len();
        let mut next = vec![0.0; n];
        for i in 0..n {
            let drive: f64 = self.input_weights[i]
                .iter()
                .zip(u.iter())
                .map(|(w, x)| w * x)
                .sum();
            let echo: f64 = self.recurrent[i]
                .iter()
                .zip(self.state.iter())
                .map(|(w, s)| w * s)
                .sum();
            next[i] = (1.0 - self.leak) * self.state[i] + self.leak * (drive + echo).tanh();
        }
        self.state = next;
        &self.state
    }

    /// Runs a full input sequence, returning the state trajectory
    /// (`steps × nodes`).
    pub fn run(&mut self, sequence: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.reset();
        sequence.iter().map(|u| self.step(u).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_fades_without_input() {
        let mut r = Reservoir::new(16, 2, 0.8, 1);
        r.step(&[1.0, -1.0]);
        let energized: f64 = r.state.iter().map(|s| s * s).sum();
        for _ in 0..200 {
            r.step(&[0.0, 0.0]);
        }
        let faded: f64 = r.state.iter().map(|s| s * s).sum();
        assert!(energized > 1e-6);
        assert!(faded < energized * 0.01, "echo-state property violated");
    }

    #[test]
    fn reset_restores_zero_state() {
        let mut r = Reservoir::new(8, 1, 0.5, 2);
        r.step(&[1.0]);
        r.reset();
        assert!(r.state.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn memory_of_past_inputs() {
        // Sequences differing only in their *first* element must leave
        // different states a few steps later.
        let mut r = Reservoir::new(16, 1, 0.9, 3);
        let a = r.run(&[vec![1.0], vec![0.0], vec![0.0], vec![0.0]]);
        let b = r.run(&[vec![-1.0], vec![0.0], vec![0.0], vec![0.0]]);
        let dist: f64 = a[3]
            .iter()
            .zip(b[3].iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        assert!(dist > 1e-9, "reservoir has no memory");
    }

    #[test]
    fn same_seed_same_dynamics() {
        let mut a = Reservoir::new(8, 2, 0.7, 4);
        let mut b = Reservoir::new(8, 2, 0.7, 4);
        let sa = a.run(&[vec![0.5, 0.1], vec![0.2, -0.3]]);
        let sb = b.run(&[vec![0.5, 0.1], vec![0.2, -0.3]]);
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "echo-state")]
    fn rejects_unstable_scale() {
        let _ = Reservoir::new(8, 1, 1.5, 5);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_bad_input_width() {
        let mut r = Reservoir::new(4, 2, 0.5, 6);
        let _ = r.step(&[1.0]);
    }
}
