//! Protocol-level error type.

use neuropuls_crypto::CryptoError;
use neuropuls_puf::PufError;
use neuropuls_rt::codec::CodecError;
use std::error::Error;
use std::fmt;

/// Errors raised by the security services.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A message failed authentication — the peer is not who it claims,
    /// or the message was tampered with in transit.
    AuthenticationFailed(String),
    /// A nonce or session identifier was reused (replay).
    Replay,
    /// The protocol state machine received a message out of order.
    OutOfOrder(String),
    /// A wire frame could not be decoded.
    Wire(CodecError),
    /// A session gave up waiting for the peer after exhausting its
    /// retransmission budget.
    Timeout {
        /// Retransmissions attempted before giving up.
        retries: u32,
    },
    /// The peer reported a fault of its own over the wire (e.g. the
    /// secure accelerator rejected a blob).
    PeerFault(String),
    /// The attestation digest disagreed with the verifier's expectation.
    AttestationDigestMismatch,
    /// The attestation exceeded its temporal constraint.
    AttestationTimeout {
        /// Measured duration (ns).
        measured_ns: f64,
        /// Allowed duration (ns).
        allowed_ns: f64,
    },
    /// A ciphertext failed to decrypt or parse.
    MalformedCiphertext(String),
    /// An underlying PUF evaluation failed.
    Puf(PufError),
    /// An underlying cryptographic operation failed.
    Crypto(CryptoError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::AuthenticationFailed(what) => {
                write!(f, "authentication failed: {what}")
            }
            ProtocolError::Replay => write!(f, "replayed nonce or session"),
            ProtocolError::OutOfOrder(what) => write!(f, "out-of-order message: {what}"),
            ProtocolError::Wire(e) => write!(f, "wire decode error: {e}"),
            ProtocolError::Timeout { retries } => {
                write!(f, "session timed out after {retries} retransmissions")
            }
            ProtocolError::PeerFault(what) => write!(f, "peer reported fault: {what}"),
            ProtocolError::AttestationDigestMismatch => {
                write!(f, "attestation digest mismatch")
            }
            ProtocolError::AttestationTimeout {
                measured_ns,
                allowed_ns,
            } => write!(
                f,
                "attestation exceeded temporal constraint: {measured_ns} ns > {allowed_ns} ns"
            ),
            ProtocolError::MalformedCiphertext(what) => {
                write!(f, "malformed ciphertext: {what}")
            }
            ProtocolError::Puf(e) => write!(f, "puf error: {e}"),
            ProtocolError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for ProtocolError {}

impl From<PufError> for ProtocolError {
    fn from(e: PufError) -> Self {
        ProtocolError::Puf(e)
    }
}

impl From<CryptoError> for ProtocolError {
    fn from(e: CryptoError) -> Self {
        ProtocolError::Crypto(e)
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let errors: Vec<ProtocolError> = vec![
            ProtocolError::AuthenticationFailed("bad mac".into()),
            ProtocolError::Replay,
            ProtocolError::OutOfOrder("confirm before hello".into()),
            ProtocolError::Wire(CodecError::BadMagic),
            ProtocolError::Timeout { retries: 3 },
            ProtocolError::PeerFault("engine refused".into()),
            ProtocolError::AttestationDigestMismatch,
            ProtocolError::AttestationTimeout {
                measured_ns: 10.0,
                allowed_ns: 5.0,
            },
            ProtocolError::MalformedCiphertext("short".into()),
            ProtocolError::Puf(PufError::ChallengeLength {
                expected: 64,
                actual: 1,
            }),
            ProtocolError::Crypto(CryptoError::MacMismatch),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let p: ProtocolError = PufError::ChallengeOutOfRange("x".into()).into();
        assert!(matches!(p, ProtocolError::Puf(_)));
        let c: ProtocolError = CryptoError::MacMismatch.into();
        assert!(matches!(c, ProtocolError::Crypto(_)));
    }
}
