//! Secure neural-network configuration and data encryption — Table I of
//! the paper (§III-C).
//!
//! Two hardware functions are exposed to software:
//!
//! | function          | parameters         | results           |
//! |-------------------|--------------------|-------------------|
//! | `load_network`    | `ciphered_network` |                   |
//! | `execute_network` | `ciphered_input`   | `ciphered_output` |
//!
//! "Data are never exposed in plaintext to the software": decryption
//! happens inside [`SecureAccelerator`] (the hardware boundary), plaintext
//! lives only in its private fields for the duration of the call, and
//! every value crossing the API is a ciphertext. The device key comes
//! from the weak PUF (see [`crate::keys`]) and is likewise never visible
//! to software.
//!
//! Wire format of every encrypted blob (encrypt-then-MAC):
//! `nonce (12 B) ‖ ciphertext ‖ HMAC-SHA-256 tag (32 B)`, with the MAC
//! keyed by a key derived from the device key and a direction label.

use crate::error::ProtocolError;
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::{EngineStats, PhotonicEngine};
use neuropuls_crypto::chacha20::{ChaCha20, NONCE_LEN};
use neuropuls_crypto::hkdf;
use neuropuls_crypto::hmac::{HmacSha256, TAG_LEN};
use neuropuls_crypto::prng::CsPrng;
use neuropuls_rt::RngCore;

fn subkeys(device_key: &[u8; 32], label: &[u8]) -> ([u8; 32], [u8; 32]) {
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    // invariant: hkdf::derive only errors past 255 output blocks; a
    // 32-byte request is one block.
    hkdf::derive(
        b"neuropuls/secure-nn",
        device_key,
        &[label, b"/enc"].concat(),
        &mut enc,
    )
    .expect("32-byte HKDF output is valid");
    // invariant: same single-block 32-byte request as above.
    hkdf::derive(
        b"neuropuls/secure-nn",
        device_key,
        &[label, b"/mac"].concat(),
        &mut mac,
    )
    .expect("32-byte HKDF output is valid");
    (enc, mac)
}

/// Seals `plaintext` under `device_key` with a direction `label`.
fn seal(device_key: &[u8; 32], label: &[u8], plaintext: &[u8], rng: &mut CsPrng) -> Vec<u8> {
    let (enc_key, mac_key) = subkeys(device_key, label);
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let mut body = plaintext.to_vec();
    ChaCha20::new(&enc_key, &nonce).apply(&mut body);
    let mut out = Vec::with_capacity(NONCE_LEN + body.len() + TAG_LEN);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&body);
    let tag = HmacSha256::mac(&mac_key, &out);
    out.extend_from_slice(&tag);
    out
}

/// Opens a sealed blob.
fn open(device_key: &[u8; 32], label: &[u8], blob: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    if blob.len() < NONCE_LEN + TAG_LEN {
        return Err(ProtocolError::MalformedCiphertext(format!(
            "blob of {} bytes is shorter than nonce+tag",
            blob.len()
        )));
    }
    let (enc_key, mac_key) = subkeys(device_key, label);
    let (body, tag) = blob.split_at(blob.len() - TAG_LEN);
    HmacSha256::verify(&mac_key, body, tag)
        .map_err(|_| ProtocolError::AuthenticationFailed("ciphertext tag invalid".into()))?;
    // invariant: the length guard above rejected blobs shorter than
    // NONCE_LEN + TAG_LEN, so this slice is exactly NONCE_LEN bytes.
    let nonce: [u8; NONCE_LEN] = body[..NONCE_LEN].try_into().expect("length checked");
    let mut plaintext = body[NONCE_LEN..].to_vec();
    ChaCha20::new(&enc_key, &nonce).apply(&mut plaintext);
    Ok(plaintext)
}

fn encode_values(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 4);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for &v in values {
        out.extend_from_slice(&(v as f32).to_le_bytes());
    }
    out
}

fn decode_values(bytes: &[u8]) -> Result<Vec<f64>, ProtocolError> {
    if bytes.len() < 4 {
        return Err(ProtocolError::MalformedCiphertext(
            "tensor header missing".into(),
        ));
    }
    let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() != 4 + count * 4 {
        return Err(ProtocolError::MalformedCiphertext(format!(
            "tensor of {count} values does not match {} payload bytes",
            bytes.len() - 4
        )));
    }
    Ok(bytes[4..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]) as f64)
        .collect())
}

const LABEL_NETWORK: &[u8] = b"network";
const LABEL_INPUT: &[u8] = b"input";
const LABEL_OUTPUT: &[u8] = b"output";

/// The external party (NN owner) that prepares ciphered payloads and
/// reads ciphered outputs. Shares the device key through the enrollment
/// channel.
#[derive(Debug)]
pub struct NetworkOwner {
    key: [u8; 32],
    rng: CsPrng,
}

impl NetworkOwner {
    /// Creates the owner-side endpoint.
    pub fn new(device_key: [u8; 32], rng_seed: &[u8]) -> Self {
        NetworkOwner {
            key: device_key,
            rng: CsPrng::from_seed_bytes(rng_seed),
        }
    }

    /// Encrypts a network configuration for `load_network`.
    pub fn cipher_network(&mut self, config: &NetworkConfig) -> Vec<u8> {
        seal(&self.key, LABEL_NETWORK, &config.to_bytes(), &mut self.rng)
    }

    /// Encrypts an input tensor for `execute_network`.
    pub fn cipher_input(&mut self, input: &[f64]) -> Vec<u8> {
        seal(&self.key, LABEL_INPUT, &encode_values(input), &mut self.rng)
    }

    /// Decrypts a ciphered output.
    ///
    /// # Errors
    ///
    /// Fails on tampered or malformed blobs.
    pub fn decipher_output(&self, ciphered: &[u8]) -> Result<Vec<f64>, ProtocolError> {
        decode_values(&open(&self.key, LABEL_OUTPUT, ciphered)?)
    }

    /// Encrypts a batch of input tensors for `execute_network_batch`.
    pub fn cipher_inputs(&mut self, inputs: &[Vec<f64>]) -> Vec<Vec<u8>> {
        inputs
            .iter()
            .map(|input| self.cipher_input(input))
            .collect()
    }

    /// Decrypts a batch of ciphered outputs.
    ///
    /// # Errors
    ///
    /// Fails on the first tampered or malformed blob.
    pub fn decipher_outputs(&self, ciphered: &[Vec<u8>]) -> Result<Vec<Vec<f64>>, ProtocolError> {
        ciphered
            .iter()
            .map(|blob| self.decipher_output(blob))
            .collect()
    }
}

/// The hardware boundary: accelerator plus the PUF-derived key. The two
/// public methods are exactly Table I.
#[derive(Debug)]
pub struct SecureAccelerator {
    engine: PhotonicEngine,
    key: [u8; 32],
    rng: CsPrng,
}

impl SecureAccelerator {
    /// Builds the secure accelerator around an engine and the device key
    /// reproduced from the weak PUF.
    pub fn new(engine: PhotonicEngine, device_key: [u8; 32]) -> Self {
        let rng = CsPrng::from_seed_bytes(&device_key);
        SecureAccelerator {
            engine,
            key: device_key,
            rng,
        }
    }

    /// `load_network(ciphered_network)` — decrypts in hardware and
    /// programs the accelerator. No plaintext result is returned.
    ///
    /// # Errors
    ///
    /// Authentication/parse failures, or engine load errors.
    pub fn load_network(&mut self, ciphered_network: &[u8]) -> Result<(), ProtocolError> {
        let plaintext = open(&self.key, LABEL_NETWORK, ciphered_network)?;
        let config = NetworkConfig::from_bytes(&plaintext)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))?;
        self.engine
            .load(config)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))
        // `plaintext` drops here: the decrypted configuration never
        // leaves the hardware boundary.
    }

    /// `execute_network(ciphered_input) -> ciphered_output` — decrypts
    /// the input, runs inference, re-encrypts the result.
    ///
    /// # Errors
    ///
    /// Authentication/parse failures, or engine inference errors.
    pub fn execute_network(&mut self, ciphered_input: &[u8]) -> Result<Vec<u8>, ProtocolError> {
        let plaintext = open(&self.key, LABEL_INPUT, ciphered_input)?;
        let input = decode_values(&plaintext)?;
        let output = self
            .engine
            .infer(&input)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))?;
        Ok(seal(
            &self.key,
            LABEL_OUTPUT,
            &encode_values(&output),
            &mut self.rng,
        ))
    }

    /// Batched `execute_network`: decrypts every input, runs one
    /// [`PhotonicEngine::infer_batch`] call, re-encrypts every output.
    ///
    /// All blobs are authenticated and decoded *before* any inference
    /// runs, so a tampered item rejects the whole batch without
    /// consuming a noise epoch (a faulted-and-retried batch replays the
    /// same analog noise).
    ///
    /// # Errors
    ///
    /// The first authentication/parse failure, or the engine error.
    pub fn execute_network_batch(
        &mut self,
        ciphered_inputs: &[Vec<u8>],
    ) -> Result<Vec<Vec<u8>>, ProtocolError> {
        let mut inputs = Vec::with_capacity(ciphered_inputs.len());
        for blob in ciphered_inputs {
            let plaintext = open(&self.key, LABEL_INPUT, blob)?;
            inputs.push(decode_values(&plaintext)?);
        }
        let outputs = self
            .engine
            .infer_batch(&inputs)
            .map_err(|e| ProtocolError::MalformedCiphertext(e.to_string()))?;
        Ok(outputs
            .iter()
            .map(|o| seal(&self.key, LABEL_OUTPUT, &encode_values(o), &mut self.rng))
            .collect())
    }

    /// Engine statistics (performance accounting; not confidential).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// Whether a network is loaded.
    pub fn is_loaded(&self) -> bool {
        self.engine.is_loaded()
    }
}

// ---------------------------------------------------------------------------
// Wire sessions
// ---------------------------------------------------------------------------

use crate::transport::{Channel, Transport};
use crate::wire::{
    classify, drive_report, resend_or_wait, Arq, Envelope, Incoming, NextWake, ProtocolId,
    SecureNnMsg, Session, SessionAction, SessionConfig, SessionReport, DEFAULT_MAX_TICKS,
};
use neuropuls_rt::codec::ToBytes;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NnClientState {
    Start,
    AwaitLoadAck,
    AwaitOutput,
    Done,
}

/// The software side of Table I as a wire session: ships the ciphered
/// network, awaits the load acknowledgement, ships the ciphered input,
/// awaits the ciphered output. Blobs are prepared/deciphered by the
/// [`NetworkOwner`] outside the session — the wire layer only ever sees
/// ciphertext.
pub struct WireNnClient {
    session: u64,
    arq: Arq,
    state: NnClientState,
    network_blob: Vec<u8>,
    input_blob: Vec<u8>,
    output_blob: Option<Vec<u8>>,
    last_reject: Option<ProtocolError>,
}

impl WireNnClient {
    /// Creates a client session shipping `network_blob` then
    /// `input_blob` (both already sealed by the [`NetworkOwner`]).
    pub fn new(
        session: u64,
        network_blob: Vec<u8>,
        input_blob: Vec<u8>,
        cfg: SessionConfig,
    ) -> Self {
        WireNnClient {
            session,
            arq: Arq::new(cfg),
            state: NnClientState::Start,
            network_blob,
            input_blob,
            output_blob: None,
            last_reject: None,
        }
    }

    /// The ciphered output, once the session completed.
    pub fn output_blob(&self) -> Option<&[u8]> {
        self.output_blob.as_deref()
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }
}

impl Session for WireNnClient {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            NnClientState::Start => {
                let frame = Envelope::pack(
                    ProtocolId::SecureNn,
                    self.session,
                    0,
                    &SecureNnMsg::Load(self.network_blob.clone()),
                )
                .to_bytes();
                self.arq.sent(&frame);
                self.state = NnClientState::AwaitLoadAck;
                Ok(SessionAction::Send(frame))
            }
            NnClientState::AwaitLoadAck => {
                match classify::<SecureNnMsg>(incoming, ProtocolId::SecureNn, Some(self.session), 1)
                {
                    Incoming::Msg(_, SecureNnMsg::LoadAck) => {
                        self.arq.activity();
                        let frame = Envelope::pack(
                            ProtocolId::SecureNn,
                            self.session,
                            2,
                            &SecureNnMsg::Execute(self.input_blob.clone()),
                        )
                        .to_bytes();
                        self.arq.sent(&frame);
                        self.state = NnClientState::AwaitOutput;
                        Ok(SessionAction::Send(frame))
                    }
                    Incoming::Msg(_, SecureNnMsg::Fault(what)) => {
                        self.arq.activity();
                        self.rejected(ProtocolError::PeerFault(what))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnClientState::AwaitOutput => {
                match classify::<SecureNnMsg>(incoming, ProtocolId::SecureNn, Some(self.session), 3)
                {
                    Incoming::Msg(_, SecureNnMsg::Output(blob)) => {
                        self.arq.activity();
                        self.output_blob = Some(blob);
                        self.state = NnClientState::Done;
                        Ok(SessionAction::Done)
                    }
                    Incoming::Msg(_, SecureNnMsg::Fault(what)) => {
                        self.arq.activity();
                        self.rejected(ProtocolError::PeerFault(what))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnClientState::Done => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.state == NnClientState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            NnClientState::Start => NextWake::In(0),
            NnClientState::AwaitLoadAck | NnClientState::AwaitOutput => {
                NextWake::In(self.arq.ticks_to_fire())
            }
            NnClientState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NnServerState {
    AwaitLoad,
    AwaitExecute,
    Done,
}

/// The hardware boundary as a wire session: answers `load_network` /
/// `execute_network` calls, reporting blob rejections as
/// [`SecureNnMsg::Fault`] frames so the client can retransmit a clean
/// copy instead of hanging.
pub struct WireNnServer<'a> {
    accel: &'a mut SecureAccelerator,
    session: Option<u64>,
    arq: Arq,
    state: NnServerState,
}

impl<'a> WireNnServer<'a> {
    /// Wraps `accel` for one wire session; the session id is latched
    /// from the first load envelope.
    pub fn new(accel: &'a mut SecureAccelerator, cfg: SessionConfig) -> Self {
        WireNnServer {
            accel,
            session: None,
            arq: Arq::new(cfg),
            state: NnServerState::AwaitLoad,
        }
    }

    fn fault(&self, session: u64, seq: u32, e: &ProtocolError) -> SessionAction {
        // Fault frames are transient notices, not ARQ-tracked progress:
        // the client burns a retry and retransmits its request.
        SessionAction::Send(
            Envelope::pack(
                ProtocolId::SecureNn,
                session,
                seq,
                &SecureNnMsg::Fault(e.to_string()),
            )
            .to_bytes(),
        )
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(e),
        }
    }
}

impl Session for WireNnServer<'_> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            NnServerState::AwaitLoad => {
                match classify::<SecureNnMsg>(incoming, ProtocolId::SecureNn, self.session, 0) {
                    Incoming::Msg(session, SecureNnMsg::Load(blob)) => {
                        self.arq.activity();
                        self.session = Some(session);
                        match self.accel.load_network(&blob) {
                            Ok(()) => {
                                let frame = Envelope::pack(
                                    ProtocolId::SecureNn,
                                    session,
                                    1,
                                    &SecureNnMsg::LoadAck,
                                )
                                .to_bytes();
                                self.arq.sent(&frame);
                                self.state = NnServerState::AwaitExecute;
                                Ok(SessionAction::Send(frame))
                            }
                            Err(e) => Ok(self.fault(session, 1, &e)),
                        }
                    }
                    Incoming::Msg(..) | Incoming::Duplicate | Incoming::Noise => self.idle(),
                }
            }
            NnServerState::AwaitExecute => {
                match classify::<SecureNnMsg>(incoming, ProtocolId::SecureNn, self.session, 2) {
                    Incoming::Msg(session, SecureNnMsg::Execute(blob)) => {
                        self.arq.activity();
                        match self.accel.execute_network(&blob) {
                            Ok(out) => {
                                let frame = Envelope::pack(
                                    ProtocolId::SecureNn,
                                    session,
                                    3,
                                    &SecureNnMsg::Output(out),
                                )
                                .to_bytes();
                                self.arq.sent(&frame);
                                self.state = NnServerState::Done;
                                Ok(SessionAction::Send(frame))
                            }
                            Err(e) => Ok(self.fault(session, 3, &e)),
                        }
                    }
                    Incoming::Msg(..) => self.idle(),
                    // A retransmitted load: the client missed our ack.
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnServerState::Done => {
                // Linger: a retransmitted execute means the client
                // missed the output — resend the stored frame.
                match classify::<SecureNnMsg>(incoming, ProtocolId::SecureNn, self.session, 4) {
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    _ => Ok(SessionAction::Wait),
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.state == NnServerState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            NnServerState::AwaitLoad | NnServerState::AwaitExecute => {
                NextWake::In(self.arq.ticks_to_fire())
            }
            NnServerState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

/// Runs one load+execute round over `channel` (client =
/// [`Side::A`](crate::transport::Side::A), accelerator =
/// [`Side::B`](crate::transport::Side::B)), returning the ciphered
/// output blob alongside the session report. Wire activity is recorded
/// into `tracer` (pass
/// [`Tracer::disabled`](neuropuls_rt::trace::Tracer::disabled) for an
/// untraced run).
#[allow(clippy::too_many_arguments)]
pub fn run_wire_inference<T: Transport>(
    channel: &mut T,
    accel: &mut SecureAccelerator,
    network_blob: Vec<u8>,
    input_blob: Vec<u8>,
    session_id: u64,
    cfg: SessionConfig,
    tracer: &mut neuropuls_rt::trace::Tracer,
) -> (SessionReport, Option<Vec<u8>>) {
    let mut client = WireNnClient::new(session_id, network_blob, input_blob, cfg);
    let mut server = WireNnServer::new(accel, cfg);
    let report = drive_report(channel, &mut client, &mut server, DEFAULT_MAX_TICKS, tracer);
    let output = client.output_blob().map(<[u8]>::to_vec);
    (report, output)
}

/// Runs one load+execute round over a perfect in-memory channel: the
/// owner ciphers the network and input, the blobs cross the wire, and
/// the deciphered output comes back.
///
/// # Errors
///
/// Propagates the first protocol failure.
pub fn run_inference(
    owner: &mut NetworkOwner,
    accel: &mut SecureAccelerator,
    config: &NetworkConfig,
    input: &[f64],
) -> Result<Vec<f64>, ProtocolError> {
    let network_blob = owner.cipher_network(config);
    let input_blob = owner.cipher_input(input);
    let mut channel = Channel::new();
    let (report, output) = run_wire_inference(
        &mut channel,
        accel,
        network_blob,
        input_blob,
        0,
        SessionConfig::default(),
        &mut neuropuls_rt::trace::Tracer::disabled(),
    );
    report.result?;
    let blob = output
        .ok_or_else(|| ProtocolError::OutOfOrder("session completed without output".into()))?;
    owner.decipher_output(&blob)
}

// ---------------------------------------------------------------------------
// Batched wire sessions
// ---------------------------------------------------------------------------

use crate::wire::{chunk_nn_items, NnChunk};
use neuropuls_rt::trace::Registry;
use std::cell::RefCell;
use std::rc::Rc;

/// A [`SecureAccelerator`] shared by several concurrently multiplexed
/// wire sessions. The gateway drives every session from one
/// single-threaded poll loop, so interior mutability is all that is
/// needed; batches from different sessions serialize at the hardware
/// boundary exactly like calls into a real accelerator would.
pub type SharedAccelerator = Rc<RefCell<SecureAccelerator>>;

/// Wraps `accel` for sharing across sessions.
pub fn share_accelerator(accel: SecureAccelerator) -> SharedAccelerator {
    Rc::new(RefCell::new(accel))
}

/// Chunks `items`, always producing at least one (possibly empty)
/// chunk so the wire exchange stays well-formed for empty batches.
fn chunks_or_empty(items: &[Vec<u8>]) -> Vec<NnChunk> {
    let chunks = chunk_nn_items(items);
    if chunks.is_empty() {
        vec![NnChunk {
            index: 0,
            total: 1,
            items: Vec::new(),
        }]
    } else {
        chunks
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NnBatchClientState {
    Start,
    AwaitLoadAck,
    AwaitChunkAck,
    AwaitOutput,
    Done,
}

/// The software side of a batched inference call: optionally ships the
/// ciphered network, streams the sealed inputs as versioned chunks
/// (stop-and-wait, one chunk per ack), then drains the sealed output
/// chunks. Frames alternate strictly — client frames carry even
/// sequence numbers, accelerator frames odd ones — so the scalar
/// session's ARQ and duplicate-recovery machinery applies unchanged.
pub struct WireNnBatchClient {
    session: u64,
    arq: Arq,
    state: NnBatchClientState,
    network_blob: Option<Vec<u8>>,
    request_chunks: Vec<NnChunk>,
    next_request: usize,
    received_output: usize,
    output_items: Vec<Vec<u8>>,
    seq: u32,
    last_reject: Option<ProtocolError>,
}

impl WireNnBatchClient {
    /// A session that loads `network_blob` before executing the batch.
    pub fn with_load(
        session: u64,
        network_blob: Vec<u8>,
        input_blobs: &[Vec<u8>],
        cfg: SessionConfig,
    ) -> Self {
        Self::build(session, Some(network_blob), input_blobs, cfg)
    }

    /// A session that executes against the accelerator's already-loaded
    /// network (the shared-engine path: one owner loads, many sessions
    /// execute).
    pub fn execute_only(session: u64, input_blobs: &[Vec<u8>], cfg: SessionConfig) -> Self {
        Self::build(session, None, input_blobs, cfg)
    }

    fn build(
        session: u64,
        network_blob: Option<Vec<u8>>,
        input_blobs: &[Vec<u8>],
        cfg: SessionConfig,
    ) -> Self {
        WireNnBatchClient {
            session,
            arq: Arq::new(cfg),
            state: NnBatchClientState::Start,
            network_blob,
            request_chunks: chunks_or_empty(input_blobs),
            next_request: 0,
            received_output: 0,
            output_items: Vec::new(),
            seq: 0,
            last_reject: None,
        }
    }

    /// The sealed output blobs, once the session completed.
    pub fn output_blobs(&self) -> Option<&[Vec<u8>]> {
        if self.state == NnBatchClientState::Done {
            Some(&self.output_items)
        } else {
            None
        }
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn send(&mut self, msg: &SecureNnMsg) -> SessionAction {
        let frame = Envelope::pack(ProtocolId::SecureNn, self.session, self.seq, msg).to_bytes();
        self.arq.sent(&frame);
        self.seq += 1;
        SessionAction::Send(frame)
    }

    fn send_next_chunk(&mut self) -> Result<SessionAction, ProtocolError> {
        let chunk = self.request_chunks[self.next_request].clone();
        self.next_request += 1;
        self.state = if self.next_request == self.request_chunks.len() {
            NnBatchClientState::AwaitOutput
        } else {
            NnBatchClientState::AwaitChunkAck
        };
        Ok(self.send(&SecureNnMsg::ExecuteChunk(chunk)))
    }
}

impl Session for WireNnBatchClient {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            NnBatchClientState::Start => match self.network_blob.clone() {
                Some(blob) => {
                    self.state = NnBatchClientState::AwaitLoadAck;
                    Ok(self.send(&SecureNnMsg::Load(blob)))
                }
                None => self.send_next_chunk(),
            },
            NnBatchClientState::AwaitLoadAck => {
                match classify::<SecureNnMsg>(
                    incoming,
                    ProtocolId::SecureNn,
                    Some(self.session),
                    self.seq,
                ) {
                    Incoming::Msg(_, SecureNnMsg::LoadAck) => {
                        self.arq.activity();
                        self.seq += 1;
                        self.send_next_chunk()
                    }
                    Incoming::Msg(_, SecureNnMsg::Fault(what)) => {
                        self.arq.activity();
                        self.rejected(ProtocolError::PeerFault(what))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnBatchClientState::AwaitChunkAck => {
                match classify::<SecureNnMsg>(
                    incoming,
                    ProtocolId::SecureNn,
                    Some(self.session),
                    self.seq,
                ) {
                    Incoming::Msg(_, SecureNnMsg::ChunkAck { index }) => {
                        self.arq.activity();
                        if index as usize + 1 != self.next_request {
                            return Err(ProtocolError::OutOfOrder(format!(
                                "chunk ack {index} does not match chunk {}",
                                self.next_request - 1
                            )));
                        }
                        self.seq += 1;
                        self.send_next_chunk()
                    }
                    Incoming::Msg(_, SecureNnMsg::Fault(what)) => {
                        self.arq.activity();
                        self.rejected(ProtocolError::PeerFault(what))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnBatchClientState::AwaitOutput => {
                match classify::<SecureNnMsg>(
                    incoming,
                    ProtocolId::SecureNn,
                    Some(self.session),
                    self.seq,
                ) {
                    Incoming::Msg(_, SecureNnMsg::OutputChunk(chunk)) => {
                        self.arq.activity();
                        if chunk.index as usize != self.received_output {
                            return Err(ProtocolError::OutOfOrder(format!(
                                "output chunk {} while expecting {}",
                                chunk.index, self.received_output
                            )));
                        }
                        self.seq += 1;
                        self.received_output += 1;
                        let last = chunk.index + 1 == chunk.total;
                        self.output_items.extend(chunk.items);
                        if last {
                            self.state = NnBatchClientState::Done;
                            Ok(SessionAction::Done)
                        } else {
                            Ok(self.send(&SecureNnMsg::OutputAck { index: chunk.index }))
                        }
                    }
                    Incoming::Msg(_, SecureNnMsg::Fault(what)) => {
                        self.arq.activity();
                        self.rejected(ProtocolError::PeerFault(what))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnBatchClientState::Done => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.state == NnBatchClientState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            NnBatchClientState::Start => NextWake::In(0),
            NnBatchClientState::AwaitLoadAck
            | NnBatchClientState::AwaitChunkAck
            | NnBatchClientState::AwaitOutput => NextWake::In(self.arq.ticks_to_fire()),
            NnBatchClientState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NnBatchServerState {
    AwaitRequest,
    Responding,
    Done,
}

/// The hardware boundary serving one batched session against a (possibly
/// shared) accelerator. Request chunks are stored in index slots —
/// idempotent under re-delivery — and the batch executes exactly once,
/// when the final chunk arrives with every slot filled; a faulted
/// execute leaves the slots intact so the client's retransmission
/// retries the batch. Per-session inference accounting folds into the
/// trace [`Registry`] at execute time.
pub struct WireNnBatchServer<'r> {
    accel: SharedAccelerator,
    metrics: Option<&'r Registry>,
    session: Option<u64>,
    arq: Arq,
    state: NnBatchServerState,
    seq: u32,
    request_slots: Vec<Option<Vec<Vec<u8>>>>,
    response_chunks: Vec<NnChunk>,
    next_response: usize,
}

impl<'r> WireNnBatchServer<'r> {
    /// Serves one batched session against `accel`; the session id is
    /// latched from the first envelope.
    pub fn new(accel: SharedAccelerator, cfg: SessionConfig) -> Self {
        WireNnBatchServer {
            accel,
            metrics: None,
            session: None,
            arq: Arq::new(cfg),
            state: NnBatchServerState::AwaitRequest,
            seq: 0,
            request_slots: Vec::new(),
            response_chunks: Vec::new(),
            next_response: 0,
        }
    }

    /// Folds per-session batch accounting into `metrics`.
    pub fn with_metrics(mut self, metrics: &'r Registry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn fault(&self, session: u64, e: &ProtocolError) -> SessionAction {
        // Fault frames are transient notices, not ARQ-tracked progress:
        // the sequence does not advance, so the client burns a retry
        // and retransmits its request.
        SessionAction::Send(
            Envelope::pack(
                ProtocolId::SecureNn,
                session,
                self.seq + 1,
                &SecureNnMsg::Fault(e.to_string()),
            )
            .to_bytes(),
        )
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(e),
        }
    }

    /// Sends the ARQ-tracked reply to the frame just accepted at
    /// `self.seq`, advancing past both.
    fn reply(&mut self, session: u64, msg: &SecureNnMsg) -> SessionAction {
        let frame = Envelope::pack(ProtocolId::SecureNn, session, self.seq + 1, msg).to_bytes();
        self.arq.sent(&frame);
        self.seq += 2;
        SessionAction::Send(frame)
    }

    fn send_response_chunk(&mut self, session: u64) -> SessionAction {
        let chunk = self.response_chunks[self.next_response].clone();
        self.next_response += 1;
        let action = self.reply(session, &SecureNnMsg::OutputChunk(chunk));
        self.state = if self.next_response == self.response_chunks.len() {
            NnBatchServerState::Done
        } else {
            NnBatchServerState::Responding
        };
        action
    }

    fn execute(&mut self, session: u64) -> SessionAction {
        let items: Vec<Vec<u8>> = self
            .request_slots
            .iter()
            .flat_map(|slot| slot.clone().unwrap_or_default())
            .collect();
        let executed = self.accel.borrow_mut().execute_network_batch(&items);
        match executed {
            Ok(outputs) => {
                if let Some(metrics) = self.metrics {
                    metrics.counter("secure_nn.batch.executes", 1);
                    metrics.counter("secure_nn.batch.items", items.len() as u64);
                    metrics.observe("secure_nn.batch.items_per_session", items.len() as f64);
                }
                self.response_chunks = chunks_or_empty(&outputs);
                self.next_response = 0;
                self.send_response_chunk(session)
            }
            Err(e) => self.fault(session, &e),
        }
    }
}

impl Session for WireNnBatchServer<'_> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            NnBatchServerState::AwaitRequest => {
                match classify::<SecureNnMsg>(
                    incoming,
                    ProtocolId::SecureNn,
                    self.session,
                    self.seq,
                ) {
                    Incoming::Msg(session, SecureNnMsg::Load(blob)) => {
                        self.arq.activity();
                        self.session = Some(session);
                        let loaded = self.accel.borrow_mut().load_network(&blob);
                        match loaded {
                            Ok(()) => Ok(self.reply(session, &SecureNnMsg::LoadAck)),
                            Err(e) => Ok(self.fault(session, &e)),
                        }
                    }
                    Incoming::Msg(session, SecureNnMsg::ExecuteChunk(chunk)) => {
                        self.arq.activity();
                        self.session = Some(session);
                        let total = chunk.total as usize;
                        if total == 0 || chunk.index as usize >= total {
                            return Ok(self.fault(
                                session,
                                &ProtocolError::OutOfOrder(format!(
                                    "chunk {}/{} out of range",
                                    chunk.index, chunk.total
                                )),
                            ));
                        }
                        if self.request_slots.is_empty() {
                            self.request_slots.resize(total, None);
                        } else if self.request_slots.len() != total {
                            return Ok(self.fault(
                                session,
                                &ProtocolError::OutOfOrder(format!(
                                    "chunk total changed from {} to {total}",
                                    self.request_slots.len()
                                )),
                            ));
                        }
                        self.request_slots[chunk.index as usize] = Some(chunk.items);
                        let last = chunk.index as usize + 1 == total;
                        if !last {
                            return Ok(
                                self.reply(session, &SecureNnMsg::ChunkAck { index: chunk.index })
                            );
                        }
                        if self.request_slots.iter().any(Option::is_none) {
                            return Ok(self.fault(
                                session,
                                &ProtocolError::OutOfOrder("batch chunks missing".into()),
                            ));
                        }
                        Ok(self.execute(session))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnBatchServerState::Responding => {
                match classify::<SecureNnMsg>(
                    incoming,
                    ProtocolId::SecureNn,
                    self.session,
                    self.seq,
                ) {
                    Incoming::Msg(session, SecureNnMsg::OutputAck { index }) => {
                        self.arq.activity();
                        if index as usize + 1 != self.next_response {
                            return Err(ProtocolError::OutOfOrder(format!(
                                "output ack {index} does not match chunk {}",
                                self.next_response - 1
                            )));
                        }
                        Ok(self.send_response_chunk(session))
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            NnBatchServerState::Done => {
                // Linger: a retransmitted ack or final chunk means the
                // client missed an output chunk — resend it.
                match classify::<SecureNnMsg>(
                    incoming,
                    ProtocolId::SecureNn,
                    self.session,
                    self.seq,
                ) {
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    _ => Ok(SessionAction::Wait),
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.state == NnBatchServerState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            NnBatchServerState::AwaitRequest | NnBatchServerState::Responding => {
                NextWake::In(self.arq.ticks_to_fire())
            }
            NnBatchServerState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

/// Runs one batched inference round over `channel` (client =
/// [`Side::A`](crate::transport::Side::A), accelerator =
/// [`Side::B`](crate::transport::Side::B)). Pass a `network_blob` to
/// load before executing, or `None` to execute against the
/// accelerator's already-loaded network. Returns the sealed output
/// blobs alongside the session report. Wire activity is recorded into
/// `tracer` (pass
/// [`Tracer::disabled`](neuropuls_rt::trace::Tracer::disabled) for an
/// untraced run) and per-session batch accounting into `metrics`.
#[allow(clippy::too_many_arguments)]
pub fn run_wire_batch_inference<T: Transport>(
    channel: &mut T,
    accel: &SharedAccelerator,
    network_blob: Option<Vec<u8>>,
    input_blobs: &[Vec<u8>],
    session_id: u64,
    cfg: SessionConfig,
    tracer: &mut neuropuls_rt::trace::Tracer,
    metrics: Option<&Registry>,
) -> (SessionReport, Option<Vec<Vec<u8>>>) {
    let mut client = match network_blob {
        Some(blob) => WireNnBatchClient::with_load(session_id, blob, input_blobs, cfg),
        None => WireNnBatchClient::execute_only(session_id, input_blobs, cfg),
    };
    let mut server = WireNnBatchServer::new(accel.clone(), cfg);
    if let Some(metrics) = metrics {
        server = server.with_metrics(metrics);
    }
    // Every chunk needs its ack round-trip plus retry headroom.
    let chunks = client.request_chunks.len() as u32 + input_blobs.len() as u32 + 2;
    let max_ticks = DEFAULT_MAX_TICKS.max(chunks * 32);
    let report = drive_report(channel, &mut client, &mut server, max_ticks, tracer);
    let output = client.output_blobs().map(<[Vec<u8>]>::to_vec);
    (report, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_accel::config::NetworkConfig;

    fn identity(width: usize) -> NetworkConfig {
        NetworkConfig::mlp(&[width, width], |_, o, i| if o == i { 1.0 } else { 0.0 })
    }

    fn setup() -> (NetworkOwner, SecureAccelerator) {
        let key = [0x5A; 32];
        (
            NetworkOwner::new(key, b"owner-rng"),
            SecureAccelerator::new(PhotonicEngine::reference(1), key),
        )
    }

    #[test]
    fn end_to_end_inference() {
        let (mut owner, mut accel) = setup();
        accel
            .load_network(&owner.cipher_network(&identity(4)))
            .unwrap();
        let ciphered_out = accel
            .execute_network(&owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]))
            .unwrap();
        let output = owner.decipher_output(&ciphered_out).unwrap();
        assert_eq!(output.len(), 4);
        assert!((output[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn no_plaintext_on_the_wire() {
        // The network weights and inputs must not appear in any API-level
        // byte string.
        let (mut owner, mut accel) = setup();
        let config = identity(4);
        let config_bytes = config.to_bytes();
        let ciphered = owner.cipher_network(&config);
        // Look for any 16-byte window of the plaintext in the ciphertext.
        for window in config_bytes.windows(16) {
            assert!(
                !ciphered.windows(16).any(|w| w == window),
                "plaintext fragment leaked into ciphertext"
            );
        }
        accel.load_network(&ciphered).unwrap();
        let input = [0.125f64, 0.25, 0.5, 1.0];
        let ciphered_in = owner.cipher_input(&input);
        let encoded = encode_values(&input);
        for window in encoded.windows(8) {
            assert!(!ciphered_in.windows(8).any(|w| w == window));
        }
    }

    #[test]
    fn tampered_network_is_rejected() {
        let (mut owner, mut accel) = setup();
        let mut blob = owner.cipher_network(&identity(4));
        let mid = blob.len() / 2;
        blob[mid] ^= 0x80;
        assert!(matches!(
            accel.load_network(&blob),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
        assert!(!accel.is_loaded());
    }

    #[test]
    fn wrong_key_cannot_load() {
        let (mut owner, _) = setup();
        let blob = owner.cipher_network(&identity(4));
        let mut wrong = SecureAccelerator::new(PhotonicEngine::reference(2), [0x00; 32]);
        assert!(wrong.load_network(&blob).is_err());
    }

    #[test]
    fn labels_are_domain_separated() {
        // An input blob must not be accepted as a network and vice
        // versa, even under the right key.
        let (mut owner, mut accel) = setup();
        let input_blob = owner.cipher_input(&[1.0, 2.0]);
        assert!(accel.load_network(&input_blob).is_err());
        let net_blob = owner.cipher_network(&identity(2));
        accel.load_network(&net_blob).unwrap();
        assert!(accel.execute_network(&net_blob).is_err());
    }

    #[test]
    fn short_blobs_are_rejected_cleanly() {
        let (_, mut accel) = setup();
        assert!(matches!(
            accel.load_network(&[0u8; 10]),
            Err(ProtocolError::MalformedCiphertext(_))
        ));
    }

    #[test]
    fn execute_requires_loaded_network() {
        let (mut owner, mut accel) = setup();
        let blob = owner.cipher_input(&[1.0]);
        assert!(accel.execute_network(&blob).is_err());
    }

    #[test]
    fn output_tampering_is_detected_by_owner() {
        let (mut owner, mut accel) = setup();
        accel
            .load_network(&owner.cipher_network(&identity(2)))
            .unwrap();
        let mut out = accel
            .execute_network(&owner.cipher_input(&[1.0, 2.0]))
            .unwrap();
        let mid = out.len() / 2;
        out[mid] ^= 1;
        assert!(owner.decipher_output(&out).is_err());
    }

    fn batch_inputs(n: usize, width: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..width)
                    .map(|j| ((i * width + j) % 17) as f64 / 8.0 - 1.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_execute_matches_direct_engine() {
        let (mut owner, accel) = setup();
        let (_, mut twin) = setup();
        let inputs = batch_inputs(150, 4);
        let shared = share_accelerator(accel);
        let mut channel = Channel::new();
        let (report, outputs) = run_wire_batch_inference(
            &mut channel,
            &shared,
            Some(owner.cipher_network(&identity(4))),
            &owner.cipher_inputs(&inputs),
            7,
            SessionConfig::default(),
            &mut neuropuls_rt::trace::Tracer::disabled(),
            None,
        );
        report.result.unwrap();
        let got = owner.decipher_outputs(&outputs.unwrap()).unwrap();

        twin.load_network(&owner.cipher_network(&identity(4)))
            .unwrap();
        let sealed = twin
            .execute_network_batch(&owner.cipher_inputs(&inputs))
            .unwrap();
        let direct = owner.decipher_outputs(&sealed).unwrap();
        assert_eq!(got.len(), 150);
        assert_eq!(got, direct, "wire batch diverged from direct batch");
        // 150 × ~64-byte sealed items exceeds one chunk budget, so the
        // exchange really was chunked.
        assert!(
            owner
                .cipher_inputs(&inputs)
                .iter()
                .map(Vec::len)
                .sum::<usize>()
                > crate::wire::NN_CHUNK_BUDGET
        );
    }

    #[test]
    fn batch_survives_lossy_link() {
        use crate::transport::{FaultRates, FaultyChannel};
        let (mut owner, accel) = setup();
        let (_, mut twin) = setup();
        let inputs = batch_inputs(140, 4);
        let shared = share_accelerator(accel);
        let mut channel = FaultyChannel::new(FaultRates::loss(0.10), 0xBA7C);
        let (report, outputs) = run_wire_batch_inference(
            &mut channel,
            &shared,
            Some(owner.cipher_network(&identity(4))),
            &owner.cipher_inputs(&inputs),
            8,
            SessionConfig::default(),
            &mut neuropuls_rt::trace::Tracer::disabled(),
            None,
        );
        report.result.unwrap();
        twin.load_network(&owner.cipher_network(&identity(4)))
            .unwrap();
        let sealed = twin
            .execute_network_batch(&owner.cipher_inputs(&inputs))
            .unwrap();
        let direct = owner.decipher_outputs(&sealed).unwrap();
        let got = owner.decipher_outputs(&outputs.unwrap()).unwrap();
        assert_eq!(got, direct, "loss recovery changed the batch result");
        assert!(report.retransmits > 0, "10% loss should retransmit");
    }

    #[test]
    fn execute_only_sessions_share_one_engine() {
        let (mut owner, mut accel) = setup();
        let (_, mut twin) = setup();
        accel
            .load_network(&owner.cipher_network(&identity(4)))
            .unwrap();
        twin.load_network(&owner.cipher_network(&identity(4)))
            .unwrap();
        let shared = share_accelerator(accel);
        let inputs = batch_inputs(9, 4);
        let mut got = Vec::new();
        for sid in 0..2u64 {
            let mut channel = Channel::new();
            let (report, outputs) = run_wire_batch_inference(
                &mut channel,
                &shared,
                None,
                &owner.cipher_inputs(&inputs),
                sid + 1,
                SessionConfig::default(),
                &mut neuropuls_rt::trace::Tracer::disabled(),
                None,
            );
            report.result.unwrap();
            got.push(owner.decipher_outputs(&outputs.unwrap()).unwrap());
        }
        let direct: Vec<_> = (0..2)
            .map(|_| {
                let sealed = twin
                    .execute_network_batch(&owner.cipher_inputs(&inputs))
                    .unwrap();
                owner.decipher_outputs(&sealed).unwrap()
            })
            .collect();
        assert_eq!(got, direct);
        assert_ne!(
            got[0], got[1],
            "successive batches must draw fresh noise epochs"
        );
        assert_eq!(shared.borrow().stats().inferences, 18);
    }

    #[test]
    fn batch_fault_reaches_client() {
        // Execute-only against an empty accelerator: the engine refuses,
        // the server faults, the client reports PeerFault after its
        // retry budget.
        let (mut owner, accel) = setup();
        let shared = share_accelerator(accel);
        let mut channel = Channel::new();
        let (report, outputs) = run_wire_batch_inference(
            &mut channel,
            &shared,
            None,
            &owner.cipher_inputs(&batch_inputs(3, 4)),
            9,
            SessionConfig::default(),
            &mut neuropuls_rt::trace::Tracer::disabled(),
            None,
        );
        assert!(outputs.is_none());
        assert!(
            matches!(report.result, Err(ProtocolError::PeerFault(_))),
            "want PeerFault, got {:?}",
            report.result
        );
    }

    #[test]
    fn batch_metrics_fold_into_registry() {
        let (mut owner, mut accel) = setup();
        accel
            .load_network(&owner.cipher_network(&identity(4)))
            .unwrap();
        let shared = share_accelerator(accel);
        let registry = Registry::new();
        let mut channel = Channel::new();
        let (report, _) = run_wire_batch_inference(
            &mut channel,
            &shared,
            None,
            &owner.cipher_inputs(&batch_inputs(5, 4)),
            10,
            SessionConfig::default(),
            &mut neuropuls_rt::trace::Tracer::disabled(),
            Some(&registry),
        );
        report.result.unwrap();
        assert_eq!(registry.counter_value("secure_nn.batch.executes"), 1);
        assert_eq!(registry.counter_value("secure_nn.batch.items"), 5);
    }

    #[test]
    fn tensor_codec_roundtrip() {
        let values = vec![1.5, -2.25, 0.0, 1e-3];
        let decoded = decode_values(&encode_values(&values)).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(decode_values(&[1, 2]).is_err());
        assert!(decode_values(&[9, 0, 0, 0, 1, 2, 3]).is_err());
    }
}
