//! Active protocol attacks against the mutual-authentication service —
//! the adversary models the HSC-IoT design claims to resist (§III-A).
//!
//! All campaigns are mounted *on the wire*: the adversary sits between
//! the two genuine endpoints as a man-in-the-middle hook on a
//! [`FaultyChannel`] (or speaks the wire protocol itself, for blind
//! forgery) and manipulates serialized [`Envelope`] frames. An attack
//! attempt "succeeds" only if the full wire session completes — i.e.
//! the verifier accepted the adversarial frame and issued Msg3.

use std::cell::RefCell;
use std::rc::Rc;

use neuropuls_protocols::eke::{EkeParty, WireEkeInitiator, WireEkeResponder};
use neuropuls_protocols::error::ProtocolError;
use neuropuls_protocols::gateway::{
    run_gateway, AdmissionPolicy, ClassId, GatewayConfig, SessionPair,
};
use neuropuls_protocols::mutual_auth::{
    run_wire_session, Device, DeviceAuth, Verifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::transport::{Channel, FaultRates, FaultyChannel, MitmVerdict, Side};
use neuropuls_protocols::wire::{
    drive_report, Envelope, MutualAuthMsg, ProtocolId, Session, SessionAction, SessionConfig,
    DEFAULT_MAX_TICKS,
};
use neuropuls_puf::bits::Response;
use neuropuls_puf::traits::Puf;
use neuropuls_rt::codec::{FromBytes, ToBytes};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_rt::{Rng, SeedableRng};

/// Result of one adversarial campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Attack attempts made.
    pub attempts: usize,
    /// Attempts the verifier (wrongly) accepted.
    pub successes: usize,
}

impl CampaignOutcome {
    /// Attack success rate.
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }
}

/// Parses a frame as a mutual-authentication envelope.
fn as_auth_envelope(frame: &[u8]) -> Option<(Envelope, MutualAuthMsg)> {
    let env = Envelope::from_bytes(frame).ok()?;
    if env.protocol != ProtocolId::MutualAuth {
        return None;
    }
    let msg = env.open::<MutualAuthMsg>().ok()?;
    Some((env, msg))
}

/// Replay campaign: wiretap one genuine session to capture the device's
/// `DeviceAuth` payload, then splice that stale payload into `attempts`
/// fresh sessions (re-enveloped under the live session id and sequence
/// number so it is indistinguishable from in-session traffic at the
/// framing layer).
///
/// # Errors
///
/// Fails only if the *genuine* capture session cannot run.
pub fn replay_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
) -> Result<CampaignOutcome, ProtocolError> {
    // Passive phase: record the genuine DeviceAuth payload off the wire.
    let captured: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let tap = Rc::clone(&captured);
    let mut channel = FaultyChannel::new(FaultRates::none(), 0x5EED);
    channel.set_mitm(Box::new(move |from, frame| {
        if from == Side::B {
            if let Some((env, MutualAuthMsg::Auth(_))) = as_auth_envelope(frame) {
                *tap.borrow_mut() = Some(env.payload);
            }
        }
        MitmVerdict::Forward
    }));
    run_wire_session(
        &mut channel,
        device,
        verifier,
        0,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    )
    .result?;
    let payload = captured
        .borrow_mut()
        .take()
        .ok_or_else(|| ProtocolError::OutOfOrder("no DeviceAuth captured on the wire".into()))?;

    // Active phase: replace every fresh DeviceAuth with the stale one.
    let mut successes = 0;
    for i in 0..attempts {
        let mut channel = FaultyChannel::new(FaultRates::none(), 0x5EED ^ (i as u64 + 1));
        let stale = payload.clone();
        channel.set_mitm(Box::new(move |from, frame| {
            if from == Side::B {
                if let Some((env, MutualAuthMsg::Auth(_))) = as_auth_envelope(frame) {
                    let spliced = Envelope {
                        protocol: env.protocol,
                        session: env.session,
                        seq: env.seq,
                        payload: stale.clone(),
                    };
                    return MitmVerdict::Replace(spliced.to_bytes());
                }
            }
            MitmVerdict::Forward
        }));
        let report = run_wire_session(
            &mut channel,
            device,
            verifier,
            1 + i as u64,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        if report.succeeded() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// Man-in-the-middle bit-flip campaign: relay genuine wire sessions but
/// flip one random bit of the masked PUF response inside every
/// `DeviceAuth` frame before re-encoding it (so the frame still parses
/// and only the MAC check can catch the tamper).
///
/// # Errors
///
/// Reserved for infrastructure failures; the expected outcome of every
/// attempt — the verifier rejecting the session — is *not* an error.
pub fn mitm_tamper_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
    seed: u64,
) -> Result<CampaignOutcome, ProtocolError> {
    let rng = Rc::new(RefCell::new(StdRng::seed_from_u64(seed)));
    let mut successes = 0;
    for i in 0..attempts {
        let mut channel = FaultyChannel::new(FaultRates::none(), seed ^ (i as u64).wrapping_add(1));
        let rng = Rc::clone(&rng);
        channel.set_mitm(Box::new(move |from, frame| {
            if from == Side::B {
                if let Some((env, MutualAuthMsg::Auth(mut auth))) = as_auth_envelope(frame) {
                    let mut rng = rng.borrow_mut();
                    let byte = rng.gen_range(0..auth.masked_response.len());
                    let bit = rng.gen_range(0u8..8);
                    auth.masked_response[byte] ^= 1u8 << bit;
                    let tampered = Envelope::pack(
                        ProtocolId::MutualAuth,
                        env.session,
                        env.seq,
                        &MutualAuthMsg::Auth(auth),
                    );
                    return MitmVerdict::Replace(tampered.to_bytes());
                }
            }
            MitmVerdict::Forward
        }));
        let report = run_wire_session(
            &mut channel,
            device,
            verifier,
            i as u64,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        if report.succeeded() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// A wire endpoint that impersonates a device without knowing the PUF
/// secret: it answers every `AuthRequest` (including retransmissions)
/// with a freshly fabricated `DeviceAuth` carrying a random MAC.
struct ForgingAttacker {
    rng: StdRng,
    accepted: bool,
}

impl ForgingAttacker {
    fn forge(&mut self) -> DeviceAuth {
        let mut masked = vec![0u8; 8];
        self.rng.fill(masked.as_mut_slice());
        DeviceAuth {
            masked_response: masked,
            memory_hash: self.rng.gen(),
            clock_count: self.rng.gen_range(0..2000),
            device_nonce: self.rng.gen(),
            mac: self.rng.gen(),
        }
    }
}

impl Session for ForgingAttacker {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        let Some(frame) = incoming else {
            return Ok(SessionAction::Wait);
        };
        match as_auth_envelope(frame) {
            Some((env, MutualAuthMsg::Request(_))) => {
                let forged = self.forge();
                let frame = Envelope::pack(
                    ProtocolId::MutualAuth,
                    env.session,
                    1,
                    &MutualAuthMsg::Auth(forged),
                )
                .to_bytes();
                Ok(SessionAction::Send(frame))
            }
            // A confirmation means the verifier accepted a forgery.
            Some((_, MutualAuthMsg::Confirm(_))) => {
                self.accepted = true;
                Ok(SessionAction::Done)
            }
            _ => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.accepted
    }

    fn retransmits(&self) -> u32 {
        0
    }
}

/// Blind forgery campaign: the attacker speaks the wire protocol (it
/// knows the message format but not the secret) and feeds the verifier
/// random MACs until the verifier's retry budget runs out. Each attempt
/// is one full wire session, so the verifier actually sees
/// `1 + max_retries` distinct forgeries per attempt.
pub fn forgery_campaign(verifier: &mut Verifier, attempts: usize, seed: u64) -> CampaignOutcome {
    let mut attacker = ForgingAttacker {
        rng: StdRng::seed_from_u64(seed),
        accepted: false,
    };
    let mut successes = 0;
    for i in 0..attempts {
        attacker.accepted = false;
        let mut channel = Channel::new();
        let mut wire_verifier =
            WireVerifier::new(&mut *verifier, i as u64, SessionConfig::default());
        let report = drive_report(
            &mut channel,
            &mut wire_verifier,
            &mut attacker,
            DEFAULT_MAX_TICKS,
            &mut Tracer::disabled(),
        );
        if report.succeeded() || attacker.accepted {
            successes += 1;
        }
    }
    CampaignOutcome {
        attempts,
        successes,
    }
}

/// Desynchronization campaign: suppress every `VerifierConfirm` (Msg3)
/// on the wire so the verifier rotates its CRP while the device does
/// not, then let a clean session run. The attack succeeds only if the
/// suppressed session somehow completed *or* the follow-up session
/// fails — i.e. the device was locked out. The HSC-IoT previous-CRP
/// fallback makes both impossible.
///
/// # Errors
///
/// Reserved for infrastructure failures.
pub fn desync_suppression_campaign<P: Puf>(
    device: &mut Device<P>,
    verifier: &mut Verifier,
    attempts: usize,
) -> Result<CampaignOutcome, ProtocolError> {
    let mut successes = 0;
    for i in 0..attempts {
        let mut channel = FaultyChannel::new(FaultRates::none(), 0xDE5C ^ i as u64);
        channel.set_mitm(Box::new(|_from, frame| {
            if matches!(
                as_auth_envelope(frame),
                Some((_, MutualAuthMsg::Confirm(_)))
            ) {
                return MitmVerdict::Drop;
            }
            MitmVerdict::Forward
        }));
        let suppressed = run_wire_session(
            &mut channel,
            device,
            verifier,
            2 * i as u64,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        channel.clear_mitm();
        let recovered = run_wire_session(
            &mut channel,
            device,
            verifier,
            2 * i as u64 + 1,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        if suppressed.succeeded() || !recovered.succeeded() {
            successes += 1;
        }
    }
    Ok(CampaignOutcome {
        attempts,
        successes,
    })
}

/// Result of one admission-flood campaign against the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Flood sessions the adversary queued ahead of the victims.
    pub flood_sessions: usize,
    /// Victim authentication sessions queued behind the flood.
    pub victim_sessions: usize,
    /// Victims the gateway admitted before the tick budget ran out.
    pub victims_admitted: usize,
    /// Victims that completed their authentication.
    pub victims_completed: usize,
    /// Ticks the run actually consumed.
    pub ticks: u64,
}

/// Admission-flood campaign: a denial-of-service adversary who cannot
/// break any protocol but *can* open sessions floods the gateway's
/// accept queue with `flood` cheap key-exchange sessions (tagged as
/// bulk [`ClassId::INFERENCE`] traffic) queued ahead of the genuine
/// [`ClassId::CONTROL_AUTH`] authentication sessions, then lets the
/// gateway run under a bounded tick budget.
///
/// The outcome depends entirely on the admission policy: a FIFO
/// backlog serves the flood in arrival order, so a budget smaller than
/// the flood's drain time starves every victim (none admitted, none
/// completed); a class-aware policy alternates admissions between the
/// flood class and the victim class, so the victims complete no matter
/// how deep the flood is.
pub fn admission_flood_campaign<P: Puf>(
    victims: &mut [(Device<P>, Verifier)],
    flood: usize,
    max_ticks: u64,
    policy: Box<dyn AdmissionPolicy>,
) -> FloodOutcome {
    let cfg = SessionConfig::default();
    let mut flood_parties: Vec<(EkeParty, EkeParty)> = (0..flood as u64)
        .map(|i| {
            let crp = Response::from_u64(0xF100D ^ i, 63);
            (
                EkeParty::new(&crp, format!("flood-init-{i}").as_bytes()),
                EkeParty::new(&crp, format!("flood-resp-{i}").as_bytes()),
            )
        })
        .collect();

    let mut sessions: Vec<SessionPair<'_>> = Vec::with_capacity(flood + victims.len());
    for (i, (initiator, responder)) in flood_parties.iter_mut().enumerate() {
        let sid = i as u64 + 1;
        sessions.push(
            SessionPair::new(
                ProtocolId::Eke,
                sid,
                Box::new(WireEkeInitiator::new(initiator, sid, cfg)),
                Box::new(WireEkeResponder::new(responder, cfg)),
            )
            .with_class(ClassId::INFERENCE),
        );
    }
    for (i, (device, verifier)) in victims.iter_mut().enumerate() {
        let sid = (flood + i) as u64 + 1;
        sessions.push(
            SessionPair::new(
                ProtocolId::MutualAuth,
                sid,
                Box::new(WireVerifier::new(verifier, sid, cfg)),
                Box::new(WireDevice::new(device, cfg)),
            )
            .with_class(ClassId::CONTROL_AUTH),
        );
    }
    let victim_sessions = sessions.len() - flood;

    let mut link = Channel::new();
    let report = run_gateway(
        &mut link,
        sessions,
        GatewayConfig {
            max_active: 8,
            accept_queue: 8,
            max_ticks,
            policy,
        },
        &mut Tracer::disabled(),
        &Registry::new(),
    );
    let victim_outcomes = report
        .outcomes
        .iter()
        .filter(|o| o.class == ClassId::CONTROL_AUTH);
    FloodOutcome {
        flood_sessions: flood,
        victim_sessions,
        victims_admitted: victim_outcomes
            .clone()
            .filter(|o| o.admitted_at.is_some())
            .count(),
        victims_completed: victim_outcomes.filter(|o| o.result.is_ok()).count(),
        ticks: report.ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    fn pair(die: u64) -> (Device<PhotonicPuf>, Verifier) {
        let puf = PhotonicPuf::reference(DieId(die), die + 3);
        let (device, provisioned) =
            Device::provision(puf, vec![0x11; 512], b"attack-seed").unwrap();
        (device, Verifier::new(provisioned, b"attack-verifier"))
    }

    #[test]
    fn replays_never_succeed() {
        let (mut device, mut verifier) = pair(1);
        let outcome = replay_campaign(&mut device, &mut verifier, 20).unwrap();
        assert_eq!(outcome.successes, 0);
        assert_eq!(outcome.attempts, 20);
    }

    #[test]
    fn mitm_bit_flips_never_succeed() {
        let (mut device, mut verifier) = pair(2);
        let outcome = mitm_tamper_campaign(&mut device, &mut verifier, 15, 77).unwrap();
        assert_eq!(outcome.successes, 0);
    }

    #[test]
    fn blind_forgeries_never_succeed() {
        let (_, mut verifier) = pair(3);
        let outcome = forgery_campaign(&mut verifier, 200, 78);
        assert_eq!(outcome.successes, 0);
        assert!((outcome.rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn msg3_suppression_cannot_lock_out_the_device() {
        let (mut device, mut verifier) = pair(5);
        let outcome = desync_suppression_campaign(&mut device, &mut verifier, 6).unwrap();
        assert_eq!(outcome.successes, 0);
        // Every suppressed session forced one previous-CRP recovery.
        assert_eq!(verifier.desync_recoveries(), 6);
    }

    #[test]
    fn admission_flood_starves_fifo_but_not_dwrr() {
        use neuropuls_protocols::gateway::{DeficitWeightedRoundRobin, Fifo};
        let flood = 64;
        let fresh_victims = || -> Vec<(Device<PhotonicPuf>, Verifier)> {
            (0..4).map(|i| pair(0xF100 + i)).collect()
        };

        // Probe: how long does the whole mix take to drain under FIFO?
        let mut victims = fresh_victims();
        let probe = admission_flood_campaign(&mut victims, flood, u64::MAX, Box::new(Fifo::new()));
        assert_eq!(probe.victims_completed, 4, "unconstrained run completes");

        // A tick budget covering only a fraction of the flood: FIFO
        // serves the flood in arrival order and never reaches the
        // victims...
        let budget = probe.ticks / 4;
        let mut victims = fresh_victims();
        let starved = admission_flood_campaign(&mut victims, flood, budget, Box::new(Fifo::new()));
        assert_eq!(starved.victims_admitted, 0, "{starved:?}");
        assert_eq!(starved.victims_completed, 0, "{starved:?}");

        // ...while equal-weight DWRR alternates the victim class with
        // the flood class and completes every authentication under the
        // same budget and the same adversary.
        let mut victims = fresh_victims();
        let protected = admission_flood_campaign(
            &mut victims,
            flood,
            budget,
            Box::new(
                DeficitWeightedRoundRobin::new()
                    .with_weight(ClassId::INFERENCE, 1)
                    .with_weight(ClassId::CONTROL_AUTH, 1),
            ),
        );
        assert_eq!(protected.victims_completed, 4, "{protected:?}");
    }

    #[test]
    fn genuine_sessions_still_work_after_attacks() {
        let (mut device, mut verifier) = pair(4);
        let _ = replay_campaign(&mut device, &mut verifier, 5).unwrap();
        let _ = mitm_tamper_campaign(&mut device, &mut verifier, 5, 79).unwrap();
        let _ = forgery_campaign(&mut verifier, 5, 80);
        let _ = desync_suppression_campaign(&mut device, &mut verifier, 2).unwrap();
        neuropuls_protocols::mutual_auth::run_session(&mut device, &mut verifier).unwrap();
    }
}
