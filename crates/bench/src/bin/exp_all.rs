//! Regenerates every experiment in sequence.
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (a, _) = experiments::fig3::run_ro(scale); print!("{a}");
    let (b, _) = experiments::fig3::run_photonic(scale); print!("{b}");
    let (c, _) = experiments::puf_quality::run(scale); print!("{c}");
    let (d, _) = experiments::table1::run(scale); print!("{d}");
    let (e, _) = experiments::auth::run(scale); print!("{e}");
    let (f, _, _) = experiments::attestation::run(scale); print!("{f}");
    let (g, _) = experiments::ml_attack::run(scale); print!("{g}");
    let (h, _) = experiments::side_channel::run(scale); print!("{h}");
    let (i, _, _) = experiments::remanence::run(scale); print!("{i}");
    let (j, _) = experiments::system::run(scale); print!("{j}");
    let (k, _, _, _) = experiments::keygen::run(scale); print!("{k}");
    let (l, _, _, _) = experiments::environment::run(scale); print!("{l}");
    let (m, _) = experiments::eke::run(scale); print!("{m}");
    let (n, _) = experiments::tamper::run(scale); print!("{n}");
    let (o, _) = experiments::analog::run(scale); print!("{o}");
    let (p, _) = experiments::aging::run(scale); print!("{p}");
    let (q, _) = experiments::trng::run(scale); print!("{q}");
    let (r, _) = experiments::fleet::run(scale); print!("{r}");
}
