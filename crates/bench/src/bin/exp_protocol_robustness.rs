//! Regenerates the protocol-robustness sweep (E18).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, _) = experiments::protocol_robustness::run(Scale::from_args());
    print!("{out}");
}
