//! Machine-learning modeling attacks — §IV.
//!
//! The classic Rührmair et al. \[28\] attack: harvest CRPs, map challenges
//! to a feature vector, fit a linear model, predict unseen responses. An
//! arbiter PUF is `sign(w·Φ(c))` — exactly a linear classifier in the
//! parity features — so logistic regression breaks it with a few hundred
//! CRPs. The photonic PUF's response bits are comparisons of
//! *interfered, square-law-detected, memory-mixed* intensities: no known
//! feature map of modest size linearizes them, and the same attack stays
//! near coin-flipping (experiment E6).

use neuropuls_puf::arbiter::ArbiterPuf;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::traits::{Puf, PufError};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// A binary logistic-regression model trained with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Creates a zero-initialized model over `features` inputs.
    pub fn new(features: usize) -> Self {
        LogisticRegression {
            weights: vec![0.0; features],
            bias: 0.0,
        }
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn logit(&self, x: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(x.iter())
                .map(|(w, v)| w * v)
                .sum::<f64>()
    }

    /// Predicted probability of class 1.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.logit(x)).exp())
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> u8 {
        u8::from(self.predict_proba(x) > 0.5)
    }

    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or feature widths are
    /// inconsistent.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[u8], epochs: usize, learning_rate: f64) {
        assert_eq!(xs.len(), ys.len(), "feature/label count mismatch");
        let n = xs.len().max(1) as f64;
        for epoch in 0..epochs {
            // Simple learning-rate decay stabilizes late epochs.
            let lr = learning_rate / (1.0 + epoch as f64 * 0.01);
            for (x, &y) in xs.iter().zip(ys.iter()) {
                assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
                let error = self.predict_proba(x) - y as f64;
                for (w, &v) in self.weights.iter_mut().zip(x.iter()) {
                    *w -= lr * (error * v + *w * 1e-5 / n);
                }
                self.bias -= lr * error;
            }
        }
    }

    /// Accuracy on a labelled set.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[u8]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }
}

/// Outcome of one modeling attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// CRPs used for training.
    pub training_crps: usize,
    /// Prediction accuracy on held-out challenges (0.5 = coin flip,
    /// 1.0 = fully modelled).
    pub accuracy: f64,
}

/// Harvests `count` CRPs from any single-output-bit PUF (the target bit
/// is `bit_index` of the response).
///
/// # Errors
///
/// Propagates PUF errors.
pub fn harvest_crps<P: Puf>(
    puf: &mut P,
    count: usize,
    bit_index: usize,
    rng: &mut StdRng,
) -> Result<(Vec<Challenge>, Vec<u8>), PufError> {
    let mut challenges = Vec::with_capacity(count);
    let mut bits = Vec::with_capacity(count);
    for _ in 0..count {
        let c = Challenge::random(puf.challenge_bits(), rng);
        let r = puf.respond(&c)?;
        bits.push(r.bits()[bit_index.min(r.len() - 1)]);
        challenges.push(c);
    }
    Ok((challenges, bits))
}

/// The arbiter parity feature map (what a knowledgeable attacker uses).
pub fn parity_features(challenge: &Challenge) -> Vec<f64> {
    ArbiterPuf::features(challenge)
}

/// The naive ±1 feature map (used against PUFs with no known linear
/// structure).
pub fn raw_features(challenge: &Challenge) -> Vec<f64> {
    challenge
        .bits()
        .iter()
        .map(|&b| 1.0 - 2.0 * b as f64)
        .collect()
}

/// Runs a full modeling attack: harvest, split, train, evaluate.
///
/// # Errors
///
/// Propagates PUF errors.
pub fn model_attack<P: Puf>(
    puf: &mut P,
    feature_map: impl Fn(&Challenge) -> Vec<f64>,
    training_crps: usize,
    test_crps: usize,
    bit_index: usize,
    epochs: usize,
    seed: u64,
) -> Result<AttackOutcome, PufError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (train_c, train_y) = harvest_crps(puf, training_crps, bit_index, &mut rng)?;
    let (test_c, test_y) = harvest_crps(puf, test_crps, bit_index, &mut rng)?;

    let train_x: Vec<Vec<f64>> = train_c.iter().map(&feature_map).collect();
    let test_x: Vec<Vec<f64>> = test_c.iter().map(&feature_map).collect();

    let mut model = LogisticRegression::new(train_x[0].len());
    model.fit(&train_x, &train_y, epochs, 0.05);
    Ok(AttackOutcome {
        training_crps,
        accuracy: model.accuracy(&test_x, &test_y),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::arbiter::XorArbiterPuf;
    use neuropuls_puf::photonic::PhotonicPuf;
    use neuropuls_rt::Rng;

    #[test]
    fn logistic_regression_learns_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let true_w = [1.5, -2.0, 0.7, 0.0, 3.0];
        let xs: Vec<Vec<f64>> = (0..500)
            .map(|_| (0..5).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
            .collect();
        let ys: Vec<u8> = xs
            .iter()
            .map(|x| {
                let dot: f64 = x.iter().zip(true_w.iter()).map(|(a, b)| a * b).sum();
                u8::from(dot > 0.0)
            })
            .collect();
        let mut model = LogisticRegression::new(5);
        model.fit(&xs, &ys, 50, 0.1);
        assert!(model.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn arbiter_puf_is_broken_with_parity_features() {
        let mut puf = ArbiterPuf::fabricate(DieId(1), 64, 3);
        let outcome = model_attack(&mut puf, parity_features, 2000, 500, 0, 30, 42).unwrap();
        assert!(
            outcome.accuracy > 0.9,
            "arbiter should be modelable: {}",
            outcome.accuracy
        );
    }

    #[test]
    fn photonic_puf_resists_the_same_attack() {
        let mut puf = PhotonicPuf::reference(DieId(2), 5);
        let outcome = model_attack(&mut puf, raw_features, 400, 150, 0, 30, 43).unwrap();
        assert!(
            outcome.accuracy < 0.75,
            "photonic PUF modelled too easily: {}",
            outcome.accuracy
        );
    }

    #[test]
    fn xor_arbiter_harder_than_single() {
        let mut single = ArbiterPuf::fabricate(DieId(3), 64, 3);
        let mut xored = XorArbiterPuf::fabricate(DieId(3), 64, 4, 3);
        let crps = 1500;
        let acc_single = model_attack(&mut single, parity_features, crps, 400, 0, 25, 44)
            .unwrap()
            .accuracy;
        let acc_xor = model_attack(&mut xored, parity_features, crps, 400, 0, 25, 44)
            .unwrap()
            .accuracy;
        assert!(
            acc_xor < acc_single,
            "xor {acc_xor} should be below single {acc_single}"
        );
    }

    #[test]
    fn more_crps_help_against_arbiter() {
        let mut puf = ArbiterPuf::fabricate(DieId(4), 64, 3);
        let small = model_attack(&mut puf, parity_features, 100, 400, 0, 30, 45)
            .unwrap()
            .accuracy;
        let large = model_attack(&mut puf, parity_features, 3000, 400, 0, 30, 45)
            .unwrap()
            .accuracy;
        assert!(large > small, "small {small} large {large}");
    }

    #[test]
    fn harvest_respects_count_and_width() {
        let mut puf = ArbiterPuf::fabricate(DieId(5), 32, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let (cs, ys) = harvest_crps(&mut puf, 50, 0, &mut rng).unwrap();
        assert_eq!(cs.len(), 50);
        assert_eq!(ys.len(), 50);
        assert!(cs.iter().all(|c| c.len() == 32));
    }

    #[test]
    fn feature_maps_have_expected_widths() {
        let c = Challenge::from_u64(0b1010, 16);
        assert_eq!(parity_features(&c).len(), 17);
        assert_eq!(raw_features(&c).len(), 16);
    }
}
