//! Quickstart: manufacture a device, authenticate it, and run one
//! encrypted inference — the full Fig. 1 workflow in ~40 lines.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use neuropuls::accel::config::NetworkConfig;
use neuropuls::accel::engine::PhotonicEngine;
use neuropuls::manufacture::{manufacture, ManufactureConfig};
use neuropuls::protocols::mutual_auth::{run_session, Device, Verifier};
use neuropuls::protocols::secure_nn::{NetworkOwner, SecureAccelerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Manufacturing: fabricate the PIC, enroll the weak-PUF key.
    let lot = manufacture(&ManufactureConfig::default())?;
    println!("manufactured {}", lot.device.die());
    println!(
        "device key enrolled ({} bytes helper data)",
        lot.enrolled_key.record.helper.offset.len() / 8
    );

    // 2. Mutual authentication (Fig. 4): one CRP as the rotating secret.
    let (mut device, provisioned) = Device::provision(lot.device, vec![0xAB; 1024], b"quickstart")?;
    let mut verifier = Verifier::new(provisioned, b"quickstart-verifier");
    for session in 1..=3 {
        run_session(&mut device, &mut verifier)?;
        println!("mutual authentication session {session}: ok (CRP rotated)");
    }

    // 3. Secure NN service (Table I): plaintext never crosses the API.
    let key = lot.enrolled_key.key;
    let mut owner = NetworkOwner::new(key, b"owner-rng");
    let mut accel = SecureAccelerator::new(PhotonicEngine::reference(7), key);

    let network = NetworkConfig::mlp(&[4, 4, 2], |l, o, i| ((l + o + i) % 3) as f32 * 0.5 - 0.5);
    accel.load_network(&owner.cipher_network(&network))?;
    println!("encrypted network loaded ({} layers)", network.layers.len());

    let ciphered_out = accel.execute_network(&owner.cipher_input(&[1.0, 0.5, -0.5, 0.25]))?;
    let output = owner.decipher_output(&ciphered_out)?;
    println!("encrypted inference output: {output:.4?}");
    println!(
        "accelerator stats: {} MACs, {:.1} pJ",
        accel.stats().macs,
        accel.stats().energy_pj
    );
    Ok(())
}
