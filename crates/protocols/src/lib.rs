//! The NEUROPULS security services (§III and §IV of the paper), built
//! on the PUF primitives and the from-scratch crypto substrate:
//!
//! * [`mutual_auth`] — HSC-IoT-style mutual authentication with a single
//!   rotating CRP (Fig. 4);
//! * [`attestation`] — pPUF-chained random-walk software attestation
//!   with temporal constraints (§III-B);
//! * [`secure_nn`] — the Table I hardware API: `load_network` /
//!   `execute_network` over ciphered payloads, plaintext never exposed
//!   to software (§III-C);
//! * [`eke`] — EKE-based authentication and key agreement treating the
//!   CRP as a low-entropy shared secret, with forward secrecy (§IV);
//! * [`keys`] — weak-PUF key provisioning through the fuzzy extractor
//!   (Fig. 1's key-generation service);
//! * [`wire`] — versioned binary encodings and poll-style session state
//!   machines so every protocol runs over a real byte channel;
//! * [`transport`] — the channel abstraction, including a seeded
//!   adversarial [`transport::FaultyChannel`] with a MITM hook;
//! * [`gateway`] — a deterministic session multiplexer running many
//!   concurrent wire sessions (all four protocols mixed) over one
//!   shared transport, with bounded admission and fair scheduling.
//!
//! # Example — one mutual-authentication session
//!
//! ```
//! use neuropuls_photonic::process::DieId;
//! use neuropuls_protocols::mutual_auth::{run_session, Device, Verifier};
//! use neuropuls_puf::photonic::PhotonicPuf;
//!
//! # fn main() -> Result<(), neuropuls_protocols::ProtocolError> {
//! let puf = PhotonicPuf::reference(DieId(1), 7);
//! let (mut device, provisioned) = Device::provision(puf, vec![0u8; 256], b"seed")?;
//! let mut verifier = Verifier::new(provisioned, b"verifier-rng");
//! run_session(&mut device, &mut verifier)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod attestation;
pub mod eke;
pub mod error;
pub mod gateway;
pub mod keys;
pub mod mutual_auth;
pub mod secure_nn;
pub mod transport;
pub mod wire;

pub use error::ProtocolError;
