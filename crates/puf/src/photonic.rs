//! The photonic strong PUF (pPUF) of Fig. 2.
//!
//! Evaluation pipeline, mirroring the paper's schematic end to end:
//!
//! 1. a telecom laser emits a CW carrier (with RIN and a random optical
//!    phase per interrogation);
//! 2. the ASIC drives a 25 Gb/s Mach–Zehnder modulator with the challenge
//!    bit string;
//! 3. the modulated burst traverses the passive scrambler mesh (couplers,
//!    process-random phases, microrings with temporal memory);
//! 4. a photodiode array detects the per-port intensity (square-law — the
//!    nonlinearity), TIAs amplify and ADCs quantize;
//! 5. the ASIC derives response bits by *comparing* photocurrent samples
//!    at a public, fixed set of (port, time) pairs, which cancels
//!    common-mode laser power and leaves only the die-unique interference
//!    pattern.
//!
//! The comparison margins are also exposed ([`PhotonicPuf::respond_with_margins`]):
//! they are the "threshold dependent on the amplitude of the photocurrent
//! read at the PD" that §II-B adapts the Vinagrero filtering method to.

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_photonic::circuit::{MeshSpec, ScramblerMesh};
use neuropuls_photonic::detector::ReceiveChain;
use neuropuls_photonic::laser::Laser;
use neuropuls_photonic::modulator::MachZehnderModulator;
use neuropuls_photonic::process::{DieId, DieSampler, ProcessVariation};
use neuropuls_photonic::Environment;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::trace::CountingRng;
use neuropuls_rt::SeedableRng;

/// Construction parameters of a photonic PUF instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhotonicPufConfig {
    /// The passive architecture.
    pub mesh: MeshSpec,
    /// Challenge length in bits (the modulated burst).
    pub challenge_bits: usize,
    /// Response length in bits.
    pub response_bits: usize,
    /// Dark samples appended after the burst so ring tails are captured.
    pub flush_samples: usize,
    /// Fixed electronics overhead added to the optical latency (ns).
    pub electronics_latency_ns: f64,
}

impl PhotonicPufConfig {
    /// The reference 64-in/64-out configuration used across the
    /// experiments.
    pub fn reference() -> Self {
        PhotonicPufConfig {
            mesh: MeshSpec::reference(),
            challenge_bits: 64,
            response_bits: 64,
            flush_samples: 32,
            electronics_latency_ns: 2.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.mesh.validate()?;
        if self.challenge_bits == 0 || self.response_bits == 0 {
            return Err("challenge/response widths must be positive".into());
        }
        Ok(())
    }
}

/// One comparison site: response bit k is `1` when the ADC code at `a`
/// exceeds the code at `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ComparePair {
    a: (usize, usize), // (port, time)
    b: (usize, usize),
}

/// The photonic strong PUF.
#[derive(Debug, Clone)]
pub struct PhotonicPuf {
    die: DieId,
    config: PhotonicPufConfig,
    laser: Laser,
    modulator: MachZehnderModulator,
    mesh: ScramblerMesh,
    chains: Vec<ReceiveChain>,
    pairs: Vec<ComparePair>,
    env: Environment,
    rng: CountingRng<StdRng>,
    /// Noisy interrogations performed ([`Self::respond_with_margins`]
    /// and [`Self::adc_trace`] completions).
    evaluations: u64,
    /// Mixed into the aging RNG seed and advanced on every [`Self::age_with_rate`]
    /// call, so successive aging steps draw *independent* random-walk
    /// increments (reusing one seed would replay the same drift vector
    /// each step, turning the walk into a directional ramp).
    aging_epoch: u64,
}

impl PhotonicPuf {
    /// "Fabricates" the PUF for `die` under the given process corner.
    /// `noise_seed` seeds the measurement-noise stream (reseed to model
    /// independent interrogation campaigns on the same physical chip).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid.
    pub fn fabricate(
        die: DieId,
        config: PhotonicPufConfig,
        variation: ProcessVariation,
        noise_seed: u64,
    ) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid photonic PUF config: {msg}");
        }
        let mut sampler = DieSampler::new(die, variation);
        let modulator = MachZehnderModulator::sampled(&mut sampler);
        let mesh = ScramblerMesh::build(config.mesh, &mut sampler);
        let chains = vec![ReceiveChain::new(); config.mesh.channels];
        let pairs = Self::comparison_plan(&config);
        PhotonicPuf {
            die,
            config,
            laser: Laser::new(),
            modulator,
            mesh,
            chains,
            pairs,
            env: Environment::nominal(),
            rng: CountingRng::new(StdRng::seed_from_u64(noise_seed ^ die.0.rotate_left(17))),
            evaluations: 0,
            aging_epoch: 0,
        }
    }

    /// Reference-configuration constructor.
    pub fn reference(die: DieId, noise_seed: u64) -> Self {
        Self::fabricate(
            die,
            PhotonicPufConfig::reference(),
            ProcessVariation::typical_soi(),
            noise_seed,
        )
    }

    /// The die this instance was fabricated as.
    pub fn die(&self) -> DieId {
        self.die
    }

    /// The configuration.
    pub fn config(&self) -> &PhotonicPufConfig {
        &self.config
    }

    /// The comparison plan is *public* (part of the device datasheet):
    /// deterministic from the configuration only, identical for every
    /// die. Security rests in the physical mesh, not in the plan.
    fn comparison_plan(config: &PhotonicPufConfig) -> Vec<ComparePair> {
        let ports = config.mesh.channels;
        let samples = config.challenge_bits + config.flush_samples;
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = state
                .wrapping_mul(0xD129_0298_5E2F_8735)
                .wrapping_add(0x91E1_0DA5_C79E_7B1D);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            z
        };
        // Two comparison sites per response bit: the bit is the XOR of
        // the two comparisons. XOR-folding squares away the per-site,
        // per-die bias (each site's bias ε becomes ε² after folding),
        // which is what lets concatenated responses pass the NIST
        // frequency tests (experiment E2).
        let mut pairs = Vec::with_capacity(config.response_bits * 2);
        while pairs.len() < config.response_bits * 2 {
            // Compare two *ports at the same instant*: the differential
            // port pattern is set by the die's interference (common-mode
            // modulation amplitude cancels), which is what carries the
            // physical secret. Cross-time comparisons would instead be
            // dominated by the challenge's own 1/0 energy pattern — the
            // same on every die. Skip sample 0 (light not yet through)
            // and cap times shortly after the burst: deep into the flush
            // the resonator tails decay below one ADC LSB and every
            // comparison would tie at dark level — a dead, die-
            // independent bit.
            let lit = (config.challenge_bits + 8).min(samples);
            let t = 1 + (next() % (lit as u64 - 1)) as usize;
            let _ = samples;
            let pa = (next() % ports as u64) as usize;
            let pb = (next() % ports as u64) as usize;
            if pa != pb {
                pairs.push(ComparePair {
                    a: (pa, t),
                    b: (pb, t),
                });
            }
        }
        pairs
    }

    /// Full interrogation returning response bits *and* the analog
    /// comparison margins in ADC codes (positive = confident 1, negative
    /// = confident 0). The margins feed the photocurrent-threshold
    /// filtering of §II-B.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::ChallengeLength`] on challenge width mismatch.
    pub fn respond_with_margins(
        &mut self,
        challenge: &Challenge,
    ) -> Result<(Response, Vec<f64>), PufError> {
        if challenge.len() != self.config.challenge_bits {
            return Err(PufError::ChallengeLength {
                expected: self.config.challenge_bits,
                actual: challenge.len(),
            });
        }
        let carrier = self.laser.noisy_carrier(&self.env, &mut self.rng);
        let waveform = self
            .modulator
            .modulate(carrier, challenge.bits(), &self.env);
        let outputs = self
            .mesh
            .propagate(&waveform, self.config.flush_samples, &self.env);

        // Detect every port's time series.
        let samples = self.config.challenge_bits + self.config.flush_samples;
        let mut codes = vec![vec![0u32; samples]; outputs.len()];
        for (port, fields) in outputs.iter().enumerate() {
            let chain = &mut self.chains[port];
            chain.reset();
            for (t, &field) in fields.iter().enumerate() {
                codes[port][t] = chain.sample(field, &self.env, &mut self.rng);
            }
        }

        // AC-couple each port (subtract its burst mean) before the
        // differential comparison. DC blocking is standard in high-speed
        // receivers, and it is security-critical here: without it the
        // comparison is dominated by the die-fixed splitting pedestal,
        // making response bits nearly challenge-independent (and thus
        // trivially predictable by a modeling attacker).
        let means: Vec<f64> = codes
            .iter()
            .map(|port| port.iter().map(|&c| c as f64).sum::<f64>() / port.len() as f64)
            .collect();
        let mut bits = Vec::with_capacity(self.config.response_bits);
        let mut margins = Vec::with_capacity(self.config.response_bits);
        for site in self.pairs.chunks_exact(2) {
            let diff = |pair: &ComparePair| {
                codes[pair.a.0][pair.a.1] as f64
                    - means[pair.a.0]
                    - (codes[pair.b.0][pair.b.1] as f64 - means[pair.b.0])
            };
            let d0 = diff(&site[0]);
            let d1 = diff(&site[1]);
            let bit = u8::from(d0 > 0.0) ^ u8::from(d1 > 0.0);
            bits.push(bit);
            // The folded bit flips when the *weaker* comparison flips:
            // report the min magnitude, signed by the bit value, so
            // "positive margin ⟺ bit 1" still holds for the filtering
            // layer.
            let magnitude = d0.abs().min(d1.abs());
            margins.push(if bit == 1 { magnitude } else { -magnitude });
        }
        self.evaluations += 1;
        Ok((Response::from_bits(bits), margins))
    }

    /// Raw per-port, per-time ADC codes for a challenge — the interface
    /// the side-channel and laser-tampering attack models probe.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::ChallengeLength`] on challenge width mismatch.
    pub fn adc_trace(&mut self, challenge: &Challenge) -> Result<Vec<Vec<u32>>, PufError> {
        if challenge.len() != self.config.challenge_bits {
            return Err(PufError::ChallengeLength {
                expected: self.config.challenge_bits,
                actual: challenge.len(),
            });
        }
        let carrier = self.laser.noisy_carrier(&self.env, &mut self.rng);
        let waveform = self
            .modulator
            .modulate(carrier, challenge.bits(), &self.env);
        let outputs = self
            .mesh
            .propagate(&waveform, self.config.flush_samples, &self.env);
        let mut codes = Vec::with_capacity(outputs.len());
        for (port, fields) in outputs.iter().enumerate() {
            let chain = &mut self.chains[port];
            chain.reset();
            codes.push(
                fields
                    .iter()
                    .map(|&f| chain.sample(f, &self.env, &mut self.rng))
                    .collect(),
            );
        }
        self.evaluations += 1;
        Ok(codes)
    }

    /// Noisy interrogations performed so far (successful
    /// [`Self::respond_with_margins`] / [`Self::adc_trace`] calls;
    /// noise-free evaluations are not counted).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Cumulative draws taken from the measurement-noise stream. Divided
    /// by [`Self::evaluations`] this is the per-interrogation noise cost
    /// of the receiver model — a cheap instrumentation hook that leaves
    /// the underlying RNG stream untouched.
    pub fn noise_draws(&self) -> u64 {
        self.rng.draws()
    }

    /// Noise-free deterministic evaluation — the "ideally reliable
    /// strong PUF" abstraction the attestation protocol of §III-B
    /// assumes on both the Device and (as a model) the Verifier. Uses
    /// the ideal photodiode response and a fixed carrier, so the same
    /// die always returns the identical response.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::ChallengeLength`] on challenge width
    /// mismatch.
    pub fn respond_deterministic(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        if challenge.len() != self.config.challenge_bits {
            return Err(PufError::ChallengeLength {
                expected: self.config.challenge_bits,
                actual: challenge.len(),
            });
        }
        let carrier = self.laser.carrier(&self.env);
        let waveform = self
            .modulator
            .modulate(carrier, challenge.bits(), &self.env);
        let outputs = self
            .mesh
            .propagate(&waveform, self.config.flush_samples, &self.env);
        let samples = self.config.challenge_bits + self.config.flush_samples;
        let mut currents = vec![vec![0.0f64; samples]; outputs.len()];
        for (port, fields) in outputs.iter().enumerate() {
            for (t, &field) in fields.iter().enumerate() {
                currents[port][t] = self.chains[port].pd.detect_ideal(field);
            }
        }
        let means: Vec<f64> = currents
            .iter()
            .map(|port| port.iter().sum::<f64>() / port.len() as f64)
            .collect();
        let bits: Vec<u8> = self
            .pairs
            .chunks_exact(2)
            .map(|site| {
                let diff = |pair: &ComparePair| {
                    currents[pair.a.0][pair.a.1]
                        - means[pair.a.0]
                        - (currents[pair.b.0][pair.b.1] - means[pair.b.0])
                };
                u8::from(diff(&site[0]) > 0.0) ^ u8::from(diff(&site[1]) > 0.0)
            })
            .collect();
        Ok(Response::from_bits(bits))
    }

    /// Ages the device by `years` of field deployment: phase elements
    /// drift as a random walk. The default drift rate (0.005 rad/√year)
    /// models a well-passivated SOI process — slow enough that a yearly
    /// re-enrollment keeps single-read reliability high, while the
    /// against-day-0 reliability decays visibly over a deployment
    /// lifetime; experiment E15 sweeps it.
    pub fn age(&mut self, years: f64) {
        self.age_with_rate(years, 0.005);
    }

    /// Ages with an explicit drift rate (rad per √year).
    ///
    /// Each call draws a fresh, independent set of drift increments:
    /// deterministic for a given die and call sequence, but never
    /// repeating across calls. Aging in N one-year steps therefore
    /// accumulates as a true random walk (σ·√N), matching a single
    /// N-year call in distribution.
    pub fn age_with_rate(&mut self, years: f64, sigma_rad_per_sqrt_year: f64) {
        self.aging_epoch = self.aging_epoch.wrapping_add(1);
        let mut aging_rng = StdRng::seed_from_u64(
            self.die.0
                ^ self.aging_epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ years.to_bits().rotate_left(13),
        );
        self.mesh
            .apply_aging(years, sigma_rad_per_sqrt_year, &mut aging_rng);
    }

    /// Duration for which the response physically exists inside the PIC
    /// (§IV: "below 100 ns").
    pub fn response_window_ns(&self) -> f64 {
        self.modulator
            .burst_duration_ns(self.config.challenge_bits + self.config.flush_samples)
    }
}

impl Puf for PhotonicPuf {
    fn challenge_bits(&self) -> usize {
        self.config.challenge_bits
    }

    fn response_bits(&self) -> usize {
        self.config.response_bits
    }

    fn kind(&self) -> PufKind {
        PufKind::Strong
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        self.respond_with_margins(challenge).map(|(r, _)| r)
    }

    fn set_environment(&mut self, env: Environment) {
        self.env = env;
    }

    fn environment(&self) -> Environment {
        self.env
    }

    fn latency_ns(&self) -> f64 {
        self.response_window_ns() + self.config.electronics_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::Rng;

    fn puf(die: u64) -> PhotonicPuf {
        PhotonicPuf::reference(DieId(die), 1000 + die)
    }

    fn challenge(seed: u64) -> Challenge {
        let mut rng = StdRng::seed_from_u64(seed);
        Challenge::random(64, &mut rng)
    }

    #[test]
    fn instrumentation_counts_evaluations_and_noise_draws() {
        let mut p = puf(70);
        assert_eq!(p.evaluations(), 0);
        assert_eq!(p.noise_draws(), 0);
        p.respond_with_margins(&challenge(1)).unwrap();
        let after_one = p.noise_draws();
        assert_eq!(p.evaluations(), 1);
        assert!(after_one > 0, "a noisy interrogation must draw noise");
        p.respond_with_margins(&challenge(2)).unwrap();
        assert_eq!(p.evaluations(), 2);
        assert_eq!(
            p.noise_draws(),
            2 * after_one,
            "the per-evaluation draw count is fixed by the receiver model"
        );
        // A rejected challenge consumes neither counter.
        let narrow = Challenge::random(8, &mut StdRng::seed_from_u64(3));
        assert!(p.respond_with_margins(&narrow).is_err());
        assert_eq!(p.evaluations(), 2);
        assert_eq!(p.noise_draws(), 2 * after_one);
    }

    #[test]
    fn response_has_configured_width() {
        let mut p = puf(1);
        let r = p.respond(&challenge(1)).unwrap();
        assert_eq!(r.len(), 64);
    }

    #[test]
    fn rejects_wrong_challenge_width() {
        let mut p = puf(2);
        let bad = Challenge::from_u64(1, 32);
        assert!(matches!(
            p.respond(&bad),
            Err(PufError::ChallengeLength {
                expected: 64,
                actual: 32
            })
        ));
    }

    #[test]
    fn same_die_same_challenge_is_mostly_stable() {
        let mut p = puf(3);
        let c = challenge(3);
        let golden = p.respond_golden(&c, 9).unwrap();
        let mut total_fhd = 0.0;
        for _ in 0..10 {
            total_fhd += golden.fhd(&p.respond(&c).unwrap());
        }
        let mean = total_fhd / 10.0;
        assert!(mean < 0.12, "intra-die FHD too high: {mean}");
    }

    #[test]
    fn different_dies_disagree_heavily() {
        let c = challenge(4);
        let mut a = puf(4);
        let mut b = puf(5);
        let ra = a.respond_golden(&c, 5).unwrap();
        let rb = b.respond_golden(&c, 5).unwrap();
        let fhd = ra.fhd(&rb);
        assert!(fhd > 0.25, "inter-die FHD too low: {fhd}");
    }

    #[test]
    fn different_challenges_give_different_responses() {
        let mut p = puf(6);
        let r1 = p.respond_golden(&challenge(10), 5).unwrap();
        let r2 = p.respond_golden(&challenge(11), 5).unwrap();
        assert!(r1.fhd(&r2) > 0.1, "challenge sensitivity too low");
    }

    #[test]
    fn margins_align_with_bits() {
        let mut p = puf(7);
        let (r, margins) = p.respond_with_margins(&challenge(7)).unwrap();
        assert_eq!(margins.len(), r.len());
        for (bit, margin) in r.bits().iter().zip(&margins) {
            if *margin > 0.0 {
                assert_eq!(*bit, 1);
            } else {
                assert_eq!(*bit, 0);
            }
        }
    }

    #[test]
    fn response_window_is_under_100ns() {
        let p = puf(8);
        assert!(
            p.response_window_ns() < 100.0,
            "window {}",
            p.response_window_ns()
        );
    }

    #[test]
    fn throughput_exceeds_5gbps() {
        let p = puf(9);
        assert!(
            p.throughput_gbps() >= 5.0,
            "throughput {} Gb/s",
            p.throughput_gbps()
        );
    }

    #[test]
    fn adc_trace_shape() {
        let mut p = puf(10);
        let trace = p.adc_trace(&challenge(10)).unwrap();
        assert_eq!(trace.len(), 8);
        assert_eq!(trace[0].len(), 96);
    }

    #[test]
    fn responses_are_roughly_uniform() {
        let mut p = puf(11);
        let mut rng = StdRng::seed_from_u64(99);
        let mut ones = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let c = Challenge::random(64, &mut rng);
            let r = p.respond(&c).unwrap();
            ones += r.weight();
            total += r.len();
        }
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.12, "uniformity {frac}");
    }

    #[test]
    fn temperature_degrades_reliability_against_nominal_enrollment() {
        // Silicon's thermo-optic coefficient is large: a modest +10 K
        // already flips a measurable fraction of bits, and extreme
        // excursions fully decorrelate the response (which is why §II-B
        // pairs the PUF with a temperature sensor and controller —
        // experiment E11 shows the compensation restoring reliability).
        let mut p = puf(12);
        let c = challenge(12);
        let golden = p.respond_golden(&c, 9).unwrap();
        p.set_environment(Environment::at_temperature(35.0));
        let warm = p.respond_golden(&c, 9).unwrap();
        let drift = golden.fhd(&warm);
        assert!(drift > 0.01, "temperature drift invisible: {drift}");
        assert!(drift < 0.45, "10 K should not fully decorrelate: {drift}");
        p.set_environment(Environment::at_temperature(85.0));
        let hot = p.respond_golden(&c, 9).unwrap();
        assert!(
            golden.fhd(&hot) > drift,
            "larger excursion must drift further"
        );
    }

    #[test]
    fn comparison_plan_is_deterministic_and_public() {
        let a = PhotonicPuf::comparison_plan(&PhotonicPufConfig::reference());
        let b = PhotonicPuf::comparison_plan(&PhotonicPufConfig::reference());
        assert_eq!(a, b);
    }

    #[test]
    fn noise_seed_changes_noise_not_identity() {
        let c = challenge(13);
        let mut a = PhotonicPuf::reference(DieId(77), 1);
        let mut b = PhotonicPuf::reference(DieId(77), 2);
        let ra = a.respond_golden(&c, 9).unwrap();
        let rb = b.respond_golden(&c, 9).unwrap();
        assert!(ra.fhd(&rb) < 0.12, "same die diverged: {}", ra.fhd(&rb));
    }

    #[test]
    fn respond_is_somewhat_noisy() {
        // The PUF must be *noisy* (otherwise ECC and filtering would be
        // pointless): across many single reads, at least a few bits flip.
        let mut p = puf(14);
        let c = challenge(14);
        let first = p.respond(&c).unwrap();
        let mut any_flip = false;
        for _ in 0..20 {
            if p.respond(&c).unwrap() != first {
                any_flip = true;
                break;
            }
        }
        assert!(
            any_flip,
            "responses are perfectly deterministic — noise model inactive"
        );
    }

    #[test]
    fn challenge_sensitivity_is_time_local() {
        // Flipping one challenge bit perturbs the comparisons within the
        // resonator memory horizon after that bit — a handful of response
        // bits, not zero (the mesh has memory) and not half (the
        // perturbation decays). Both extremes would indicate a modeling
        // bug.
        let mut p = puf(15);
        let c1 = challenge(15);
        let mut bits = c1.bits().to_vec();
        bits[0] ^= 1;
        let c2 = Challenge::from_bits(bits);
        let r1 = p.respond_golden(&c1, 7).unwrap();
        let r2 = p.respond_golden(&c2, 7).unwrap();
        let fhd = r1.fhd(&r2);
        assert!(fhd > 0.015, "single-bit sensitivity too weak: {fhd}");
        assert!(
            fhd < 0.5,
            "single-bit flip should not rewrite the response: {fhd}"
        );
    }

    #[test]
    fn random_challenges_never_panic() {
        let mut p = puf(16);
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..10 {
            let c = Challenge::from_bits((0..64).map(|_| rng.gen::<u8>() & 1));
            let _ = p.respond(&c).unwrap();
        }
    }
}

#[cfg(test)]
mod aging_tests {
    use super::*;
    use crate::traits::Puf;

    #[test]
    fn aging_drifts_responses_gradually() {
        let c = {
            let mut rng = StdRng::seed_from_u64(700);
            Challenge::random(64, &mut rng)
        };
        let mut p = PhotonicPuf::reference(DieId(70), 1);
        let golden = p.respond_golden(&c, 9).unwrap();

        p.age(1.0);
        let after_one_year = p.respond_golden(&c, 9).unwrap();
        let drift_1y = golden.fhd(&after_one_year);

        p.age_with_rate(25.0, 0.1); // brutal accelerated aging
        let after_decades = p.respond_golden(&c, 9).unwrap();
        let drift_heavy = golden.fhd(&after_decades);

        assert!(drift_1y < 0.15, "1-year drift too large: {drift_1y}");
        assert!(
            drift_heavy > drift_1y,
            "heavy aging must drift further: {drift_1y} vs {drift_heavy}"
        );
    }

    #[test]
    fn zero_years_is_a_noop() {
        let c = Challenge::from_u64(0xFACE, 64);
        let mut a = PhotonicPuf::reference(DieId(71), 5);
        let before = a.respond_deterministic(&c).unwrap();
        a.age(0.0);
        let after = a.respond_deterministic(&c).unwrap();
        assert_eq!(before, after);
    }
}
