//! EKE-based authentication and key agreement — §IV.
//!
//! "One approach is to see the CRP as a low-entropy shared secret. With
//! this, we can consider the use of the well-established and secure EKE
//! protocol to achieve both mutual authentication and key exchange …
//! This approach protects against most possible attacks to the CRP while
//! providing perfect forward security to the key established for data
//! encryption."
//!
//! Bellovin–Merritt EKE over X25519: each side encrypts its *ephemeral*
//! public key under a key derived from the shared CRP. An eavesdropper
//! who later learns the CRP decrypts only public keys — the session key
//! needs an ephemeral private key, hence forward secrecy. An offline
//! dictionary attacker gains nothing because every candidate CRP decrypts
//! the transcript to *some* plausible 32-byte public key (no redundancy
//! to test against).

use crate::error::ProtocolError;
use neuropuls_crypto::chacha20::ChaCha20;
use neuropuls_crypto::ct::ct_eq;
use neuropuls_crypto::hkdf;
use neuropuls_crypto::hmac::HmacSha256;
use neuropuls_crypto::prng::CsPrng;
use neuropuls_crypto::x25519;
use neuropuls_puf::bits::Response;
use neuropuls_rt::RngCore;

/// Session keys derived from a successful exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Key for encrypting application data.
    pub encryption: [u8; 32],
    /// Key for authenticating application data.
    pub mac: [u8; 32],
}

/// Message 1: initiator → responder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EkeHello {
    /// Ephemeral public key encrypted under the CRP-derived key.
    pub encrypted_public: [u8; 32],
    /// Initiator nonce.
    pub nonce: [u8; 16],
}

/// Message 2: responder → initiator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EkeReply {
    /// Responder's encrypted ephemeral public key.
    pub encrypted_public: [u8; 32],
    /// Responder nonce.
    pub nonce: [u8; 16],
    /// Key-confirmation MAC over both nonces.
    pub confirm: [u8; 32],
}

/// Message 3: initiator → responder (final confirmation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EkeConfirm {
    /// Key-confirmation MAC over both nonces, reversed order.
    pub confirm: [u8; 32],
}

fn password_key(crp_response: &Response) -> [u8; 32] {
    let mut key = [0u8; 32];
    // invariant: hkdf::derive only errors past 255 output blocks; a
    // 32-byte request is one block.
    hkdf::derive(
        b"neuropuls/eke",
        &crp_response.to_packed(),
        b"password-key",
        &mut key,
    )
    .expect("32-byte HKDF output is valid");
    key
}

fn mask_public(password_key: &[u8; 32], public: &[u8; 32], direction: u8) -> [u8; 32] {
    let mut nonce = [0u8; 12];
    nonce[0] = direction;
    let mut out = *public;
    ChaCha20::new(password_key, &nonce).apply(&mut out);
    out
}

fn derive_session(shared: &[u8; 32], nonce_a: &[u8; 16], nonce_b: &[u8; 16]) -> SessionKeys {
    let mut salt = Vec::with_capacity(32);
    salt.extend_from_slice(nonce_a);
    salt.extend_from_slice(nonce_b);
    let mut encryption = [0u8; 32];
    let mut mac = [0u8; 32];
    // invariant: hkdf::derive only errors past 255 output blocks; a
    // 32-byte request is one block.
    hkdf::derive(&salt, shared, b"eke/session-enc", &mut encryption)
        .expect("32-byte HKDF output is valid");
    hkdf::derive(&salt, shared, b"eke/session-mac", &mut mac)
        .expect("32-byte HKDF output is valid");
    SessionKeys { encryption, mac }
}

/// One side of the EKE exchange.
#[derive(Debug)]
pub struct EkeParty {
    password: [u8; 32],
    rng: CsPrng,
    ephemeral_private: Option<[u8; 32]>,
    nonce: [u8; 16],
    peer_nonce: [u8; 16],
    session: Option<SessionKeys>,
}

impl EkeParty {
    /// Creates a party sharing `crp_response` as the low-entropy secret.
    pub fn new(crp_response: &Response, rng_seed: &[u8]) -> Self {
        EkeParty {
            password: password_key(crp_response),
            rng: CsPrng::from_seed_bytes(rng_seed),
            ephemeral_private: None,
            nonce: [0u8; 16],
            peer_nonce: [0u8; 16],
            session: None,
        }
    }

    /// The established session keys (after a successful exchange).
    pub fn session(&self) -> Option<&SessionKeys> {
        self.session.as_ref()
    }

    /// Initiator step 1.
    pub fn hello(&mut self) -> EkeHello {
        let mut private = [0u8; 32];
        self.rng.fill_bytes(&mut private);
        let public = x25519::public_key(&private);
        self.ephemeral_private = Some(private);
        self.rng.fill_bytes(&mut self.nonce);
        EkeHello {
            encrypted_public: mask_public(&self.password, &public, 0),
            nonce: self.nonce,
        }
    }

    /// Responder step: consumes the hello, produces the reply, derives
    /// the session.
    ///
    /// # Errors
    ///
    /// Fails on a low-order point (wrong password produces a random
    /// point, which is fine; all-zero shared secrets are rejected).
    pub fn reply(&mut self, hello: &EkeHello) -> Result<EkeReply, ProtocolError> {
        let peer_public = mask_public(&self.password, &hello.encrypted_public, 0);
        self.peer_nonce = hello.nonce;
        let mut private = [0u8; 32];
        self.rng.fill_bytes(&mut private);
        let public = x25519::public_key(&private);
        self.rng.fill_bytes(&mut self.nonce);
        let shared = x25519::shared_secret(&private, &peer_public)?;
        let session = derive_session(&shared, &hello.nonce, &self.nonce);
        let confirm = HmacSha256::mac_parts(&session.mac, &[&hello.nonce, &self.nonce, b"B->A"]);
        self.session = Some(session);
        Ok(EkeReply {
            encrypted_public: mask_public(&self.password, &public, 1),
            nonce: self.nonce,
            confirm,
        })
    }

    /// Initiator step 2: consumes the reply, verifies key confirmation,
    /// produces the final confirmation.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AuthenticationFailed`] when the peer does not
    /// hold the same CRP.
    pub fn finish(&mut self, reply: &EkeReply) -> Result<EkeConfirm, ProtocolError> {
        // The ephemeral key is consumed only on success: a reply that
        // fails confirmation (e.g. corrupted in transit) leaves the
        // exchange resumable with a retransmitted clean reply.
        let private = self
            .ephemeral_private
            .ok_or_else(|| ProtocolError::OutOfOrder("finish before hello".into()))?;
        let peer_public = mask_public(&self.password, &reply.encrypted_public, 1);
        let shared = x25519::shared_secret(&private, &peer_public)?;
        let session = derive_session(&shared, &self.nonce, &reply.nonce);
        let expected = HmacSha256::mac_parts(&session.mac, &[&self.nonce, &reply.nonce, b"B->A"]);
        if !ct_eq(&expected, &reply.confirm) {
            return Err(ProtocolError::AuthenticationFailed(
                "responder key confirmation failed (wrong CRP?)".into(),
            ));
        }
        let confirm = HmacSha256::mac_parts(&session.mac, &[&reply.nonce, &self.nonce, b"A->B"]);
        self.ephemeral_private = None;
        self.session = Some(session);
        Ok(EkeConfirm { confirm })
    }

    /// Responder final step: verifies the initiator's confirmation.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::AuthenticationFailed`] on a bad confirmation.
    pub fn accept(&mut self, confirm: &EkeConfirm) -> Result<(), ProtocolError> {
        let session = self
            .session
            .as_ref()
            .ok_or_else(|| ProtocolError::OutOfOrder("accept before reply".into()))?;
        // The initiator MACs (responder_nonce, initiator_nonce, "A->B").
        let expected =
            HmacSha256::mac_parts(&session.mac, &[&self.nonce, &self.peer_nonce, b"A->B"]);
        if !ct_eq(&expected, &confirm.confirm) {
            return Err(ProtocolError::AuthenticationFailed(
                "initiator key confirmation failed".into(),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Wire sessions
// ---------------------------------------------------------------------------

use crate::transport::{Channel, Transport};
use crate::wire::{
    classify, drive_report, resend_or_wait, Arq, EkeMsg, Envelope, Incoming, NextWake, ProtocolId,
    Session, SessionAction, SessionConfig, SessionReport, DEFAULT_MAX_TICKS,
};
use neuropuls_rt::codec::ToBytes;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EkeInitiatorState {
    Start,
    AwaitReply,
    Done,
}

/// The EKE initiator as a wire session: sends the masked hello, awaits
/// the reply, answers the final confirmation — then lingers to re-serve
/// the confirmation if the responder retransmits its reply.
pub struct WireEkeInitiator<'a> {
    party: &'a mut EkeParty,
    session: u64,
    arq: Arq,
    state: EkeInitiatorState,
    last_reject: Option<ProtocolError>,
}

impl<'a> WireEkeInitiator<'a> {
    /// Wraps `party` for one wire session identified by `session`.
    pub fn new(party: &'a mut EkeParty, session: u64, cfg: SessionConfig) -> Self {
        WireEkeInitiator {
            party,
            session,
            arq: Arq::new(cfg),
            state: EkeInitiatorState::Start,
            last_reject: None,
        }
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }
}

impl Session for WireEkeInitiator<'_> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            EkeInitiatorState::Start => {
                let hello = self.party.hello();
                let frame = Envelope::pack(ProtocolId::Eke, self.session, 0, &EkeMsg::Hello(hello))
                    .to_bytes();
                self.arq.sent(&frame);
                self.state = EkeInitiatorState::AwaitReply;
                Ok(SessionAction::Send(frame))
            }
            EkeInitiatorState::AwaitReply => {
                match classify::<EkeMsg>(incoming, ProtocolId::Eke, Some(self.session), 1) {
                    Incoming::Msg(_, EkeMsg::Reply(reply)) => {
                        self.arq.activity();
                        match self.party.finish(&reply) {
                            Ok(confirm) => {
                                let frame = Envelope::pack(
                                    ProtocolId::Eke,
                                    self.session,
                                    2,
                                    &EkeMsg::Confirm(confirm),
                                )
                                .to_bytes();
                                self.arq.sent(&frame);
                                self.state = EkeInitiatorState::Done;
                                Ok(SessionAction::Send(frame))
                            }
                            Err(e) => self.rejected(e),
                        }
                    }
                    Incoming::Msg(..) => self.idle(),
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            EkeInitiatorState::Done => {
                // Linger: a retransmitted reply means the responder
                // missed our confirmation — resend it.
                match classify::<EkeMsg>(incoming, ProtocolId::Eke, Some(self.session), 3) {
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    _ => Ok(SessionAction::Wait),
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.state == EkeInitiatorState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            EkeInitiatorState::Start => NextWake::In(0),
            EkeInitiatorState::AwaitReply => NextWake::In(self.arq.ticks_to_fire()),
            EkeInitiatorState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EkeResponderState {
    AwaitHello,
    AwaitConfirm,
    Done,
}

/// The EKE responder as a wire session: awaits the hello, answers the
/// masked reply, awaits the initiator's confirmation.
pub struct WireEkeResponder<'a> {
    party: &'a mut EkeParty,
    session: Option<u64>,
    arq: Arq,
    state: EkeResponderState,
    last_reject: Option<ProtocolError>,
}

impl<'a> WireEkeResponder<'a> {
    /// Wraps `party` for one wire session; the session id is latched
    /// from the first hello envelope.
    pub fn new(party: &'a mut EkeParty, cfg: SessionConfig) -> Self {
        WireEkeResponder {
            party,
            session: None,
            arq: Arq::new(cfg),
            state: EkeResponderState::AwaitHello,
            last_reject: None,
        }
    }

    fn fail_with(&mut self, fallback: ProtocolError) -> ProtocolError {
        self.last_reject.take().unwrap_or(fallback)
    }

    fn idle(&mut self) -> Result<SessionAction, ProtocolError> {
        match self.arq.idle() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }

    fn rejected(&mut self, reason: ProtocolError) -> Result<SessionAction, ProtocolError> {
        self.last_reject = Some(reason);
        match self.arq.reject() {
            Ok(frame) => Ok(resend_or_wait(frame)),
            Err(e) => Err(self.fail_with(e)),
        }
    }
}

impl Session for WireEkeResponder<'_> {
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError> {
        match self.state {
            EkeResponderState::AwaitHello => {
                match classify::<EkeMsg>(incoming, ProtocolId::Eke, self.session, 0) {
                    Incoming::Msg(session, EkeMsg::Hello(hello)) => {
                        self.arq.activity();
                        self.session = Some(session);
                        match self.party.reply(&hello) {
                            Ok(reply) => {
                                let frame = Envelope::pack(
                                    ProtocolId::Eke,
                                    session,
                                    1,
                                    &EkeMsg::Reply(reply),
                                )
                                .to_bytes();
                                self.arq.sent(&frame);
                                self.state = EkeResponderState::AwaitConfirm;
                                Ok(SessionAction::Send(frame))
                            }
                            // A degenerate point: wait for the initiator
                            // to retransmit and retry with fresh
                            // ephemerals.
                            Err(e) => self.rejected(e),
                        }
                    }
                    Incoming::Msg(..) | Incoming::Duplicate | Incoming::Noise => self.idle(),
                }
            }
            EkeResponderState::AwaitConfirm => {
                match classify::<EkeMsg>(incoming, ProtocolId::Eke, self.session, 2) {
                    Incoming::Msg(_, EkeMsg::Confirm(confirm)) => {
                        self.arq.activity();
                        match self.party.accept(&confirm) {
                            Ok(()) => {
                                self.state = EkeResponderState::Done;
                                Ok(SessionAction::Done)
                            }
                            Err(e) => self.rejected(e),
                        }
                    }
                    Incoming::Msg(..) => self.idle(),
                    // A retransmitted hello: the initiator missed our
                    // reply — resend it.
                    Incoming::Duplicate => Ok(resend_or_wait(self.arq.duplicate())),
                    Incoming::Noise => self.idle(),
                }
            }
            EkeResponderState::Done => Ok(SessionAction::Wait),
        }
    }

    fn done(&self) -> bool {
        self.state == EkeResponderState::Done
    }

    fn retransmits(&self) -> u32 {
        self.arq.retransmits()
    }

    fn next_wake(&self) -> NextWake {
        match self.state {
            EkeResponderState::AwaitHello | EkeResponderState::AwaitConfirm => {
                NextWake::In(self.arq.ticks_to_fire())
            }
            EkeResponderState::Done => NextWake::OnFrame,
        }
    }

    fn skip_silence(&mut self, ticks: u32) {
        self.arq.skip(ticks);
    }
}

/// Runs one EKE exchange over `channel` (initiator =
/// [`Side::A`](crate::transport::Side::A), responder =
/// [`Side::B`](crate::transport::Side::B)), recording wire activity
/// into `tracer` (pass
/// [`Tracer::disabled`](neuropuls_rt::trace::Tracer::disabled) for an
/// untraced run).
pub fn run_wire_exchange<T: Transport>(
    channel: &mut T,
    initiator: &mut EkeParty,
    responder: &mut EkeParty,
    session_id: u64,
    cfg: SessionConfig,
    tracer: &mut neuropuls_rt::trace::Tracer,
) -> SessionReport {
    let mut i = WireEkeInitiator::new(initiator, session_id, cfg);
    let mut r = WireEkeResponder::new(responder, cfg);
    drive_report(channel, &mut i, &mut r, DEFAULT_MAX_TICKS, tracer)
}

/// Runs a complete EKE exchange over a perfect in-memory channel,
/// returning the pair of session key sets (which must match).
///
/// # Errors
///
/// Propagates the first protocol failure.
pub fn run_exchange(
    initiator: &mut EkeParty,
    responder: &mut EkeParty,
) -> Result<(SessionKeys, SessionKeys), ProtocolError> {
    let mut channel = Channel::new();
    run_wire_exchange(
        &mut channel,
        initiator,
        responder,
        0,
        SessionConfig::default(),
        &mut neuropuls_rt::trace::Tracer::disabled(),
    )
    .result?;
    let ka = initiator
        .session()
        .cloned()
        .ok_or_else(|| ProtocolError::OutOfOrder("initiator finished without keys".into()))?;
    let kb = responder
        .session()
        .cloned()
        .ok_or_else(|| ProtocolError::OutOfOrder("responder finished without keys".into()))?;
    Ok((ka, kb))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crp(seed: u64) -> Response {
        Response::from_u64(seed, 63)
    }

    #[test]
    fn exchange_agrees_on_keys() {
        let mut a = EkeParty::new(&crp(1), b"rng-a");
        let mut b = EkeParty::new(&crp(1), b"rng-b");
        let (ka, kb) = run_exchange(&mut a, &mut b).unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn wrong_crp_fails_authentication() {
        let mut a = EkeParty::new(&crp(1), b"rng-a");
        let mut b = EkeParty::new(&crp(2), b"rng-b");
        assert!(matches!(
            run_exchange(&mut a, &mut b),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn sessions_have_forward_secrecy_structure() {
        // Two exchanges under the SAME CRP must yield different session
        // keys — compromising the CRP later reveals neither.
        let mut a1 = EkeParty::new(&crp(3), b"rng-a1");
        let mut b1 = EkeParty::new(&crp(3), b"rng-b1");
        let (k1, _) = run_exchange(&mut a1, &mut b1).unwrap();
        let mut a2 = EkeParty::new(&crp(3), b"rng-a2");
        let mut b2 = EkeParty::new(&crp(3), b"rng-b2");
        let (k2, _) = run_exchange(&mut a2, &mut b2).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn transcript_reveals_only_masked_points() {
        // Offline dictionary resistance (structural): decrypting the
        // hello under ANY candidate password yields a plausible 32-byte
        // string; there is no redundancy to test a guess against.
        let mut a = EkeParty::new(&crp(4), b"rng-a");
        let hello = a.hello();
        let right = mask_public(&password_key(&crp(4)), &hello.encrypted_public, 0);
        let wrong = mask_public(&password_key(&crp(5)), &hello.encrypted_public, 0);
        assert_ne!(right, wrong);
        assert_eq!(right.len(), 32);
        assert_eq!(wrong.len(), 32);
    }

    #[test]
    fn out_of_order_messages_rejected() {
        let mut a = EkeParty::new(&crp(6), b"rng-a");
        let reply = EkeReply {
            encrypted_public: [1; 32],
            nonce: [2; 16],
            confirm: [3; 32],
        };
        assert!(matches!(
            a.finish(&reply),
            Err(ProtocolError::OutOfOrder(_))
        ));
        let mut b = EkeParty::new(&crp(6), b"rng-b");
        assert!(matches!(
            b.accept(&EkeConfirm { confirm: [0; 32] }),
            Err(ProtocolError::OutOfOrder(_))
        ));
    }

    #[test]
    fn tampered_reply_detected() {
        let mut a = EkeParty::new(&crp(7), b"rng-a");
        let mut b = EkeParty::new(&crp(7), b"rng-b");
        let hello = a.hello();
        let mut reply = b.reply(&hello).unwrap();
        reply.encrypted_public[0] ^= 1;
        assert!(matches!(
            a.finish(&reply),
            Err(ProtocolError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn session_keys_usable_for_encryption() {
        let mut a = EkeParty::new(&crp(8), b"rng-a");
        let mut b = EkeParty::new(&crp(8), b"rng-b");
        let (ka, kb) = run_exchange(&mut a, &mut b).unwrap();
        let nonce = [0u8; 12];
        let ct = ChaCha20::encrypt(&ka.encryption, &nonce, b"ciphered tensor");
        assert_eq!(
            ChaCha20::decrypt(&kb.encryption, &nonce, &ct),
            b"ciphered tensor"
        );
    }
}
