//! E14 — accelerator analog-fidelity ablation: inference accuracy vs.
//! PCM weight quantization, MAC noise and drift. The NN confidentiality
//! service (Table I) is only useful if the protected accelerator still
//! computes; this experiment quantifies the analog penalty.

use crate::{Rendered, Scale};
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::{AnalogModel, PhotonicEngine};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::{Rng, SeedableRng};

/// A tiny two-class task: points inside/outside a disc, classified by a
/// fixed 2-16-2 MLP trained host-side (closed-form-ish: we synthesize a
/// reasonable classifier by gradient descent on the ideal engine's
/// math).
fn make_dataset(n: usize, seed: u64) -> Vec<([f64; 2], usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen::<f64>() * 2.0 - 1.0;
            let y = rng.gen::<f64>() * 2.0 - 1.0;
            let label = usize::from(x * x + y * y < 0.5);
            ([x, y], label)
        })
        .collect()
}

/// Trains a small MLP with plain backprop (host-side, float64).
fn train_classifier(seed: u64, epochs: usize) -> NetworkConfig {
    let hidden = 16;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w1: Vec<f64> = (0..hidden * 2).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut b1: Vec<f64> = vec![0.0; hidden];
    let mut w2: Vec<f64> = (0..2 * hidden).map(|_| rng.gen::<f64>() - 0.5).collect();
    let mut b2: Vec<f64> = vec![0.0; 2];
    let data = make_dataset(400, seed ^ 1);
    let lr = 0.05;
    for _ in 0..epochs {
        for (x, label) in &data {
            // Forward.
            let h: Vec<f64> = (0..hidden)
                .map(|j| (w1[j * 2] * x[0] + w1[j * 2 + 1] * x[1] + b1[j]).max(0.0))
                .collect();
            let z: Vec<f64> = (0..2)
                .map(|k| (0..hidden).map(|j| w2[k * hidden + j] * h[j]).sum::<f64>() + b2[k])
                .collect();
            let m = z[0].max(z[1]);
            let e: Vec<f64> = z.iter().map(|v| (v - m).exp()).collect();
            let sum: f64 = e.iter().sum();
            let p: Vec<f64> = e.iter().map(|v| v / sum).collect();
            // Backward (cross-entropy). The hidden gradient must use
            // the *pre-update* output weights.
            let dz: Vec<f64> = (0..2)
                .map(|k| p[k] - if k == *label { 1.0 } else { 0.0 })
                .collect();
            let dh: Vec<f64> = (0..hidden)
                .map(|j| {
                    if h[j] > 0.0 {
                        (0..2).map(|k| dz[k] * w2[k * hidden + j]).sum()
                    } else {
                        0.0
                    }
                })
                .collect();
            for k in 0..2 {
                for j in 0..hidden {
                    w2[k * hidden + j] -= lr * dz[k] * h[j];
                }
                b2[k] -= lr * dz[k];
            }
            for j in 0..hidden {
                w1[j * 2] -= lr * dh[j] * x[0];
                w1[j * 2 + 1] -= lr * dh[j] * x[1];
                b1[j] -= lr * dh[j];
            }
        }
    }
    NetworkConfig {
        layers: vec![
            neuropuls_accel::config::LayerConfig {
                inputs: 2,
                outputs: hidden,
                weights: w1.iter().map(|&w| w as f32).collect(),
                biases: b1.iter().map(|&b| b as f32).collect(),
                activation: neuropuls_accel::config::Activation::Relu,
            },
            neuropuls_accel::config::LayerConfig {
                inputs: hidden,
                outputs: 2,
                weights: w2.iter().map(|&w| w as f32).collect(),
                biases: b2.iter().map(|&b| b as f32).collect(),
                activation: neuropuls_accel::config::Activation::Linear,
            },
        ],
    }
}

fn accuracy(engine: &mut PhotonicEngine, data: &[([f64; 2], usize)]) -> f64 {
    let correct = data
        .iter()
        .filter(|(x, label)| {
            let out = engine.infer(&x[..]).expect("2-wide input");
            usize::from(out[1] > out[0]) == *label
        })
        .count();
    correct as f64 / data.len() as f64
}

/// One ablation row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub label: String,
    /// Classification accuracy on held-out points.
    pub accuracy: f64,
}

/// Runs the analog ablation.
pub fn run(scale: Scale) -> (Rendered, Vec<Row>) {
    let epochs = scale.pick(10, 60);
    let test_points = scale.pick(150, 1000);
    let network = train_classifier(0xE14, epochs);
    let test = make_dataset(test_points, 0xE14 ^ 99);

    let mut rows = Vec::new();
    let mut eval = |label: &str, model: AnalogModel, age_hours: f64| {
        let mut engine = PhotonicEngine::new(model, 0xE14);
        engine.load(network.clone()).expect("load");
        if age_hours > 0.0 {
            engine.age(age_hours);
        }
        rows.push(Row {
            label: label.to_string(),
            accuracy: accuracy(&mut engine, &test),
        });
    };

    eval("ideal digital (fp32)", AnalogModel::ideal(), 0.0);
    eval(
        "reference photonic (6-bit PCM)",
        AnalogModel::reference(),
        0.0,
    );
    for bits in [4u8, 3, 2] {
        eval(
            &format!("{bits}-bit PCM"),
            AnalogModel {
                weight_bits: bits,
                ..AnalogModel::reference()
            },
            0.0,
        );
    }
    eval(
        "reference + 10% MAC noise",
        AnalogModel {
            mac_noise: 0.1,
            ..AnalogModel::reference()
        },
        0.0,
    );
    eval(
        "reference + 100 h PCM drift",
        AnalogModel::reference(),
        100.0,
    );

    let mut out = Rendered::new("E14 — analog accelerator fidelity ablation (2-16-2 classifier)");
    out.push(format!("{:<34} {:>10}", "engine configuration", "accuracy"));
    for r in &rows {
        out.push(format!("{:<34} {:>9.1}%", r.label, r.accuracy * 100.0));
    }
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_analog_ablation() {
        let (_, rows) = run(Scale::Smoke);
        let acc = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .unwrap()
                .accuracy
        };
        assert!(acc("ideal digital") > 0.85, "classifier failed to train");
        // The reference analog engine should track the ideal closely.
        assert!(acc("reference photonic") > acc("ideal digital") - 0.1);
        // 2-bit quantization must hurt.
        assert!(acc("2-bit PCM") < acc("ideal digital") + 0.001);
    }
}
