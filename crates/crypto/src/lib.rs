// Indexed loops over parallel arrays are the clearest form for the
// numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! From-scratch lightweight cryptographic substrate for the NEUROPULS
//! security layers.
//!
//! The protocols of the paper (mutual authentication, software attestation,
//! encrypted neural-network load/execute, EKE-based authentication and key
//! agreement) only require a small set of primitives: a hash, a MAC, a key
//! derivation function, a stream cipher, a Diffie–Hellman group, an error
//! correcting code and a fuzzy extractor to turn noisy PUF responses into
//! stable keys. All of them are implemented here with no external
//! dependencies so that the whole workspace stays within the allowed crate
//! set.
//!
//! **These implementations are for simulation and research reproduction
//! only; they are not hardened against real-world side channels and must
//! not be used in production.**
//!
//! # Example
//!
//! ```
//! use neuropuls_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"neuropuls");
//! assert_eq!(digest.len(), 32);
//! ```

pub mod bch;
pub mod chacha20;
pub mod ct;
pub mod ecc;
pub mod error;
pub mod fuzzy;
pub mod hkdf;
pub mod hmac;
pub mod prng;
pub mod sha256;
pub mod x25519;

pub use error::CryptoError;
