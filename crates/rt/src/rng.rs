//! Deterministic, seedable random number generation with a
//! `rand`-compatible surface.
//!
//! The traits ([`RngCore`], [`SeedableRng`], [`Rng`]) and the two named
//! generators ([`StdRng`], [`SmallRng`]) cover exactly the API the rest
//! of the workspace uses, so migrating a call site from the external
//! `rand` crate is a path rename. [`StdRng`] runs a ChaCha20 keystream
//! (the same core the in-tree `neuropuls-crypto` crate implements; the
//! block function is duplicated here to keep the dependency graph
//! acyclic). [`SmallRng`] is the non-cryptographic fast path:
//! xoshiro256++ seeded through splitmix64.
//!
//! Nothing here reads OS entropy. Every generator must be constructed
//! from an explicit seed — reproducibility is part of the experimental
//! methodology, not an option.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Error type for the fallible [`RngCore::try_fill_bytes`].
///
/// The in-repo generators are infallible, so this is only ever
/// constructed by downstream implementations that wrap fallible entropy
/// sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static description.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// The raw generator interface: a source of `u32`/`u64` words and byte
/// fills. Mirrors `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`]; the in-repo
    /// generators never fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Construction from explicit seeds. Mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, stretched through splitmix64
    /// so that nearby seeds still yield independent streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods, implemented for every [`RngCore`].
/// Mirrors the subset of `rand::Rng` the workspace uses.
pub trait Rng: RngCore {
    /// Draws a value whose type implements [`Random`] (the analogue of
    /// sampling `rand`'s `Standard` distribution): uniform integers,
    /// `f64`/`f32` in `[0, 1)`, `bool`, and fixed-size byte arrays.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    /// Integer ranges use rejection sampling, so the result is exactly
    /// uniform.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::random(self) < p
    }

    /// Fills a byte slice with random data (alias for
    /// [`RngCore::fill_bytes`], kept for `rand` surface parity).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    /// Draws one value from an explicit [`Distribution`].
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// A source of typed values driven by an RNG. Mirrors
/// `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for a type — full integer range,
/// `[0, 1)` for floats. Mirrors `rand::distributions::Standard`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl<T: Random> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::random(rng)
    }
}

/// Uniform distribution over a half-open range, reusable across draws.
#[derive(Debug, Clone)]
pub struct Uniform<T> {
    range: Range<T>,
}

impl<T: Clone> Uniform<T>
where
    Range<T>: SampleRange<T>,
{
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Uniform { range: low..high }
    }
}

impl<T: Clone> Distribution<T> for Uniform<T>
where
    Range<T>: SampleRange<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.range.clone().sample_single(rng)
    }
}

/// Types drawable uniformly from their full domain (or `[0, 1)` for
/// floats) — the target of [`Rng::gen`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! random_via_u64 {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

random_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    /// 53 uniform mantissa bits mapped to `[0, 1)`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// 24 uniform mantissa bits mapped to `[0, 1)`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Random, const N: usize> Random for [T; N] {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::random(rng))
    }
}

/// Ranges that can be sampled uniformly — the argument type of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types drawable from a range. The blanket [`SampleRange`]
/// impls below hang off this trait so type inference flows from the
/// range's element type exactly as it does with the `rand` crate.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range called with empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Uniform `u64` below `bound` via rejection sampling (exactly uniform).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Largest multiple of `bound` that fits in a u64; values at or above
    // it would bias the modulo and are redrawn.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u64;
                let off = uniform_below(rng, span);
                (low as i128 + off as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain, where a
                    // raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u = <$t as Random>::random(rng);
                low + u * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                // The measure-zero endpoint makes inclusive and
                // half-open draws indistinguishable for floats.
                Self::sample_half_open(low, high, rng)
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

// ---------------------------------------------------------------------------
// splitmix64 — seed stretcher and the simplest deterministic stream
// ---------------------------------------------------------------------------

/// splitmix64 (Steele, Lea & Flood): one 64-bit multiply-xorshift step
/// per output. Used to stretch `u64` seeds into full generator states.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts the stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// SmallRng — xoshiro256++
// ---------------------------------------------------------------------------

/// Fast non-cryptographic generator: xoshiro256++ (Blackman & Vigna).
///
/// Use for simulation workloads where throughput matters and the stream
/// is not security-relevant (process variation, noise injection, attack
/// Monte Carlo). Period 2^256 − 1.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn next_word(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            let mut sm = SplitMix64::new(0xDEAD_BEEF);
            s = [sm.next(), sm.next(), sm.next(), sm.next()];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_word() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_word()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

// ---------------------------------------------------------------------------
// StdRng — ChaCha20 keystream
// ---------------------------------------------------------------------------

/// The default workspace generator: a ChaCha20 keystream keyed by the
/// 32-byte seed (zero nonce, 64-bit block counter).
///
/// Deterministic and high-quality; every experiment in the repository
/// seeds one of these with a recorded constant so runs replay exactly.
#[derive(Debug, Clone)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u8; 64],
    pos: usize,
}

/// One ChaCha20 block (RFC 8439) for key words `key`, zero nonce and
/// 64-bit block counter `counter`.
fn chacha20_block(key: &[u32; 8], counter: u64) -> [u8; 64] {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    // state[14..16] stay zero (nonce).
    let mut w = state;

    #[inline(always)]
    fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(16);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(12);
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(8);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(7);
    }

    for _ in 0..10 {
        quarter(&mut w, 0, 4, 8, 12);
        quarter(&mut w, 1, 5, 9, 13);
        quarter(&mut w, 2, 6, 10, 14);
        quarter(&mut w, 3, 7, 11, 15);
        quarter(&mut w, 0, 5, 10, 15);
        quarter(&mut w, 1, 6, 11, 12);
        quarter(&mut w, 2, 7, 8, 13);
        quarter(&mut w, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = w[i].wrapping_add(state[i]).to_le_bytes();
        out[i * 4..i * 4 + 4].copy_from_slice(&word);
    }
    out
}

impl StdRng {
    fn refill(&mut self) {
        self.buf = chacha20_block(&self.key, self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }

    fn take(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.pos == 64 {
                self.refill();
            }
            let n = (dest.len() - written).min(64 - self.pos);
            dest[written..written + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            written += n;
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            counter: 0,
            buf: [0; 64],
            pos: 64,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.take(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.take(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.take(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_block_matches_rfc8439_shape() {
        // Keystream must be deterministic and block-position dependent.
        let key = [1u32; 8];
        assert_eq!(chacha20_block(&key, 0), chacha20_block(&key, 0));
        assert_ne!(chacha20_block(&key, 0), chacha20_block(&key, 1));
    }

    #[test]
    fn stdrng_streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (mut xa, mut xb, mut xc) = ([0u8; 128], [0u8; 128], [0u8; 128]);
        a.fill_bytes(&mut xa);
        b.fill_bytes(&mut xb);
        c.fill_bytes(&mut xc);
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn smallrng_streams_are_seed_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn smallrng_survives_zero_seed() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0u64.wrapping_add(rng.next_u64()));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn float_random_stays_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn array_random_fills_every_lane() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: [u8; 32] = rng.gen();
        let b: [u8; 32] = rng.gen();
        assert_ne!(a, b);
    }

    /// Chi-square goodness-of-fit for `gen_range` over a bucket count
    /// that does not divide 2⁶⁴ — exactly the case where a naive modulo
    /// sampler shows bias and rejection sampling must not.
    #[test]
    fn gen_range_is_uniform_by_chi_square() {
        const BUCKETS: usize = 13;
        const DRAWS: usize = 130_000;
        for seed in [5u64, 6, 7] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut counts = [0usize; BUCKETS];
            for _ in 0..DRAWS {
                counts[rng.gen_range(0..BUCKETS)] += 1;
            }
            let expected = DRAWS as f64 / BUCKETS as f64;
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum();
            // 12 degrees of freedom: the 99.9th percentile is ~32.9.
            assert!(chi2 < 32.9, "seed {seed}: chi-square {chi2:.2}");
        }
    }

    /// Same check for the xoshiro-backed [`SmallRng`] on an inclusive
    /// signed range.
    #[test]
    fn smallrng_gen_range_is_uniform_by_chi_square() {
        const BUCKETS: i32 = 11;
        const DRAWS: usize = 110_000;
        let mut rng = SmallRng::seed_from_u64(8);
        let mut counts = [0usize; BUCKETS as usize];
        for _ in 0..DRAWS {
            let v = rng.gen_range(-5i32..=5);
            counts[(v + 5) as usize] += 1;
        }
        let expected = DRAWS as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 10 degrees of freedom: the 99.9th percentile is ~29.6.
        assert!(chi2 < 29.6, "chi-square {chi2:.2}");
    }
}
