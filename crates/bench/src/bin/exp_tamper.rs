//! Regenerates the tampering campaign (E13).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::tamper::run(scale);
    print!("{out}");
}
