//! Chip-substitution tampering — §IV.
//!
//! "The core of the security services … are supported by the use of PUF
//! intrinsically bound at both the PIC and the ASIC levels. This
//! protects our NN accelerator from tampering attacks where one
//! malicious chip could replace the genuine PIC or control ASIC."
//!
//! The composite PUF's response mixes both chips; authentication accepts
//! when the fractional Hamming distance to the enrolled response is
//! below a threshold. This module measures acceptance rates for genuine
//! and tampered assemblies (experiment E13).

use neuropuls_photonic::process::DieId;
use neuropuls_puf::bits::Challenge;
use neuropuls_puf::composite::CompositePuf;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_puf::sram::SramPuf;
use neuropuls_puf::traits::{Puf, PufError};
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// Which chip the attacker swapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperScenario {
    /// Untouched assembly.
    Genuine,
    /// Malicious PIC, genuine ASIC.
    SwappedPic,
    /// Genuine PIC, malicious ASIC.
    SwappedAsic,
    /// Both chips replaced.
    SwappedBoth,
}

/// Result of an acceptance campaign for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TamperOutcome {
    /// The scenario tested.
    pub scenario: TamperScenario,
    /// Mean FHD between the assembly's responses and the enrolled ones.
    pub mean_fhd: f64,
    /// Fraction of challenges accepted at the decision threshold.
    pub acceptance: f64,
}

/// Builds a composite assembly for the scenario, enrolls the *genuine*
/// one, and measures how the scenario's assembly scores against the
/// genuine enrollment. `challenges` counts authentication *decisions*
/// (each concatenating four challenges).
///
/// # Errors
///
/// Propagates PUF errors.
pub fn evaluate_scenario(
    scenario: TamperScenario,
    challenges: usize,
    threshold: f64,
    seed: u64,
) -> Result<TamperOutcome, PufError> {
    let genuine_pic = || PhotonicPuf::reference(DieId(seed), 1);
    let genuine_asic = || SramPuf::reference(DieId(seed + 1), 2);
    let evil_pic = || PhotonicPuf::reference(DieId(seed + 100_000), 3);
    let evil_asic = || SramPuf::reference(DieId(seed + 200_000), 4);

    let mut enrolled = CompositePuf::bind(genuine_pic(), genuine_asic());
    let mut tested = match scenario {
        TamperScenario::Genuine => CompositePuf::bind(genuine_pic(), genuine_asic()),
        TamperScenario::SwappedPic => CompositePuf::bind(evil_pic(), genuine_asic()),
        TamperScenario::SwappedAsic => CompositePuf::bind(genuine_pic(), evil_asic()),
        TamperScenario::SwappedBoth => CompositePuf::bind(evil_pic(), evil_asic()),
    };

    // One authentication decision concatenates several challenges
    // (256 response bits), which concentrates the FHD statistic — a
    // single 64-bit response has too much variance for a clean
    // accept/reject threshold.
    const CHALLENGES_PER_DECISION: usize = 4;
    let decisions = challenges.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    let mut total_fhd = 0.0;
    let mut accepted = 0usize;
    for _ in 0..decisions {
        let mut distance = 0usize;
        let mut bits = 0usize;
        for _ in 0..CHALLENGES_PER_DECISION {
            let c = Challenge::random(enrolled.challenge_bits(), &mut rng);
            let golden = enrolled.respond_golden(&c, 7)?;
            let probe = tested.respond_golden(&c, 7)?;
            distance += golden.hamming(&probe);
            bits += golden.len();
        }
        let fhd = distance as f64 / bits as f64;
        total_fhd += fhd;
        if fhd < threshold {
            accepted += 1;
        }
    }
    Ok(TamperOutcome {
        scenario,
        mean_fhd: total_fhd / decisions as f64,
        acceptance: accepted as f64 / decisions as f64,
    })
}

/// Runs all four scenarios.
///
/// # Errors
///
/// Propagates PUF errors.
pub fn full_campaign(
    challenges: usize,
    threshold: f64,
    seed: u64,
) -> Result<Vec<TamperOutcome>, PufError> {
    [
        TamperScenario::Genuine,
        TamperScenario::SwappedPic,
        TamperScenario::SwappedAsic,
        TamperScenario::SwappedBoth,
    ]
    .into_iter()
    .map(|s| evaluate_scenario(s, challenges, threshold, seed))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genuine_assembly_is_accepted() {
        let outcome = evaluate_scenario(TamperScenario::Genuine, 5, 0.25, 11).unwrap();
        assert!(outcome.acceptance > 0.9, "{outcome:?}");
        assert!(outcome.mean_fhd < 0.15, "{outcome:?}");
    }

    #[test]
    fn swapped_pic_is_rejected() {
        let outcome = evaluate_scenario(TamperScenario::SwappedPic, 5, 0.25, 12).unwrap();
        assert_eq!(outcome.acceptance, 0.0, "{outcome:?}");
    }

    #[test]
    fn swapped_asic_is_rejected() {
        let outcome = evaluate_scenario(TamperScenario::SwappedAsic, 5, 0.25, 13).unwrap();
        assert_eq!(outcome.acceptance, 0.0, "{outcome:?}");
    }

    #[test]
    fn full_campaign_orders_scenarios() {
        let outcomes = full_campaign(4, 0.25, 14).unwrap();
        assert_eq!(outcomes.len(), 4);
        let genuine = outcomes[0];
        for tampered in &outcomes[1..] {
            assert!(
                tampered.mean_fhd > genuine.mean_fhd + 0.1,
                "genuine {genuine:?} vs {tampered:?}"
            );
        }
    }
}
