//! Criterion benchmarks for the security services (§III) and the
//! system-level simulator (§V) — the per-operation costs behind the
//! experiment tables.

use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{compute_attestation, AttestationRequest};
use neuropuls_protocols::eke::{run_exchange, EkeParty};
use neuropuls_protocols::mutual_auth::{run_session, Device, Verifier};
use neuropuls_protocols::secure_nn::{NetworkOwner, SecureAccelerator};
use neuropuls_puf::bits::{Challenge, Response};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::criterion::Criterion;
use neuropuls_rt::{criterion_group, criterion_main};
use neuropuls_system::soc::{firmware, Soc};

fn bench_mutual_auth(c: &mut Criterion) {
    c.bench_function("mutual_auth_session", |b| {
        let puf = PhotonicPuf::reference(DieId(1), 1);
        let (mut device, provisioned) = Device::provision(puf, vec![0xAB; 1024], b"bench").unwrap();
        let mut verifier = Verifier::new(provisioned, b"bench-verifier");
        b.iter(|| {
            if run_session(&mut device, &mut verifier).is_err() {
                device.abort_session();
            }
        })
    });
}

fn bench_attestation(c: &mut Criterion) {
    c.bench_function("attestation_walk_16k", |b| {
        let mut puf = PhotonicPuf::reference(DieId(2), 1);
        let memory = vec![0x5Au8; 16 * 1024];
        let request = AttestationRequest {
            timestamp_ns: 1,
            challenge: Challenge::from_u64(0xBEEF, 64),
        };
        b.iter(|| compute_attestation(&mut puf, &memory, &request).unwrap())
    });
}

fn bench_eke(c: &mut Criterion) {
    c.bench_function("eke_exchange", |b| {
        let crp = Response::from_u64(0xCAFE, 63);
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut a = EkeParty::new(&crp, &counter.to_le_bytes());
            let mut b2 = EkeParty::new(&crp, &counter.wrapping_add(1).to_le_bytes());
            run_exchange(&mut a, &mut b2).unwrap()
        })
    });
}

fn bench_secure_nn(c: &mut Criterion) {
    let key = [0x7E; 32];
    let network = NetworkConfig::mlp(&[16, 8, 4], |l, o, i| ((l + o + i) % 5) as f32 * 0.1);

    c.bench_function("secure_nn_load", |b| {
        let mut owner = NetworkOwner::new(key, b"bench-owner");
        let blob = owner.cipher_network(&network);
        let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
        b.iter(|| accel.load_network(&blob).unwrap())
    });

    c.bench_function("secure_nn_execute", |b| {
        let mut owner = NetworkOwner::new(key, b"bench-owner-2");
        let mut accel = SecureAccelerator::new(PhotonicEngine::reference(2), key);
        accel.load_network(&owner.cipher_network(&network)).unwrap();
        let input = owner.cipher_input(&[0.25; 16]);
        b.iter(|| accel.execute_network(&input).unwrap())
    });
}

fn bench_soc(c: &mut Criterion) {
    c.bench_function("soc_puf_firmware", |b| {
        b.iter(|| {
            let mut soc = Soc::new(PhotonicPuf::reference(DieId(3), 1), None);
            soc.load_firmware(firmware::PUF_READ).unwrap();
            soc.run(1_000_000)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mutual_auth, bench_attestation, bench_eke, bench_secure_nn, bench_soc
}
criterion_main!(benches);
