//! System-level simulation (§V): boot the RV32IM SoC, run firmware that
//! interrogates the PUF peripheral and self-checks memory, and dump the
//! gem5-style statistics.
//!
//! ```sh
//! cargo run --example soc_firmware --release
//! ```

use neuropuls::photonic::process::DieId;
use neuropuls::puf::photonic::PhotonicPuf;
use neuropuls::system::soc::{firmware, Soc, StopReason};

/// Firmware: interrogate the PUF four times with different challenges,
/// accumulate the responses, print a marker, halt.
const AUTH_FIRMWARE: &str = "
    li   s0, 0x10000000       # PUF base
    li   s1, 4                # evaluations
    li   s2, 0                # accumulator
    li   s3, 0x0DDC0FFE       # evolving challenge
loop:
    sw   s3, 0(s0)            # CHALLENGE0
    sw   s1, 4(s0)            # CHALLENGE1 (varies per round)
    li   t1, 1
    sw   t1, 8(s0)            # CTRL: start
wait:
    lw   t2, 12(s0)           # STATUS
    andi t2, t2, 2
    beqz t2, wait
    lw   t3, 16(s0)           # RESPONSE0
    xor  s2, s2, t3
    slli s3, s3, 1
    xor  s3, s3, t3           # next challenge depends on response
    addi s1, s1, -1
    bnez s1, loop
    # print 'O' 'K'
    li   a7, 1
    li   a0, 79
    ecall
    li   a0, 75
    ecall
    mv   a0, s2
    li   a7, 0
    ecall
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== PUF interrogation firmware ==");
    let mut soc = Soc::new(PhotonicPuf::reference(DieId(9), 3), None);
    soc.load_firmware(AUTH_FIRMWARE)?;
    match soc.run(1_000_000) {
        StopReason::Halted(acc) => {
            println!("console: {:?}", String::from_utf8_lossy(&soc.console()));
            println!("response accumulator: {acc:#010x}");
        }
        other => println!("stopped: {other:?}"),
    }
    print!("{}", soc.stats().dump());

    println!("\n== memory self-check firmware (clock-count evidence) ==");
    let mut soc = Soc::new(PhotonicPuf::reference(DieId(9), 4), None);
    let image: Vec<u8> = (0..1024).map(|i| (i * 37 % 256) as u8).collect();
    soc.load_bytes(0x8001_0000, &image)
        .expect("image fits in RAM");
    soc.load_firmware(firmware::MEMORY_CHECK)?;
    match soc.run(1_000_000) {
        StopReason::Halted(checksum) => {
            println!("memory checksum: {checksum:#010x}");
            println!("clock count (s2): {} cycles", soc.cpu().regs[18]);
        }
        other => println!("stopped: {other:?}"),
    }
    print!("{}", soc.stats().dump());
    Ok(())
}
