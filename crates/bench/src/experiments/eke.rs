//! E12 — §IV: EKE-based authentication and key agreement. Success under
//! matching CRPs, rejection of wrong CRPs, per-session key freshness
//! (forward secrecy), and cost relative to the plain MAC-based
//! authentication.

use crate::{Rendered, Scale};
use neuropuls_protocols::eke::{run_exchange, EkeParty, SessionKeys};
use neuropuls_puf::bits::Response;
use std::collections::HashSet;
use std::time::Instant;

/// Outcome for assertions.
#[derive(Debug)]
pub struct Outcome {
    /// Successful exchanges with matching CRPs.
    pub matched_ok: usize,
    /// Attempted exchanges with matching CRPs.
    pub matched_total: usize,
    /// Exchanges wrongly accepted with mismatched CRPs (must be 0).
    pub mismatched_accepted: usize,
    /// Distinct session keys across all successful exchanges.
    pub distinct_keys: usize,
    /// Mean exchange wall time (µs).
    pub exchange_us: f64,
}

/// Runs the EKE campaign.
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let exchanges = scale.pick(10, 200);
    let crp = Response::from_u64(0x5EC2_E7A5_CAFE, 63);

    let mut distinct: HashSet<[u8; 32]> = HashSet::new();
    let mut matched_ok = 0usize;
    let start = Instant::now();
    for k in 0..exchanges {
        let mut a = EkeParty::new(&crp, format!("init-{k}").as_bytes());
        let mut b = EkeParty::new(&crp, format!("resp-{k}").as_bytes());
        if let Ok((keys, _)) = run_exchange(&mut a, &mut b) {
            matched_ok += 1;
            let SessionKeys { encryption, .. } = keys;
            distinct.insert(encryption);
        }
    }
    let exchange_us = start.elapsed().as_micros() as f64 / exchanges as f64;

    let mut mismatched_accepted = 0usize;
    for k in 0..exchanges.min(50) {
        let wrong = Response::from_u64(0xBAD0 + k as u64, 63);
        let mut a = EkeParty::new(&crp, format!("mm-init-{k}").as_bytes());
        let mut b = EkeParty::new(&wrong, format!("mm-resp-{k}").as_bytes());
        if run_exchange(&mut a, &mut b).is_ok() {
            mismatched_accepted += 1;
        }
    }

    let mut out = Rendered::new("E12 (§IV) — EKE authentication and key agreement");
    out.push(format!(
        "matching CRP : {matched_ok}/{exchanges} exchanges succeeded"
    ));
    out.push(format!(
        "wrong CRP    : {mismatched_accepted}/{} exchanges wrongly accepted",
        exchanges.min(50)
    ));
    out.push(format!(
        "key freshness: {} distinct session keys across {matched_ok} sessions \
         (forward secrecy: CRP compromise never reveals past keys)",
        distinct.len()
    ));
    out.push_volatile(format!(
        "cost: {exchange_us:.0} µs per exchange (two X25519 scalar mults per side, \
         vs ~4 HMACs for plain Fig. 4 auth)"
    ));
    (
        out,
        Outcome {
            matched_ok,
            matched_total: exchanges,
            mismatched_accepted,
            distinct_keys: distinct.len(),
            exchange_us,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_eke_campaign() {
        let (_, o) = run(Scale::Smoke);
        assert_eq!(o.matched_ok, o.matched_total);
        assert_eq!(o.mismatched_accepted, 0);
        assert_eq!(o.distinct_keys, o.matched_ok, "session keys must be fresh");
    }
}
