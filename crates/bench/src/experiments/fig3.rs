//! E1 / E1b — Fig. 3: bit-aliasing vs. reliability against the counter
//! threshold (RO PUF), and its photocurrent-threshold adaptation for the
//! photonic PUF (§II-B).

use crate::{Rendered, Scale};
use neuropuls_filtering::photocurrent::PhotocurrentStudy;
use neuropuls_filtering::ro_filter::{RoFilterStudy, ThresholdPoint};

fn render_points(out: &mut Rendered, points: &[ThresholdPoint]) {
    out.push(format!(
        "{:>10} {:>12} {:>18} {:>10}",
        "threshold", "reliability", "aliasing-entropy", "CRP-yield"
    ));
    for p in points {
        out.push(format!(
            "{:>10.1} {:>12.4} {:>18.4} {:>9.1}%",
            p.threshold,
            p.reliability,
            p.aliasing_entropy,
            p.surviving_fraction * 100.0
        ));
    }
}

/// Runs the RO-PUF sweep (the exact Fig. 3 axes).
pub fn run_ro(scale: Scale) -> (Rendered, Vec<ThresholdPoint>) {
    let devices = scale.pick(10, 100);
    let reads = scale.pick(10, 50);
    let study = RoFilterStudy::generate(devices, reads, 0xF163);
    let thresholds: Vec<f64> = (0..=scale.pick(8, 24))
        .map(|i| i as f64 * scale.pick(25.0, 10.0))
        .collect();
    let points = study.threshold_sweep(&thresholds);

    let mut out = Rendered::new(format!(
        "E1 (Fig. 3) — RO-PUF counter-threshold filtering, {devices} devices × {reads} reads"
    ));
    render_points(&mut out, &points);
    match study.trade_off_window(&thresholds, 0.999, 0.55) {
        Some((lo, hi)) => out.push(format!(
            "shaded trade-off window (rel ≥ 0.999, entropy ≥ 0.55): thresholds {lo:.0}..{hi:.0}"
        )),
        None => out.push("no trade-off window at these targets".to_string()),
    }
    (out, points)
}

/// Runs the photonic photocurrent-threshold adaptation.
pub fn run_photonic(scale: Scale) -> (Rendered, Vec<ThresholdPoint>) {
    let devices = scale.pick(4, 12);
    let challenges = scale.pick(2, 8);
    let reads = scale.pick(7, 25);
    let study = PhotocurrentStudy::generate(devices, challenges, reads, 0xF163B);
    let thresholds: Vec<f64> = [0.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0].to_vec();
    let points = study.threshold_sweep(&thresholds);

    let mut out = Rendered::new(format!(
        "E1b (§II-B) — photonic PUF photocurrent-threshold filtering, \
         {devices} devices × {challenges} challenges × {reads} reads"
    ));
    render_points(&mut out, &points);
    (out, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ro_sweep_has_fig3_shape() {
        let (_, points) = run_ro(Scale::Smoke);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        // Reliability rises, aliasing entropy falls, yield shrinks.
        assert!(last.reliability >= first.reliability);
        assert!(last.aliasing_entropy < first.aliasing_entropy);
        assert!(last.surviving_fraction < first.surviving_fraction);
    }

    #[test]
    fn photonic_sweep_improves_reliability() {
        let (_, points) = run_photonic(Scale::Smoke);
        let first = points.first().unwrap();
        let best = points
            .iter()
            .map(|p| p.reliability)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best >= first.reliability);
    }
}
