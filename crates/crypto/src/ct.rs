//! Constant-time comparison helpers.
//!
//! Protocol code must never compare MACs or keys with a short-circuiting
//! equality, otherwise the comparison time leaks the position of the first
//! mismatching byte. These helpers compare whole buffers in time that
//! depends only on their length.

/// Compares two byte slices in constant time (for equal-length inputs).
///
/// Returns `false` immediately if the lengths differ — the *length* of a MAC
/// is public information, only its *content* is secret.
///
/// # Example
///
/// ```
/// use neuropuls_crypto::ct::ct_eq;
///
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Map the accumulator to 0/1 without a data-dependent branch.
    acc_to_bool(acc)
}

/// Selects `a` if `choice` is true, `b` otherwise, without branching on the
/// secret `choice` bit.
#[must_use]
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg(); // 0xFF or 0x00
    (a & mask) | (b & !mask)
}

fn acc_to_bool(acc: u8) -> bool {
    // acc == 0 ⟺ equal. `(acc | acc.wrapping_neg()) >> 7` is 1 iff acc != 0.
    ((acc | acc.wrapping_neg()) >> 7) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(&[0u8; 32], &[1u8; 32]));
        // Difference only in the last byte must still be caught.
        let mut a = [7u8; 32];
        let b = a;
        a[31] ^= 0x80;
        assert!(!ct_eq(&a, &b));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select(true, 0xAA, 0x55), 0xAA);
        assert_eq!(ct_select(false, 0xAA, 0x55), 0x55);
    }
}
