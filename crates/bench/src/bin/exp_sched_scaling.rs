//! Regenerates the event-driven scheduler idle-scaling study (E22)
//! and writes `BENCH_exp_sched_scaling.json`.
//!
//! Run standalone, this binary also *enforces* the scheduler target:
//! at 1024 mostly-idle sessions the wake-based gateway must make >= 5x
//! fewer `Session::step` calls than the dense every-session-every-tick
//! loop it replaced. stdout carries only the deterministic tables (CI
//! diffs 1 thread against 8); the per-cell step counts land in the
//! bench JSON.

use neuropuls_bench::experiments::sched_scaling::{acceptance_saving, run, CellSummary};
use neuropuls_bench::Scale;

fn write_report(summary: &[CellSummary]) {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"neuropuls-bench-v1\",\n");
    json.push_str("  \"target\": \"exp_sched_scaling\",\n");
    json.push_str("  \"benchmarks\": [\n");
    for (i, &(sessions, loss, steps, dense, _, _)) in summary.iter().enumerate() {
        let pct = loss * 100.0;
        json.push_str(&format!(
            "    {{\"name\": \"wake_steps/sessions={sessions},loss={pct:.0}%\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {steps}.0, \
             \"p50_ns\": {steps}.0, \"p99_ns\": {steps}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": {steps}}},\n"
        ));
        json.push_str(&format!(
            "    {{\"name\": \"dense_equiv_steps/sessions={sessions},loss={pct:.0}%\", \
             \"samples\": 1, \"iters_per_sample\": 1, \"mean_ns\": {dense}.0, \
             \"p50_ns\": {dense}.0, \"p99_ns\": {dense}.0, \"throughput_bytes\": null, \
             \"throughput_elements\": {dense}}}{}\n",
            if i + 1 == summary.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_exp_sched_scaling.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_exp_sched_scaling.json"),
        Err(e) => eprintln!("could not write BENCH_exp_sched_scaling.json: {e}"),
    }
}

fn main() {
    let (out, summary) = run(Scale::from_args());
    print!("{out}");
    write_report(&summary);

    let saving = acceptance_saving(&summary).expect("sweep carries the 1024-session cell");
    assert!(
        saving >= 5.0,
        "wake scheduler must make >= 5x fewer step calls than the dense loop at 1024 \
         mostly-idle sessions, measured {saving:.2}x"
    );
    eprintln!("scheduler target met: {saving:.2}x fewer step calls at 1024 sessions");
}
