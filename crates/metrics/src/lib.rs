// Indexed loops over parallel arrays are the clearest form for the
// numeric kernels in this crate.
#![allow(clippy::needless_range_loop)]

//! PUF quality metrics and statistical tests.
//!
//! Implements the full metric set the paper's §II and §V call for:
//! fractional Hamming distance statistics (uniqueness, reliability),
//! uniformity, bit-aliasing entropy (the y-axis of Fig. 3), entropy
//! estimators, a NIST SP 800-22 test battery subset, and FAR/FRR
//! analysis.
//!
//! Bit strings are represented one bit per byte (`0`/`1`), which keeps
//! every estimator trivially auditable.
//!
//! # Example
//!
//! ```
//! use neuropuls_metrics::quality::uniqueness;
//!
//! let devices = vec![vec![0, 1, 1, 0], vec![1, 1, 0, 0], vec![0, 0, 1, 1]];
//! let u = uniqueness(&devices);
//! assert!(u.mean > 0.0 && u.mean < 1.0);
//! ```

pub mod bitstats;
pub mod entropy;
pub mod far_frr;
pub mod fft;
pub mod nist;
pub mod quality;
pub mod special;

pub use quality::{quality_report, MetricSummary, QualityReport};
