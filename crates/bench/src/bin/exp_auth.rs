//! Regenerates the Fig. 4 authentication campaign (E4).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _) = experiments::auth::run(scale);
    print!("{out}");
}
