//! Regenerates the §IV remanence comparison (E8).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let scale = Scale::from_args();
    let (out, _, _) = experiments::remanence::run(scale);
    print!("{out}");
}
