//! The batch driver: a fixed set of sessions run to completion over
//! one shared transport, with policy-ordered admission.

use super::admission::{AdmissionPolicy, AdmissionRequest, ClassId, Fifo};
use super::protocol_label;
use super::report::{build_class_reports, ClassAcc, GatewayOutcome, GatewayReport};
use super::slot::{
    dense_steps_at_close, dense_steps_unfinished, runnable_order, step_wake, token_side,
    wake_token, SessionPair, Slot, SlotState, WakeState,
};
use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use crate::wire::{Envelope, ProtocolId};
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::sched::TimerWheel;
use neuropuls_rt::trace::{Registry, Tracer, Value};
use std::collections::{BTreeMap, VecDeque};

/// Capacity, budget and policy knobs of one gateway run.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Sessions running concurrently (ARQ clocks ticking).
    pub max_active: usize,
    /// Sessions staged for admission; overflow waits in the backlog.
    pub accept_queue: usize,
    /// Total tick budget for the whole run.
    pub max_ticks: u64,
    /// Backlog ordering discipline. The default [`Fifo`] reproduces
    /// the pre-policy gateway byte for byte; cloning a config clones
    /// the policy's *configuration* (weights, SLA offsets), never
    /// queued state.
    pub policy: Box<dyn AdmissionPolicy>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_active: 64,
            accept_queue: 16,
            max_ticks: 4096,
            policy: Box::new(Fifo::new()),
        }
    }
}

/// Runs every session in `sessions` to completion (or failure) over the
/// shared `transport`, multiplexing frames by their envelope key.
///
/// Instrumentation: one `gateway.session` span per session (admission
/// to close, carrying protocol, ticks and retransmits), instants for
/// late / unroutable frames, and `gateway.*` counters plus a
/// `gateway.session_ticks` histogram and per-class
/// `gateway.class.<label>.*` admission accounting folded into
/// `registry`. Pass [`Tracer::disabled`] and a throwaway [`Registry`]
/// for an uninstrumented run.
///
/// The report is total: every submitted session appears in
/// [`GatewayReport::outcomes`] exactly once, on every path. Duplicate
/// `(protocol, id)` keys fail the later session immediately with
/// [`ProtocolError::OutOfOrder`] rather than corrupting the demux.
pub fn run_gateway<T: Transport>(
    transport: &mut T,
    sessions: Vec<SessionPair<'_>>,
    config: GatewayConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> GatewayReport {
    let GatewayConfig {
        max_active,
        accept_queue,
        max_ticks,
        mut policy,
    } = config;
    let policy_name = policy.name();
    let mut slots: Vec<Slot<'_>> = sessions
        .into_iter()
        .map(|pair| Slot {
            pair,
            state: SlotState::Backlog,
            inbox_a: VecDeque::new(),
            inbox_b: VecDeque::new(),
            admitted_at: None,
            ticks_active: 0,
            result: None,
            wake_a: WakeState::default(),
            wake_b: WakeState::default(),
            failed_side: None,
        })
        .collect();
    registry.counter("gateway.sessions", slots.len() as u64);

    // Demux table: envelope key -> slot index. A key maps to at most
    // one *open* slot; closed slots move to `closed_keys` so stragglers
    // are recognized as late rather than unroutable.
    let mut routes: BTreeMap<(ProtocolId, u64), usize> = BTreeMap::new();
    // Slots that actually entered the backlog (duplicates never do);
    // only these carry a backlog wait in the per-class accounting.
    let mut enqueued: Vec<bool> = vec![false; slots.len()];
    for (idx, slot) in slots.iter_mut().enumerate() {
        let key = (slot.pair.protocol, slot.pair.id);
        match routes.entry(key) {
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(idx);
                // The admission deadline the session announced at
                // submission: the earlier of the two sides' first
                // wakes (frame-driven sides announce none).
                let deadline = [
                    slot.pair.initiator.next_wake().admission_deadline(0),
                    slot.pair.responder.next_wake().admission_deadline(0),
                ]
                .into_iter()
                .flatten()
                .min();
                policy.push(AdmissionRequest {
                    idx,
                    class: slot.pair.class,
                    submitted: 0,
                    deadline,
                });
                enqueued[idx] = true;
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                slot.close(Err(ProtocolError::OutOfOrder(format!(
                    "duplicate gateway session key {}",
                    slot.pair.key_label()
                ))));
            }
        }
    }

    let mut staged: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    // position[idx] = index of slot `idx` inside `active` (usize::MAX
    // when not active); keeps rotation-key lookups O(1).
    let mut position: Vec<usize> = vec![usize::MAX; slots.len()];
    let mut late_frames = 0u64;
    let mut unroutable_frames = 0u64;
    let mut undecodable_frames = 0u64;
    let mut peak_active = 0usize;
    let mut peak_staged = 0usize;
    let mut ticks = 0u64;
    let mut open = slots.iter().filter(|s| s.result.is_none()).count();

    // Event-driven scheduling state: ARQ deadlines live in the timer
    // wheel; `carry_*` holds sides whose inbox still has queued frames
    // after this tick's step (runnable again next tick, like the dense
    // loop's one-frame-per-tick cadence); `session_steps` counts real
    // `Session::step` calls for the O(runnable) claim.
    let mut wheel = TimerWheel::new();
    let mut fired: Vec<(u64, u64)> = Vec::new();
    let mut carry_a: Vec<usize> = Vec::new();
    let mut carry_b: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut session_steps = 0u64;
    let mut dense_equiv_steps = 0u64;

    let mut route = |transport: &mut T,
                     side: Side,
                     slots: &mut Vec<Slot<'_>>,
                     tracer: &mut Tracer,
                     tick: u64,
                     pending: &mut Vec<usize>| {
        while let Some(frame) = transport.recv(side) {
            let Ok(env) = Envelope::from_bytes(&frame) else {
                undecodable_frames += 1;
                continue;
            };
            match routes.get(&(env.protocol, env.session)) {
                Some(&idx) => {
                    // invariant: `routes` only holds indices produced by
                    // enumerate() over `slots`, which never shrinks.
                    let Some(slot) = slots.get_mut(idx) else {
                        unroutable_frames += 1;
                        continue;
                    };
                    if matches!(slot.state, SlotState::Closed) {
                        late_frames += 1;
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.late_frame",
                                vec![
                                    ("protocol", Value::from(protocol_label(env.protocol))),
                                    ("session", Value::from(env.session)),
                                ],
                            );
                        }
                    } else {
                        if side == Side::A {
                            slot.inbox_a.push_back(frame);
                        } else {
                            slot.inbox_b.push_back(frame);
                        }
                        // A frame makes an active side runnable this
                        // tick; staged slots keep it queued and become
                        // runnable at admission instead.
                        if matches!(slot.state, SlotState::Active) {
                            pending.push(idx);
                        }
                    }
                }
                None => {
                    unroutable_frames += 1;
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "gateway.unroutable",
                            vec![
                                ("protocol", Value::from(protocol_label(env.protocol))),
                                ("session", Value::from(env.session)),
                            ],
                        );
                    }
                }
            }
        }
    };

    while open > 0 && ticks < max_ticks {
        let tick = ticks;
        // Sides runnable this tick: inbox frames carried over from the
        // last tick, plus admissions / timer fires / routed frames
        // collected below.
        let mut now_a: Vec<usize> = std::mem::take(&mut carry_a);
        let mut now_b: Vec<usize> = std::mem::take(&mut carry_b);

        // Phase 1 — admit: the policy drains the backlog into the
        // bounded accept queue, the accept queue fills free active
        // capacity in FIFO order.
        while staged.len() < accept_queue {
            match policy.pop() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Staged;
                    }
                    staged.push_back(idx);
                }
                None => break,
            }
        }
        peak_staged = peak_staged.max(staged.len());
        while active.len() < max_active {
            match staged.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Active;
                        slot.admitted_at = Some(tick);
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.admit",
                                vec![
                                    ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                                    ("session", Value::from(slot.pair.id)),
                                ],
                            );
                        }
                        // Arm the first wake for both sides. The dense
                        // loop steps a fresh side at the admission tick
                        // itself, so a side announcing `In(n)` fires at
                        // `tick + n - 1`; frames queued while staged
                        // make it runnable immediately.
                        for side in [Side::A, Side::B] {
                            let (session, queued) = match side {
                                Side::A => (slot.pair.initiator.as_ref(), !slot.inbox_a.is_empty()),
                                Side::B => (slot.pair.responder.as_ref(), !slot.inbox_b.is_empty()),
                            };
                            let deadline = session.next_wake().admission_deadline(tick);
                            let wake = match side {
                                Side::A => &mut slot.wake_a,
                                Side::B => &mut slot.wake_b,
                            };
                            wake.next_dense_step = tick;
                            if queued || deadline == Some(tick) {
                                match side {
                                    Side::A => now_a.push(idx),
                                    Side::B => now_b.push(idx),
                                }
                            } else if let Some(d) = deadline {
                                wake.timer = Some(wheel.schedule_at(d, wake_token(idx, side)));
                            }
                        }
                    }
                    position[idx] = active.len();
                    active.push(idx);
                }
                None => break,
            }
        }
        peak_active = peak_active.max(active.len());

        // Phase 2 — expire: collect the sides whose announced ARQ
        // deadline is this tick. Timers armed during this tick's
        // admission all lie strictly in the future.
        fired.clear();
        wheel.advance_to(tick, &mut fired);
        for &(_, token) in &fired {
            let (idx, side) = token_side(token);
            match side {
                Side::A => now_a.push(idx),
                Side::B => now_b.push(idx),
            }
        }

        // Fair rotation: which active session transmits first cycles
        // with the tick, so early slots get no standing head start on
        // the shared wire. Runnable sides are stepped in exactly the
        // rotated order the dense loop would have visited them, so the
        // shared-wire send sequence is identical.
        let len = active.len();
        let rotation = if len == 0 { 0 } else { (tick as usize) % len };

        // Phase 3/4 — deliver pending side-A frames, step runnable
        // initiators.
        route(transport, Side::A, &mut slots, tracer, tick, &mut now_a);
        let run_a = runnable_order(&mut now_a, &slots, &position, len, rotation);
        for &idx in &run_a {
            step_wake(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::A,
                tick,
                &mut session_steps,
                &mut carry_a,
                &mut touched,
            );
        }

        // Phase 5 — the responder mirror.
        route(transport, Side::B, &mut slots, tracer, tick, &mut now_b);
        let run_b = runnable_order(&mut now_b, &slots, &position, len, rotation);
        for &idx in &run_b {
            step_wake(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::B,
                tick,
                &mut session_steps,
                &mut carry_b,
                &mut touched,
            );
        }

        // Phase 6 — close finished and failed slots. Only slots stepped
        // this tick can newly satisfy a close condition, and the dense
        // loop emitted closes in rotation order, so visit the touched
        // set in that order.
        touched.sort_unstable_by_key(|&idx| (position[idx] + len - rotation) % len);
        touched.dedup();
        let mut any_closed = false;
        for &idx in &touched {
            let Some(slot) = slots.get_mut(idx) else {
                continue;
            };
            if matches!(slot.state, SlotState::Closed) {
                continue;
            }
            let ta = slot.admitted_at.unwrap_or(tick);
            if slot.result.is_some() {
                // A side failed during stepping this tick. The dense
                // loop ticked this slot's clock on every prior active
                // tick but not the failing one.
                slot.ticks_active = (tick - ta) as u32;
                slot.state = SlotState::Closed;
            } else if slot.pair.initiator.done() && slot.pair.responder.done() {
                slot.ticks_active = (tick - ta + 1) as u32;
                let t = slot.ticks_active;
                slot.close(Ok(t));
            } else {
                continue;
            }
            for wake in [&mut slot.wake_a, &mut slot.wake_b] {
                if let Some(id) = wake.timer.take() {
                    wheel.cancel(id);
                }
            }
            dense_equiv_steps += dense_steps_at_close(slot, tick);
            if tracer.is_enabled() {
                let ok = matches!(slot.result, Some(Ok(_)));
                tracer.instant(
                    tick,
                    "gateway.session_closed",
                    vec![
                        ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                        ("session", Value::from(slot.pair.id)),
                        ("ok", Value::from(ok)),
                        ("ticks", Value::from(slot.ticks_active)),
                        ("retransmits", Value::from(slot.retransmits())),
                    ],
                );
            }
            open = open.saturating_sub(1);
            any_closed = true;
        }
        touched.clear();
        if any_closed {
            active.retain(|&idx| {
                let keep = slots
                    .get(idx)
                    .is_some_and(|s| !matches!(s.state, SlotState::Closed));
                if !keep {
                    position[idx] = usize::MAX;
                }
                keep
            });
            for (pos, &idx) in active.iter().enumerate() {
                position[idx] = pos;
            }
        }

        ticks += 1;
    }

    // Budget exhausted: everything still open is unfinished. The
    // timeout error reports the retransmit tally the session had
    // actually accumulated when the budget cut it off, not a flat zero.
    let mut unfinished = 0usize;
    for slot in &mut slots {
        if slot.result.is_none() {
            unfinished += 1;
            if matches!(slot.state, SlotState::Active) {
                dense_equiv_steps += dense_steps_unfinished(slot, ticks);
            }
            let retries = slot.retransmits();
            slot.close(Err(ProtocolError::Timeout { retries }));
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut retransmits = 0u64;
    let mut class_stats: BTreeMap<ClassId, ClassAcc> = BTreeMap::new();
    let outcomes: Vec<GatewayOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| {
            let result = slot
                .result
                .unwrap_or(Err(ProtocolError::Timeout { retries: 0 }));
            let ok = result.is_ok();
            match &result {
                Ok(t) => {
                    completed += 1;
                    registry.observe("gateway.session_ticks", f64::from(*t));
                }
                Err(_) => failed += 1,
            }
            let acc = class_stats.entry(slot.pair.class).or_default();
            acc.submitted += 1;
            if ok {
                acc.completed += 1;
            }
            match slot.admitted_at {
                Some(at) => {
                    acc.admitted += 1;
                    acc.waits.push(at);
                }
                // Submitted but never admitted: the wait is censored at
                // the run length so starvation shows up in the p99
                // instead of vanishing.
                None if enqueued[idx] => acc.waits.push(ticks),
                None => {}
            }
            let r = slot.pair.initiator.retransmits() + slot.pair.responder.retransmits();
            retransmits += u64::from(r);
            GatewayOutcome {
                protocol: slot.pair.protocol,
                id: slot.pair.id,
                class: slot.pair.class,
                result,
                retransmits: r,
                admitted_at: slot.admitted_at,
            }
        })
        .collect();
    // `failed` counted every Err outcome; unfinished sessions are their
    // own column, not protocol failures.
    failed = failed.saturating_sub(unfinished);

    registry.counter("gateway.completed", completed as u64);
    registry.counter("gateway.failed", failed as u64);
    registry.counter("gateway.unfinished", unfinished as u64);
    registry.counter("gateway.retransmits", retransmits);
    registry.counter("gateway.late_frames", late_frames);
    registry.counter("gateway.unroutable_frames", unroutable_frames);
    registry.counter("gateway.undecodable_frames", undecodable_frames);
    registry.counter("gateway.session_steps", session_steps);
    registry.counter("gateway.dense_equiv_steps", dense_equiv_steps);
    let per_class = build_class_reports(class_stats, registry);

    let report = GatewayReport {
        sessions: outcomes.len(),
        completed,
        failed,
        unfinished,
        ticks,
        retransmits,
        late_frames,
        unroutable_frames,
        undecodable_frames,
        peak_active,
        peak_staged,
        session_steps,
        dense_equiv_steps,
        policy: policy_name,
        per_class,
        outcomes,
    };
    if tracer.is_enabled() {
        tracer.instant(
            ticks.saturating_sub(1),
            "gateway.result",
            vec![
                ("sessions", Value::from(report.sessions)),
                ("completed", Value::from(report.completed)),
                ("failed", Value::from(report.failed)),
                ("unfinished", Value::from(report.unfinished)),
                ("ticks", Value::from(report.ticks)),
                ("retransmits", Value::from(report.retransmits)),
                ("late_frames", Value::from(report.late_frames)),
                ("peak_active", Value::from(report.peak_active)),
            ],
        );
    }
    report
}
