//! Deterministic cryptographic pseudo-random generator.
//!
//! The mutual authentication protocol of the paper derives the next
//! challenge from the current response, `c_{i+1} = RNG(r_i)`, with an RNG
//! "known to both participants". [`CsPrng`] is that function: a ChaCha20
//! keystream generator seeded from arbitrary bytes through HKDF, so both
//! the Device and the Verifier derive identical challenge streams from the
//! shared response.

use crate::chacha20::ChaCha20;
use crate::hkdf;
use neuropuls_rt::RngCore;

/// ChaCha20-based deterministic CSPRNG.
///
/// # Example
///
/// ```
/// use neuropuls_crypto::prng::CsPrng;
///
/// let mut device = CsPrng::from_seed_bytes(b"response-i");
/// let mut verifier = CsPrng::from_seed_bytes(b"response-i");
/// assert_eq!(device.next_bytes(16), verifier.next_bytes(16));
/// ```
#[derive(Debug, Clone)]
pub struct CsPrng {
    cipher: ChaCha20,
}

impl CsPrng {
    /// Seeds the generator from arbitrary bytes (e.g. a PUF response).
    ///
    /// The seed is stretched through HKDF so that short or biased seeds
    /// still key the full ChaCha20 state; two different seeds of any length
    /// produce independent streams.
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        let mut key = [0u8; 32];
        // HKDF with a fixed domain-separation label; cannot fail for 32 B.
        hkdf::derive(b"neuropuls/prng", seed, b"seed-expansion", &mut key)
            .expect("32-byte HKDF output is always valid");
        CsPrng {
            cipher: ChaCha20::new(&key, &[0u8; 12]),
        }
    }

    /// Seeds from a 32-byte key directly (no stretching).
    pub fn from_key(key: [u8; 32]) -> Self {
        CsPrng {
            cipher: ChaCha20::new(&key, &[0u8; 12]),
        }
    }

    /// Returns the next `n` pseudo-random bytes.
    pub fn next_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.cipher.apply(&mut out);
        out
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        buf.iter_mut().for_each(|b| *b = 0);
        self.cipher.apply(buf);
    }

    /// Returns a uniformly distributed `u64` below `bound` (rejection
    /// sampling, so the distribution is exactly uniform).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl RngCore for CsPrng {
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill(&mut buf);
        u32::from_le_bytes(buf)
    }

    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill(&mut buf);
        u64::from_le_bytes(buf)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), neuropuls_rt::Error> {
        self.fill(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = CsPrng::from_seed_bytes(b"seed");
        let mut b = CsPrng::from_seed_bytes(b"seed");
        assert_eq!(a.next_bytes(100), b.next_bytes(100));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = CsPrng::from_seed_bytes(b"seed-a");
        let mut b = CsPrng::from_seed_bytes(b"seed-b");
        assert_ne!(a.next_bytes(32), b.next_bytes(32));
    }

    #[test]
    fn stream_is_stateful() {
        let mut prng = CsPrng::from_seed_bytes(b"s");
        let first = prng.next_bytes(16);
        let second = prng.next_bytes(16);
        assert_ne!(first, second);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut prng = CsPrng::from_seed_bytes(b"bound");
        for _ in 0..1000 {
            assert!(prng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut prng = CsPrng::from_seed_bytes(b"coverage");
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[prng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rngcore_interface_works() {
        let mut prng = CsPrng::from_seed_bytes(b"rngcore");
        let a = prng.next_u32();
        let b = prng.next_u32();
        assert_ne!((a, b), (0, 0));
        let mut buf = [0u8; 33];
        prng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 33]);
    }

    #[test]
    fn rough_uniformity_of_bytes() {
        let mut prng = CsPrng::from_seed_bytes(b"uniform");
        let bytes = prng.next_bytes(100_000);
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        let total = bytes.len() as f64 * 8.0;
        let fraction = f64::from(ones) / total;
        assert!((fraction - 0.5).abs() < 0.01, "bit bias {fraction}");
    }
}
