//! E19 — instrumentation overhead: the E17 fleet workload run untraced
//! and fully traced (event tracer + metrics registry), comparing wall
//! clocks and asserting the reports are identical. The traced run's
//! event log is the `TRACE_exp_fleet.jsonl` artifact the determinism
//! gate diffs across thread counts: the fleet simulation is a single
//! serial discrete-event run, so its trace is byte-identical at any
//! `NEUROPULS_THREADS` value.
//!
//! Wall clocks are host measurements and therefore volatile; the <5%
//! overhead budget is enforced by the standalone `exp_trace_overhead`
//! binary (quiet machine), not here, so `exp_all`'s noisy parallel
//! schedule cannot flake the suite.

use crate::{Rendered, Scale};
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_system::fleet::{run_fleet, FleetConfig};
use std::time::Instant;

/// Measured outcome of the overhead comparison.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Relative wall-clock overhead of the traced run (min-of-reps
    /// traced / min-of-reps untraced − 1). Host-measured: volatile.
    pub overhead_frac: f64,
    /// Trace events recorded by the traced run (deterministic).
    pub events: usize,
    /// The traced run's event log, one JSON object per line.
    pub trace_jsonl: String,
    /// The traced run's metrics registry, one JSON object per line.
    pub metrics_jsonl: String,
}

/// The fleet workload both runs execute.
fn workload(scale: Scale) -> FleetConfig {
    FleetConfig {
        devices: scale.pick(8, 24),
        period_us: 4.0,
        horizon_us: scale.pick(40.0, 160.0),
        ..FleetConfig::default()
    }
}

/// Runs the overhead comparison: `reps` untraced and `reps` traced
/// passes over the same workload, keeping the minimum wall clock of
/// each (the minimum is the least noise-contaminated estimate of the
/// true cost).
pub fn run(scale: Scale) -> (Rendered, Outcome) {
    let config = workload(scale);
    let reps = 3;

    let mut untraced_ns = f64::INFINITY;
    let mut untraced_report = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_fleet(&config, &mut Tracer::disabled(), &Registry::new());
        untraced_ns = untraced_ns.min(t0.elapsed().as_nanos() as f64);
        untraced_report = Some(report);
    }

    let mut traced_ns = f64::INFINITY;
    let mut traced_artifacts = None;
    for _ in 0..reps {
        let mut tracer = Tracer::new();
        let registry = Registry::new();
        let t0 = Instant::now();
        let report = run_fleet(&config, &mut tracer, &registry);
        traced_ns = traced_ns.min(t0.elapsed().as_nanos() as f64);
        traced_artifacts = Some((report, tracer, registry));
    }
    // invariant: reps > 0, so both Options were written.
    let untraced_report = untraced_report.expect("at least one untraced rep");
    let (traced_report, tracer, registry) = traced_artifacts.expect("at least one traced rep");
    assert_eq!(
        traced_report, untraced_report,
        "tracing must not perturb the simulation"
    );

    let outcome = Outcome {
        overhead_frac: traced_ns / untraced_ns - 1.0,
        events: tracer.len(),
        trace_jsonl: tracer.to_jsonl(),
        metrics_jsonl: registry.to_jsonl(),
    };

    let mut out = Rendered::new("E19 — instrumentation overhead on the fleet workload");
    out.push(format!(
        "workload: {} devices, {} verifiers, horizon {} µs — {} requests, {} attestations",
        config.devices,
        config.verifiers,
        config.horizon_us,
        traced_report.requests,
        traced_report.attestations
    ));
    out.push(format!(
        "traced run recorded {} events, {} metric series; \
         reports byte-identical traced vs untraced",
        outcome.events,
        outcome.metrics_jsonl.lines().count(),
    ));
    out.push(format!(
        "turnaround p99 from the traced registry: {:.1} µs (histogram upper edge)",
        registry.quantile("fleet.turnaround_ns", 0.99) / 1000.0
    ));
    out.push_volatile(format!(
        "wall clock (min of {reps}): untraced {:.2} ms, traced {:.2} ms — overhead {:+.2}%",
        untraced_ns / 1e6,
        traced_ns / 1e6,
        outcome.overhead_frac * 100.0
    ));
    (out, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_trace_overhead() {
        let (rendered, o) = run(Scale::Smoke);
        assert!(o.events > 0, "traced run must record events");
        assert!(o.trace_jsonl.lines().count() == o.events);
        assert!(o.metrics_jsonl.contains("fleet.turnaround_ns"));
        assert!(rendered.stable_string().contains("attestations"));
        // Rerunning at the same scale reproduces the trace byte for
        // byte — the artifact the CI determinism gate diffs.
        let (_, again) = run(Scale::Smoke);
        assert_eq!(again.trace_jsonl, o.trace_jsonl);
        assert_eq!(again.metrics_jsonl, o.metrics_jsonl);
    }
}
