//! Concurrent session gateway: many wire sessions, one transport.
//!
//! The §III drivers in [`crate::wire`] run exactly one session per
//! channel. A production verifier terminates *fleets*: hundreds of
//! devices authenticate, attest, key-exchange and stream inference
//! blobs over one physical link. This module multiplexes any number of
//! concurrent [`Session`] pairs — all four protocols mixed freely —
//! over a single shared [`Transport`] by demultiplexing on the
//! [`Envelope`] tags (`protocol`, `session`) that every frame already
//! carries.
//!
//! # Scheduling model
//!
//! The gateway is a deterministic *event-driven* poll loop. The
//! original implementation stepped every active session on every tick,
//! so a session idling out a 3-tick ARQ timeout cost as much as one
//! doing work. The current loop instead wakes a session side only when
//! something can actually happen to it — a frame arrived for it, or
//! its ARQ timer (announced via [`Session::next_wake`]) expires — and
//! fast-forwards the skipped silent steps in O(1) with
//! [`Session::skip_silence`]. Timer expiry is tracked by a
//! [`neuropuls_rt::sched::TimerWheel`], so per-tick work is
//! proportional to the number of *runnable* sides, not the number of
//! active sessions.
//!
//! Each tick:
//!
//! 1. **Admit** — sessions move backlog → accept queue → active set.
//!    The accept queue is bounded ([`GatewayConfig::accept_queue`]) and
//!    the active set is bounded ([`GatewayConfig::max_active`]); a
//!    session's ARQ clock only runs while it is active, so queued
//!    sessions cannot time out waiting for admission. Newly admitted
//!    sides arm their first wake.
//! 2. **Expire** — the timer wheel advances one tick and yields the
//!    sides whose ARQ deadline is now.
//! 3. **Route A** — every frame pending on [`Side::A`] is decoded and
//!    appended to the owning session's initiator inbox; the owning
//!    side becomes runnable.
//! 4. **Step runnable initiators** — each runnable initiator is
//!    stepped with at most one inbox frame, ordered by the same
//!    tick-rotated round-robin the dense loop used, so no session
//!    systematically transmits first and the shared-wire send order is
//!    identical to the dense schedule.
//! 5. **Route B / step runnable responders** — the mirror image for
//!    [`Side::B`].
//! 6. **Close** — slots touched this tick whose two sides both
//!    finished (or either side failed) leave the active set, freeing
//!    capacity for the queue.
//!
//! The wake contract makes this observationally identical to the dense
//! loop: a session reporting [`NextWake::In`]`(n)` guarantees its next
//! `n - 1` frameless steps are silent idle-clock ticks, which
//! `skip_silence` replays in one call right before the next real step.
//! The per-session cadence of [`crate::wire::drive`] is
//! preserved exactly: an initiator frame sent on tick *t* reaches the
//! responder on tick *t*, and the reply reaches the initiator on tick
//! *t + 1*. Over a lossless transport the gateway therefore produces,
//! per session, byte-identical wire transcripts to running each
//! session alone (`tests/` pins this property), and the golden
//! mixed-protocol trace is byte-identical to the dense loop's.
//!
//! # Demux rules
//!
//! * Frames that do not decode as an [`Envelope`] are dropped and
//!   counted (`undecodable_frames`); a session treats a missing frame
//!   exactly like decoded noise, so this cannot change behavior.
//! * Frames whose `(protocol, session)` key matches a *closed* slot are
//!   late arrivals — duplicates or reordered stragglers from a session
//!   that already completed. They are dropped and counted
//!   (`late_frames`), never silently lost.
//! * Frames with an unknown key are counted as `unroutable_frames`.
//!
//! The gateway itself is single-threaded and allocation-light;
//! fleet-scale runs fan out *independent* gateways (one per shared
//! link) on `neuropuls_rt::pool`, whose ordered-merge contract keeps
//! the aggregate deterministic under any thread count.

use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use crate::wire::{Envelope, NextWake, ProtocolId, Session, SessionAction};
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::sched::{TimerId, TimerWheel};
use neuropuls_rt::trace::{Registry, Tracer, Value};
use std::collections::{BTreeMap, VecDeque};

/// Human-readable protocol label for traces and reports.
pub fn protocol_label(protocol: ProtocolId) -> &'static str {
    match protocol {
        ProtocolId::MutualAuth => "mutual_auth",
        ProtocolId::Attestation => "attestation",
        ProtocolId::Eke => "eke",
        ProtocolId::SecureNn => "secure_nn",
    }
}

/// One session to multiplex: the two endpoints plus the envelope key
/// (`protocol`, `id`) its frames carry on the shared wire.
pub struct SessionPair<'x> {
    /// Service discriminator routed on.
    pub protocol: ProtocolId,
    /// Session identifier routed on (chosen unique by the caller).
    pub id: u64,
    /// The [`Side::A`] endpoint (verifier / client / initiator).
    pub initiator: Box<dyn Session + 'x>,
    /// The [`Side::B`] endpoint (device / accelerator / responder).
    pub responder: Box<dyn Session + 'x>,
}

/// Capacity and budget knobs of one gateway run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Sessions running concurrently (ARQ clocks ticking).
    pub max_active: usize,
    /// Sessions staged for admission; overflow waits in the backlog.
    pub accept_queue: usize,
    /// Total tick budget for the whole run.
    pub max_ticks: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_active: 64,
            accept_queue: 16,
            max_ticks: 4096,
        }
    }
}

/// Terminal state of one multiplexed session.
#[derive(Debug)]
pub struct GatewayOutcome {
    /// Service the session ran.
    pub protocol: ProtocolId,
    /// Envelope session id.
    pub id: u64,
    /// Active ticks to completion, or the failure that ended it.
    /// Sessions still queued or in flight when the tick budget ran out
    /// report [`ProtocolError::Timeout`] carrying the retransmit tally
    /// the session had actually accumulated when the budget cut it off.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both endpoints.
    pub retransmits: u32,
    /// Tick the session entered the active set (`None` = never admitted).
    pub admitted_at: Option<u64>,
}

/// Aggregate outcome of one gateway run.
#[derive(Debug)]
pub struct GatewayReport {
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions that completed both sides.
    pub completed: usize,
    /// Sessions that failed with a protocol error.
    pub failed: usize,
    /// Sessions still queued or in flight at the tick budget.
    pub unfinished: usize,
    /// Ticks consumed (≤ [`GatewayConfig::max_ticks`]).
    pub ticks: u64,
    /// Total frames retransmitted across all sessions.
    pub retransmits: u64,
    /// Frames routed to an already-closed session (counted, dropped).
    pub late_frames: u64,
    /// Decoded frames whose key matched no known session.
    pub unroutable_frames: u64,
    /// Frames that did not decode as an [`Envelope`].
    pub undecodable_frames: u64,
    /// Most sessions simultaneously active.
    pub peak_active: usize,
    /// Most sessions simultaneously staged in the accept queue.
    pub peak_staged: usize,
    /// [`Session::step`] calls the event-driven scheduler actually made.
    pub session_steps: u64,
    /// `Session::step` calls the dense every-session-every-tick loop
    /// would have made for the same run; the ratio to `session_steps`
    /// is the scheduler's work saving on mostly-idle session mixes.
    pub dense_equiv_steps: u64,
    /// Per-session outcomes, in submission order.
    pub outcomes: Vec<GatewayOutcome>,
}

impl GatewayReport {
    /// Whether every submitted session completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.sessions
    }
}

enum SlotState {
    Backlog,
    Staged,
    Active,
    Closed,
}

/// Event-scheduling bookkeeping for one side of one slot.
#[derive(Clone, Copy, Default)]
struct WakeState {
    /// Tick of the next dense-loop step not yet replayed: every dense
    /// step before it has been applied, either directly or folded into
    /// a [`Session::skip_silence`] fast-forward.
    next_dense_step: u64,
    /// Armed timer for the side's announced wake deadline.
    timer: Option<TimerId>,
    /// Tick this side first reported done (`None` while in flight).
    done_tick: Option<u64>,
    /// Steps taken after done — frame-driven duplicate re-serves.
    post_done_steps: u64,
}

struct Slot<'x> {
    pair: SessionPair<'x>,
    state: SlotState,
    inbox_a: VecDeque<Vec<u8>>,
    inbox_b: VecDeque<Vec<u8>>,
    admitted_at: Option<u64>,
    ticks_active: u32,
    result: Option<Result<u32, ProtocolError>>,
    wake_a: WakeState,
    wake_b: WakeState,
    /// Which side's step failure closed the slot (ordering detail the
    /// dense-equivalent step accounting needs).
    failed_side: Option<Side>,
}

impl Slot<'_> {
    fn close(&mut self, result: Result<u32, ProtocolError>) {
        self.state = SlotState::Closed;
        self.result = Some(result);
    }

    fn retransmits(&self) -> u32 {
        self.pair.initiator.retransmits() + self.pair.responder.retransmits()
    }
}

/// Timer-wheel token for one side of one slot.
fn wake_token(idx: usize, side: Side) -> u64 {
    ((idx as u64) << 1) | u64::from(side == Side::B)
}

/// Inverse of [`wake_token`].
fn token_side(token: u64) -> (usize, Side) {
    let side = if token & 1 == 0 { Side::A } else { Side::B };
    ((token >> 1) as usize, side)
}

/// Runs every session in `sessions` to completion (or failure) over the
/// shared `transport`, multiplexing frames by their envelope key.
///
/// Instrumentation: one `gateway.session` span per session (admission
/// to close, carrying protocol, ticks and retransmits), instants for
/// late / unroutable frames, and `gateway.*` counters plus a
/// `gateway.session_ticks` histogram folded into `registry`. Pass
/// [`Tracer::disabled`] and a throwaway [`Registry`] for an
/// uninstrumented run.
///
/// The report is total: every submitted session appears in
/// [`GatewayReport::outcomes`] exactly once, on every path. Duplicate
/// `(protocol, id)` keys fail the later session immediately with
/// [`ProtocolError::OutOfOrder`] rather than corrupting the demux.
pub fn run_gateway<T: Transport>(
    transport: &mut T,
    sessions: Vec<SessionPair<'_>>,
    config: GatewayConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> GatewayReport {
    let mut slots: Vec<Slot<'_>> = sessions
        .into_iter()
        .map(|pair| Slot {
            pair,
            state: SlotState::Backlog,
            inbox_a: VecDeque::new(),
            inbox_b: VecDeque::new(),
            admitted_at: None,
            ticks_active: 0,
            result: None,
            wake_a: WakeState::default(),
            wake_b: WakeState::default(),
            failed_side: None,
        })
        .collect();
    registry.counter("gateway.sessions", slots.len() as u64);

    // Demux table: envelope key -> slot index. A key maps to at most
    // one *open* slot; closed slots move to `closed_keys` so stragglers
    // are recognized as late rather than unroutable.
    let mut routes: BTreeMap<(ProtocolId, u64), usize> = BTreeMap::new();
    let mut backlog: VecDeque<usize> = VecDeque::new();
    for (idx, slot) in slots.iter_mut().enumerate() {
        let key = (slot.pair.protocol, slot.pair.id);
        match routes.entry(key) {
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(idx);
                backlog.push_back(idx);
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                slot.close(Err(ProtocolError::OutOfOrder(format!(
                    "duplicate gateway session key {}/{}",
                    protocol_label(key.0),
                    key.1
                ))));
            }
        }
    }

    let mut staged: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    // position[idx] = index of slot `idx` inside `active` (usize::MAX
    // when not active); keeps rotation-key lookups O(1).
    let mut position: Vec<usize> = vec![usize::MAX; slots.len()];
    let mut late_frames = 0u64;
    let mut unroutable_frames = 0u64;
    let mut undecodable_frames = 0u64;
    let mut peak_active = 0usize;
    let mut peak_staged = 0usize;
    let mut ticks = 0u64;
    let mut open = slots.iter().filter(|s| s.result.is_none()).count();

    // Event-driven scheduling state: ARQ deadlines live in the timer
    // wheel; `carry_*` holds sides whose inbox still has queued frames
    // after this tick's step (runnable again next tick, like the dense
    // loop's one-frame-per-tick cadence); `session_steps` counts real
    // `Session::step` calls for the O(runnable) claim.
    let mut wheel = TimerWheel::new();
    let mut fired: Vec<(u64, u64)> = Vec::new();
    let mut carry_a: Vec<usize> = Vec::new();
    let mut carry_b: Vec<usize> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut session_steps = 0u64;
    let mut dense_equiv_steps = 0u64;

    let mut route = |transport: &mut T,
                     side: Side,
                     slots: &mut Vec<Slot<'_>>,
                     tracer: &mut Tracer,
                     tick: u64,
                     pending: &mut Vec<usize>| {
        while let Some(frame) = transport.recv(side) {
            let Ok(env) = Envelope::from_bytes(&frame) else {
                undecodable_frames += 1;
                continue;
            };
            match routes.get(&(env.protocol, env.session)) {
                Some(&idx) => {
                    // invariant: `routes` only holds indices produced by
                    // enumerate() over `slots`, which never shrinks.
                    let Some(slot) = slots.get_mut(idx) else {
                        unroutable_frames += 1;
                        continue;
                    };
                    if matches!(slot.state, SlotState::Closed) {
                        late_frames += 1;
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.late_frame",
                                vec![
                                    ("protocol", Value::from(protocol_label(env.protocol))),
                                    ("session", Value::from(env.session)),
                                ],
                            );
                        }
                    } else {
                        if side == Side::A {
                            slot.inbox_a.push_back(frame);
                        } else {
                            slot.inbox_b.push_back(frame);
                        }
                        // A frame makes an active side runnable this
                        // tick; staged slots keep it queued and become
                        // runnable at admission instead.
                        if matches!(slot.state, SlotState::Active) {
                            pending.push(idx);
                        }
                    }
                }
                None => {
                    unroutable_frames += 1;
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "gateway.unroutable",
                            vec![
                                ("protocol", Value::from(protocol_label(env.protocol))),
                                ("session", Value::from(env.session)),
                            ],
                        );
                    }
                }
            }
        }
    };

    while open > 0 && ticks < config.max_ticks {
        let tick = ticks;
        // Sides runnable this tick: inbox frames carried over from the
        // last tick, plus admissions / timer fires / routed frames
        // collected below.
        let mut now_a: Vec<usize> = std::mem::take(&mut carry_a);
        let mut now_b: Vec<usize> = std::mem::take(&mut carry_b);

        // Phase 1 — admit: backlog refills the bounded accept queue,
        // the accept queue fills free active capacity, FIFO throughout.
        while staged.len() < config.accept_queue {
            match backlog.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Staged;
                    }
                    staged.push_back(idx);
                }
                None => break,
            }
        }
        peak_staged = peak_staged.max(staged.len());
        while active.len() < config.max_active {
            match staged.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Active;
                        slot.admitted_at = Some(tick);
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.admit",
                                vec![
                                    ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                                    ("session", Value::from(slot.pair.id)),
                                ],
                            );
                        }
                        // Arm the first wake for both sides. The dense
                        // loop steps a fresh side at the admission tick
                        // itself, so a side announcing `In(n)` fires at
                        // `tick + n - 1`; frames queued while staged
                        // make it runnable immediately.
                        for side in [Side::A, Side::B] {
                            let (session, queued) = match side {
                                Side::A => (slot.pair.initiator.as_ref(), !slot.inbox_a.is_empty()),
                                Side::B => (slot.pair.responder.as_ref(), !slot.inbox_b.is_empty()),
                            };
                            let deadline = match session.next_wake() {
                                NextWake::EveryTick => Some(tick),
                                NextWake::In(n) => Some(tick + u64::from(n.saturating_sub(1))),
                                NextWake::OnFrame => None,
                            };
                            let wake = match side {
                                Side::A => &mut slot.wake_a,
                                Side::B => &mut slot.wake_b,
                            };
                            wake.next_dense_step = tick;
                            if queued || deadline == Some(tick) {
                                match side {
                                    Side::A => now_a.push(idx),
                                    Side::B => now_b.push(idx),
                                }
                            } else if let Some(d) = deadline {
                                wake.timer = Some(wheel.schedule_at(d, wake_token(idx, side)));
                            }
                        }
                    }
                    position[idx] = active.len();
                    active.push(idx);
                }
                None => break,
            }
        }
        peak_active = peak_active.max(active.len());

        // Phase 2 — expire: collect the sides whose announced ARQ
        // deadline is this tick. Timers armed during this tick's
        // admission all lie strictly in the future.
        fired.clear();
        wheel.advance_to(tick, &mut fired);
        for &(_, token) in &fired {
            let (idx, side) = token_side(token);
            match side {
                Side::A => now_a.push(idx),
                Side::B => now_b.push(idx),
            }
        }

        // Fair rotation: which active session transmits first cycles
        // with the tick, so early slots get no standing head start on
        // the shared wire. Runnable sides are stepped in exactly the
        // rotated order the dense loop would have visited them, so the
        // shared-wire send sequence is identical.
        let len = active.len();
        let rotation = if len == 0 { 0 } else { (tick as usize) % len };

        // Phase 3/4 — deliver pending side-A frames, step runnable
        // initiators.
        route(transport, Side::A, &mut slots, tracer, tick, &mut now_a);
        let run_a = runnable_order(&mut now_a, &slots, &position, len, rotation);
        for &idx in &run_a {
            step_wake(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::A,
                tick,
                &mut session_steps,
                &mut carry_a,
                &mut touched,
            );
        }

        // Phase 5 — the responder mirror.
        route(transport, Side::B, &mut slots, tracer, tick, &mut now_b);
        let run_b = runnable_order(&mut now_b, &slots, &position, len, rotation);
        for &idx in &run_b {
            step_wake(
                transport,
                &mut slots,
                &mut wheel,
                idx,
                Side::B,
                tick,
                &mut session_steps,
                &mut carry_b,
                &mut touched,
            );
        }

        // Phase 6 — close finished and failed slots. Only slots stepped
        // this tick can newly satisfy a close condition, and the dense
        // loop emitted closes in rotation order, so visit the touched
        // set in that order.
        touched.sort_unstable_by_key(|&idx| (position[idx] + len - rotation) % len);
        touched.dedup();
        let mut any_closed = false;
        for &idx in &touched {
            let Some(slot) = slots.get_mut(idx) else {
                continue;
            };
            if matches!(slot.state, SlotState::Closed) {
                continue;
            }
            let ta = slot.admitted_at.unwrap_or(tick);
            if slot.result.is_some() {
                // A side failed during stepping this tick. The dense
                // loop ticked this slot's clock on every prior active
                // tick but not the failing one.
                slot.ticks_active = (tick - ta) as u32;
                slot.state = SlotState::Closed;
            } else if slot.pair.initiator.done() && slot.pair.responder.done() {
                slot.ticks_active = (tick - ta + 1) as u32;
                let t = slot.ticks_active;
                slot.close(Ok(t));
            } else {
                continue;
            }
            for wake in [&mut slot.wake_a, &mut slot.wake_b] {
                if let Some(id) = wake.timer.take() {
                    wheel.cancel(id);
                }
            }
            dense_equiv_steps += dense_steps_at_close(slot, tick);
            if tracer.is_enabled() {
                let ok = matches!(slot.result, Some(Ok(_)));
                tracer.instant(
                    tick,
                    "gateway.session_closed",
                    vec![
                        ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                        ("session", Value::from(slot.pair.id)),
                        ("ok", Value::from(ok)),
                        ("ticks", Value::from(slot.ticks_active)),
                        ("retransmits", Value::from(slot.retransmits())),
                    ],
                );
            }
            open = open.saturating_sub(1);
            any_closed = true;
        }
        touched.clear();
        if any_closed {
            active.retain(|&idx| {
                let keep = slots
                    .get(idx)
                    .is_some_and(|s| !matches!(s.state, SlotState::Closed));
                if !keep {
                    position[idx] = usize::MAX;
                }
                keep
            });
            for (pos, &idx) in active.iter().enumerate() {
                position[idx] = pos;
            }
        }

        ticks += 1;
    }

    // Budget exhausted: everything still open is unfinished. The
    // timeout error reports the retransmit tally the session had
    // actually accumulated when the budget cut it off, not a flat zero.
    let mut unfinished = 0usize;
    for slot in &mut slots {
        if slot.result.is_none() {
            unfinished += 1;
            if matches!(slot.state, SlotState::Active) {
                dense_equiv_steps += dense_steps_unfinished(slot, ticks);
            }
            let retries = slot.retransmits();
            slot.close(Err(ProtocolError::Timeout { retries }));
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut retransmits = 0u64;
    let outcomes: Vec<GatewayOutcome> = slots
        .into_iter()
        .map(|slot| {
            let result = slot
                .result
                .unwrap_or(Err(ProtocolError::Timeout { retries: 0 }));
            match &result {
                Ok(t) => {
                    completed += 1;
                    registry.observe("gateway.session_ticks", f64::from(*t));
                }
                Err(_) => failed += 1,
            }
            let r = slot.pair.initiator.retransmits() + slot.pair.responder.retransmits();
            retransmits += u64::from(r);
            GatewayOutcome {
                protocol: slot.pair.protocol,
                id: slot.pair.id,
                result,
                retransmits: r,
                admitted_at: slot.admitted_at,
            }
        })
        .collect();
    // `failed` counted every Err outcome; unfinished sessions are their
    // own column, not protocol failures.
    failed = failed.saturating_sub(unfinished);

    registry.counter("gateway.completed", completed as u64);
    registry.counter("gateway.failed", failed as u64);
    registry.counter("gateway.unfinished", unfinished as u64);
    registry.counter("gateway.retransmits", retransmits);
    registry.counter("gateway.late_frames", late_frames);
    registry.counter("gateway.unroutable_frames", unroutable_frames);
    registry.counter("gateway.undecodable_frames", undecodable_frames);
    registry.counter("gateway.session_steps", session_steps);
    registry.counter("gateway.dense_equiv_steps", dense_equiv_steps);

    let report = GatewayReport {
        sessions: outcomes.len(),
        completed,
        failed,
        unfinished,
        ticks,
        retransmits,
        late_frames,
        unroutable_frames,
        undecodable_frames,
        peak_active,
        peak_staged,
        session_steps,
        dense_equiv_steps,
        outcomes,
    };
    if tracer.is_enabled() {
        tracer.instant(
            ticks.saturating_sub(1),
            "gateway.result",
            vec![
                ("sessions", Value::from(report.sessions)),
                ("completed", Value::from(report.completed)),
                ("failed", Value::from(report.failed)),
                ("unfinished", Value::from(report.unfinished)),
                ("ticks", Value::from(report.ticks)),
                ("retransmits", Value::from(report.retransmits)),
                ("late_frames", Value::from(report.late_frames)),
                ("peak_active", Value::from(report.peak_active)),
            ],
        );
    }
    report
}

/// Dedups one tick's candidate runnable sides and orders them exactly
/// as the dense loop's tick-rotated round-robin would have visited
/// them. Stale candidates (slots no longer active) are dropped.
fn runnable_order(
    cand: &mut Vec<usize>,
    slots: &[Slot<'_>],
    position: &[usize],
    len: usize,
    rotation: usize,
) -> Vec<usize> {
    if len == 0 {
        cand.clear();
        return Vec::new();
    }
    let mut keyed: Vec<(usize, usize)> = cand
        .drain(..)
        .filter(|&idx| {
            slots
                .get(idx)
                .is_some_and(|s| matches!(s.state, SlotState::Active))
                && position.get(idx).is_some_and(|&p| p != usize::MAX)
        })
        .map(|idx| ((position[idx] + len - rotation) % len, idx))
        .collect();
    keyed.sort_unstable();
    keyed.dedup();
    keyed.into_iter().map(|(_, idx)| idx).collect()
}

/// Steps one runnable side of one active slot with at most one inbox
/// frame, after fast-forwarding the silent steps the dense loop would
/// have taken since the side's last real step. Mirrors the per-tick
/// cadence of [`crate::wire::drive`]: a finished side with an
/// empty inbox is left alone (its clock stops), a finished side *with*
/// a frame still steps so it can re-serve duplicates, and a step
/// failure closes the whole slot. Re-arms the side's wake timer from
/// [`Session::next_wake`] and carries the side to the next tick when
/// its inbox still holds queued frames.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
fn step_wake<T: Transport>(
    transport: &mut T,
    slots: &mut [Slot<'_>],
    wheel: &mut TimerWheel,
    idx: usize,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
    carry: &mut Vec<usize>,
    touched: &mut Vec<usize>,
) {
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    if slot.result.is_some() || !matches!(slot.state, SlotState::Active) {
        return;
    }
    let frame = match side {
        Side::A => slot.inbox_a.pop_front(),
        Side::B => slot.inbox_b.pop_front(),
    };
    let queued_after = match side {
        Side::A => !slot.inbox_a.is_empty(),
        Side::B => !slot.inbox_b.is_empty(),
    };
    let (session, wake): (&mut dyn Session, &mut WakeState) = match side {
        Side::A => (slot.pair.initiator.as_mut(), &mut slot.wake_a),
        Side::B => (slot.pair.responder.as_mut(), &mut slot.wake_b),
    };
    if frame.is_none() && session.done() {
        // The dense loop skips a finished side with nothing to read.
        return;
    }
    touched.push(idx);
    let was_done = session.done();
    if !was_done {
        // Replay the frameless steps the dense loop took between this
        // side's last real step and now; the `NextWake` contract
        // guarantees they were all silent idle-clock ticks.
        let gap = tick.saturating_sub(wake.next_dense_step);
        if gap > 0 {
            session.skip_silence(gap as u32);
        }
    }
    *session_steps += 1;
    let step_result = session.step(frame.as_deref());
    let now_done = session.done();
    let wants = if step_result.is_ok() && !now_done {
        Some(session.next_wake())
    } else {
        None
    };
    wake.next_dense_step = tick + 1;
    if was_done {
        wake.post_done_steps += 1;
    } else if now_done && wake.done_tick.is_none() {
        wake.done_tick = Some(tick);
    }
    if let Some(id) = wake.timer.take() {
        wheel.cancel(id);
    }
    if let Some(w) = wants {
        let deadline = match w {
            NextWake::EveryTick => Some(tick + 1),
            NextWake::In(n) => Some(tick + u64::from(n.max(1))),
            NextWake::OnFrame => None,
        };
        if let Some(d) = deadline {
            wake.timer = Some(wheel.schedule_at(d, wake_token(idx, side)));
        }
    }
    match step_result {
        Ok(SessionAction::Send(f)) => transport.send(side, f),
        Ok(SessionAction::Wait | SessionAction::Done) => {}
        Err(e) => {
            slot.result = Some(Err(e));
            slot.failed_side = Some(side);
        }
    }
    if slot.result.is_none() && queued_after {
        carry.push(idx);
    }
}

/// `Session::step` calls the dense O(active) loop would have made for
/// this slot, reconstructed when the slot closes at `tick`. Per side:
/// one step per active tick until the side finished (or the slot
/// closed), plus the frame-driven steps a finished side took to
/// re-serve duplicates.
fn dense_steps_at_close(slot: &Slot<'_>, tick: u64) -> u64 {
    let Some(ta) = slot.admitted_at else {
        return 0;
    };
    let mut total = 0u64;
    for side in [Side::A, Side::B] {
        let wake = match side {
            Side::A => &slot.wake_a,
            Side::B => &slot.wake_b,
        };
        // The last tick the dense loop would step this side: the close
        // tick, except the responder of a slot whose initiator failed
        // earlier in the same tick (its phase never runs).
        let last = if matches!((slot.failed_side, side), (Some(Side::A), Side::B)) {
            tick.saturating_sub(1)
        } else {
            tick
        };
        total += match wake.done_tick {
            Some(td) => (td - ta + 1) + wake.post_done_steps,
            None => (last + 1).saturating_sub(ta),
        };
    }
    total
}

/// [`dense_steps_at_close`] for a slot still active when the tick
/// budget (`end` ticks, exclusive) ran out: the dense loop would have
/// stepped each unfinished side on every remaining tick.
fn dense_steps_unfinished(slot: &Slot<'_>, end: u64) -> u64 {
    let Some(ta) = slot.admitted_at else {
        return 0;
    };
    let mut total = 0u64;
    for wake in [&slot.wake_a, &slot.wake_b] {
        total += match wake.done_tick {
            Some(td) => (td - ta + 1) + wake.post_done_steps,
            None => end.saturating_sub(ta),
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::{
        AttestationVerifier, AttestingDevice, TimingModel, WireAttestationVerifier,
        WireAttestingDevice,
    };
    use crate::eke::{EkeParty, WireEkeInitiator, WireEkeResponder};
    use crate::mutual_auth::{Device, Verifier, WireDevice, WireVerifier};
    use crate::secure_nn::{NetworkOwner, SecureAccelerator, WireNnClient, WireNnServer};
    use crate::transport::{Channel, FaultRates, FaultyChannel};
    use crate::wire::SessionConfig;
    use neuropuls_accel::config::NetworkConfig;
    use neuropuls_accel::engine::PhotonicEngine;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::bits::Response;
    use neuropuls_puf::photonic::PhotonicPuf;
    use std::collections::BTreeMap;

    /// A bundle of endpoint state backing one four-protocol session mix.
    struct Endpoints {
        auth: Vec<(Device<PhotonicPuf>, Verifier)>,
        attest: Vec<(AttestingDevice, AttestationVerifier)>,
        eke: Vec<(EkeParty, EkeParty)>,
        nn: Vec<(SecureAccelerator, Vec<u8>, Vec<u8>)>,
    }

    fn endpoints(n: usize, seed: u8) -> Endpoints {
        let auth = (0..n)
            .map(|i| {
                let puf = PhotonicPuf::reference(DieId(40 + i as u64), 1);
                let (device, provisioned) =
                    Device::provision(puf, vec![seed; 512], format!("prov-{seed}-{i}").as_bytes())
                        .expect("provisions");
                let verifier = Verifier::new(provisioned, format!("verif-{seed}-{i}").as_bytes());
                (device, verifier)
            })
            .collect();
        let attest = (0..n)
            .map(|i| {
                let memory: Vec<u8> = (0..1024).map(|j| (j * 13 + i * 7) as u8).collect();
                let timing = TimingModel::photonic();
                let device = AttestingDevice::new(
                    PhotonicPuf::reference(DieId(60 + i as u64), 1),
                    memory.clone(),
                    timing,
                );
                let verifier = AttestationVerifier::new(
                    PhotonicPuf::reference(DieId(60 + i as u64), 2),
                    memory,
                    timing,
                );
                (device, verifier)
            })
            .collect();
        let eke = (0..n)
            .map(|i| {
                let crp = Response::from_u64(0x1234_5678 ^ (i as u64), 63);
                let initiator = EkeParty::new(&crp, format!("eke-i-{seed}-{i}").as_bytes());
                let responder = EkeParty::new(&crp, format!("eke-r-{seed}-{i}").as_bytes());
                (initiator, responder)
            })
            .collect();
        let nn = (0..n)
            .map(|i| {
                let key = [seed ^ i as u8; 32];
                let mut owner = NetworkOwner::new(key, format!("own-{seed}-{i}").as_bytes());
                let accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
                let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
                let network = owner.cipher_network(&config);
                let input = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
                (accel, network, input)
            })
            .collect();
        Endpoints {
            auth,
            attest,
            eke,
            nn,
        }
    }

    /// Builds one SessionPair per endpoint, all four protocols, with
    /// distinct session ids.
    fn pairs<'x>(ep: &'x mut Endpoints, cfg: SessionConfig) -> Vec<SessionPair<'x>> {
        let mut out: Vec<SessionPair<'x>> = Vec::new();
        let mut sid = 1u64;
        for (device, verifier) in &mut ep.auth {
            out.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: sid,
                initiator: Box::new(WireVerifier::new(verifier, sid, cfg)),
                responder: Box::new(WireDevice::new(device, cfg)),
            });
            sid += 1;
        }
        for (device, verifier) in &mut ep.attest {
            out.push(SessionPair {
                protocol: ProtocolId::Attestation,
                id: sid,
                initiator: Box::new(WireAttestationVerifier::new(verifier, sid, cfg)),
                responder: Box::new(WireAttestingDevice::new(device, cfg)),
            });
            sid += 1;
        }
        for (initiator, responder) in &mut ep.eke {
            out.push(SessionPair {
                protocol: ProtocolId::Eke,
                id: sid,
                initiator: Box::new(WireEkeInitiator::new(initiator, sid, cfg)),
                responder: Box::new(WireEkeResponder::new(responder, cfg)),
            });
            sid += 1;
        }
        for (accel, network, input) in &mut ep.nn {
            out.push(SessionPair {
                protocol: ProtocolId::SecureNn,
                id: sid,
                initiator: Box::new(WireNnClient::new(sid, network.clone(), input.clone(), cfg)),
                responder: Box::new(WireNnServer::new(accel, cfg)),
            });
            sid += 1;
        }
        out
    }

    /// Batched secure-NN sessions multiplexed by the gateway against
    /// ONE shared engine: a single owner loads the network out of
    /// band, every session streams its own chunked batch, and the
    /// per-session inference accounting folds into the registry.
    #[test]
    fn batched_nn_sessions_share_one_engine_through_the_gateway() {
        use crate::secure_nn::{share_accelerator, WireNnBatchClient, WireNnBatchServer};
        let key = [0x4E; 32];
        let mut owner = NetworkOwner::new(key, b"gw-batch-owner");
        let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
        let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
        accel.load_network(&owner.cipher_network(&config)).unwrap();
        let shared = share_accelerator(accel);
        let registry = Registry::new();
        let cfg = SessionConfig::default();
        let k = 4usize;
        let per_session = 150usize; // ~64 B sealed each: > one chunk budget
        let blobs: Vec<Vec<Vec<u8>>> = (1..=k as u64)
            .map(|sid| {
                let inputs: Vec<Vec<f64>> = (0..per_session)
                    .map(|i| vec![(i as f64 + sid as f64) * 0.01; 4])
                    .collect();
                owner.cipher_inputs(&inputs)
            })
            .collect();
        let mut sessions: Vec<SessionPair<'_>> = Vec::new();
        for (i, input_blobs) in blobs.iter().enumerate() {
            let sid = i as u64 + 1;
            sessions.push(SessionPair {
                protocol: ProtocolId::SecureNn,
                id: sid,
                initiator: Box::new(WireNnBatchClient::execute_only(sid, input_blobs, cfg)),
                responder: Box::new(
                    WireNnBatchServer::new(shared.clone(), cfg).with_metrics(&registry),
                ),
            });
        }
        let mut channel = FaultyChannel::new(FaultRates::loss(0.05), 0xBA7C_6A7E);
        let mut tracer = Tracer::disabled();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut tracer,
            &registry,
        );
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(registry.counter_value("secure_nn.batch.executes"), k as u64);
        assert_eq!(
            registry.counter_value("secure_nn.batch.items"),
            (k * per_session) as u64
        );
        // All batches ran on the one engine.
        assert_eq!(shared.borrow().stats().inferences, (k * per_session) as u64);
    }

    #[test]
    fn mixed_protocols_share_one_lossless_transport() {
        let mut ep = endpoints(3, 0x11);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = Channel::new();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.sessions, n);
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.late_frames, 0);
        assert_eq!(report.unroutable_frames, 0);
        assert_eq!(report.undecodable_frames, 0);
        assert_eq!(report.peak_active, n);
        // Every EKE pair agreed on a key through the shared wire.
        for (initiator, responder) in &ep.eke {
            assert_eq!(initiator.session(), responder.session());
        }
    }

    #[test]
    fn mixed_protocols_survive_a_shared_lossy_transport() {
        let mut ep = endpoints(4, 0x22);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = FaultyChannel::new(FaultRates::loss(0.1), 0x6A7E_1055);
        let registry = Registry::new();
        let mut tracer = Tracer::disabled();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut tracer,
            &registry,
        );
        assert_eq!(report.sessions, n);
        assert!(report.all_completed(), "{report:?}");
        assert!(report.retransmits > 0, "10% loss must force retransmits");
        assert_eq!(registry.counter_value("gateway.completed"), n as u64);
        assert_eq!(
            registry.counter_value("gateway.retransmits"),
            report.retransmits
        );
        // The event-driven scheduler never steps more than the dense
        // loop would, and idle ARQ waits mean it steps strictly less.
        assert!(report.session_steps > 0);
        assert!(
            report.session_steps < report.dense_equiv_steps,
            "wake scheduling saved nothing: {} vs {}",
            report.session_steps,
            report.dense_equiv_steps
        );
        // Whatever the fault pattern left in flight after close is
        // accounted as late, never lost.
        let drained = channel.drain_late();
        assert_eq!(channel.stats().late_drained, drained);
    }

    #[test]
    fn bounded_admission_queues_sessions_without_timing_them_out() {
        let mut ep = endpoints(6, 0x33);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = Channel::new();
        let config = GatewayConfig {
            max_active: 2,
            accept_queue: 3,
            max_ticks: 4096,
        };
        let report = run_gateway(
            &mut channel,
            sessions,
            config,
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert!(report.all_completed(), "{report:?}");
        assert!(report.peak_active <= 2);
        assert!(report.peak_staged <= 3);
        assert_eq!(report.retransmits, 0, "queued sessions must not tick ARQ");
        // Admission is staggered: not everyone got in on tick 0.
        let first = report
            .outcomes
            .iter()
            .filter(|o| o.admitted_at == Some(0))
            .count();
        assert_eq!(first, 2);
        assert!(report.outcomes.iter().all(|o| o.admitted_at.is_some()));
        assert_eq!(report.sessions, n);
    }

    /// The multiplexing property the whole module rests on: over a
    /// lossless shared transport, a gateway run with K interleaved
    /// sessions produces — per session — *byte-identical* wire
    /// transcripts to K independent `drive`-based runs. The gateway
    /// reproduces the single-session tick cadence exactly; only the
    /// interleaving on the shared wire differs.
    #[test]
    fn interleaved_sessions_match_independent_transcripts() {
        let cfg = SessionConfig::default();

        // Gateway run: 12 sessions (3 of each protocol) on one wire.
        let mut ep = endpoints(3, 0x77);
        let sessions = pairs(&mut ep, cfg);
        let keys: Vec<(ProtocolId, u64)> = sessions.iter().map(|p| (p.protocol, p.id)).collect();
        let mut shared = Channel::new();
        let report = run_gateway(
            &mut shared,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert!(report.all_completed(), "{report:?}");

        // Split the shared transcript by envelope key, preserving order.
        type SessionTranscript = Vec<(Side, Vec<u8>)>;
        let mut per_session: BTreeMap<(ProtocolId, u64), SessionTranscript> = BTreeMap::new();
        for (side, frame) in shared.transcript() {
            let env = Envelope::from_bytes(frame).expect("lossless frames decode");
            per_session
                .entry((env.protocol, env.session))
                .or_default()
                .push((*side, frame.clone()));
        }

        // Independent runs: identical endpoint states (same seeds) and
        // identical session ids, one dedicated channel each.
        let mut ep2 = endpoints(3, 0x77);
        let singles = pairs(&mut ep2, cfg);
        for (pair, key) in singles.into_iter().zip(keys) {
            let mut solo = Channel::new();
            let mut a = pair.initiator;
            let mut b = pair.responder;
            crate::wire::drive(
                &mut solo,
                a.as_mut(),
                b.as_mut(),
                crate::wire::DEFAULT_MAX_TICKS,
                &mut Tracer::disabled(),
            )
            .expect("independent session completes");
            let expected = solo.transcript();
            let actual = per_session.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            assert_eq!(
                actual,
                expected,
                "session {}/{} transcript diverged between gateway and solo run",
                protocol_label(key.0),
                key.1
            );
        }
    }

    #[test]
    fn duplicate_session_keys_fail_fast_without_corrupting_routing() {
        let mut ep = endpoints(2, 0x44);
        let cfg = SessionConfig::default();
        let mut sessions = Vec::new();
        for (device, verifier) in &mut ep.auth {
            sessions.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: 7, // same key on purpose
                initiator: Box::new(WireVerifier::new(verifier, 7, cfg)),
                responder: Box::new(WireDevice::new(device, cfg)),
            });
        }
        let mut channel = Channel::new();
        let report = run_gateway(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 1);
        assert!(report
            .outcomes
            .iter()
            .any(|o| matches!(o.result, Err(ProtocolError::OutOfOrder(_)))));
    }

    #[test]
    fn tick_budget_reports_unfinished_sessions() {
        let mut ep = endpoints(2, 0x55);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let mut channel = Channel::new();
        let config = GatewayConfig {
            max_active: 1,
            accept_queue: 1,
            max_ticks: 3, // far too few for eight sessions
        };
        let report = run_gateway(
            &mut channel,
            sessions,
            config,
            &mut Tracer::disabled(),
            &Registry::new(),
        );
        assert_eq!(report.ticks, 3);
        assert!(report.unfinished > 0);
        assert_eq!(
            report.completed + report.failed + report.unfinished,
            report.sessions
        );
    }
}
