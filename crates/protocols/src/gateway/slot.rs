//! Session-slot bookkeeping shared by both drivers: the
//! [`SessionPair`] unit of work, per-side wake/ARQ state, the
//! timer-token scheme, the shared side-step core and the
//! dense-counterfactual step accounting.

use super::admission::ClassId;
use super::protocol_label;
use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use crate::wire::{ProtocolId, Session, SessionAction};
use neuropuls_rt::sched::{TimerId, TimerWheel};
use std::collections::VecDeque;

/// One session to multiplex: the two endpoints plus the envelope key
/// (`protocol`, `id`) its frames carry on the shared wire.
pub struct SessionPair<'x> {
    /// Service discriminator routed on.
    pub protocol: ProtocolId,
    /// Session identifier routed on (chosen unique by the caller).
    pub id: u64,
    /// Traffic class admission policies schedule on. Host-side only —
    /// never encoded on the wire. Defaults to the protocol-derived
    /// class ([`ClassId::from_protocol`]).
    pub class: ClassId,
    /// The [`Side::A`] endpoint (verifier / client / initiator).
    pub initiator: Box<dyn Session + 'x>,
    /// The [`Side::B`] endpoint (device / accelerator / responder).
    pub responder: Box<dyn Session + 'x>,
}

impl<'x> SessionPair<'x> {
    /// Builds a pair with the protocol-derived default traffic class.
    pub fn new(
        protocol: ProtocolId,
        id: u64,
        initiator: Box<dyn Session + 'x>,
        responder: Box<dyn Session + 'x>,
    ) -> Self {
        SessionPair {
            protocol,
            id,
            class: ClassId::from_protocol(protocol),
            initiator,
            responder,
        }
    }

    /// Overrides the traffic class (builder style).
    pub fn with_class(mut self, class: ClassId) -> Self {
        self.class = class;
        self
    }

    /// Human-readable `protocol/id` key for error messages.
    pub(super) fn key_label(&self) -> String {
        format!("{}/{}", protocol_label(self.protocol), self.id)
    }
}

/// Where a dense-driver slot sits in its lifecycle.
pub(super) enum SlotState {
    Backlog,
    Staged,
    Active,
    Closed,
}

/// Event-scheduling bookkeeping for one side of one slot.
#[derive(Clone, Copy, Default)]
pub(super) struct WakeState {
    /// Tick of the next dense-loop step not yet replayed: every dense
    /// step before it has been applied, either directly or folded into
    /// a [`Session::skip_silence`] fast-forward.
    pub(super) next_dense_step: u64,
    /// Armed timer for the side's announced wake deadline.
    pub(super) timer: Option<TimerId>,
    /// Tick this side first reported done (`None` while in flight).
    pub(super) done_tick: Option<u64>,
    /// Steps taken after done — frame-driven duplicate re-serves.
    pub(super) post_done_steps: u64,
}

pub(super) struct Slot<'x> {
    pub(super) pair: SessionPair<'x>,
    pub(super) state: SlotState,
    pub(super) inbox_a: VecDeque<Vec<u8>>,
    pub(super) inbox_b: VecDeque<Vec<u8>>,
    pub(super) admitted_at: Option<u64>,
    pub(super) ticks_active: u32,
    pub(super) result: Option<Result<u32, ProtocolError>>,
    pub(super) wake_a: WakeState,
    pub(super) wake_b: WakeState,
    /// Which side's step failure closed the slot (ordering detail the
    /// dense-equivalent step accounting needs).
    pub(super) failed_side: Option<Side>,
}

impl Slot<'_> {
    pub(super) fn close(&mut self, result: Result<u32, ProtocolError>) {
        self.state = SlotState::Closed;
        self.result = Some(result);
    }

    pub(super) fn retransmits(&self) -> u32 {
        self.pair.initiator.retransmits() + self.pair.responder.retransmits()
    }
}

/// Timer-wheel token for one side of one slot.
pub(super) fn wake_token(idx: usize, side: Side) -> u64 {
    ((idx as u64) << 1) | u64::from(side == Side::B)
}

/// Inverse of [`wake_token`].
pub(super) fn token_side(token: u64) -> (usize, Side) {
    let side = if token & 1 == 0 { Side::A } else { Side::B };
    ((token >> 1) as usize, side)
}

/// Dedups one tick's candidate runnable sides and orders them exactly
/// as the dense loop's tick-rotated round-robin would have visited
/// them. Stale candidates (slots no longer active) are dropped.
pub(super) fn runnable_order(
    cand: &mut Vec<usize>,
    slots: &[Slot<'_>],
    position: &[usize],
    len: usize,
    rotation: usize,
) -> Vec<usize> {
    if len == 0 {
        cand.clear();
        return Vec::new();
    }
    let mut keyed: Vec<(usize, usize)> = cand
        .drain(..)
        .filter(|&idx| {
            slots
                .get(idx)
                .is_some_and(|s| matches!(s.state, SlotState::Active))
                && position.get(idx).is_some_and(|&p| p != usize::MAX)
        })
        .map(|idx| ((position[idx] + len - rotation) % len, idx))
        .collect();
    keyed.sort_unstable();
    keyed.dedup();
    keyed.into_iter().map(|(_, idx)| idx).collect()
}

/// Steps one runnable side of one active slot with at most one inbox
/// frame, after fast-forwarding the silent steps the dense loop would
/// have taken since the side's last real step. Mirrors the per-tick
/// cadence of [`crate::wire::drive`]: a finished side with an
/// empty inbox is left alone (its clock stops), a finished side *with*
/// a frame still steps so it can re-serve duplicates, and a step
/// failure closes the whole slot. Re-arms the side's wake timer from
/// [`Session::next_wake`] and carries the side to the next tick when
/// its inbox still holds queued frames.
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
pub(super) fn step_wake<T: Transport>(
    transport: &mut T,
    slots: &mut [Slot<'_>],
    wheel: &mut TimerWheel,
    idx: usize,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
    carry: &mut Vec<usize>,
    touched: &mut Vec<usize>,
) {
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    if slot.result.is_some() || !matches!(slot.state, SlotState::Active) {
        return;
    }
    let frame = match side {
        Side::A => slot.inbox_a.pop_front(),
        Side::B => slot.inbox_b.pop_front(),
    };
    let queued_after = match side {
        Side::A => !slot.inbox_a.is_empty(),
        Side::B => !slot.inbox_b.is_empty(),
    };
    let (session, wake): (&mut dyn Session, &mut WakeState) = match side {
        Side::A => (slot.pair.initiator.as_mut(), &mut slot.wake_a),
        Side::B => (slot.pair.responder.as_mut(), &mut slot.wake_b),
    };
    let out = step_side_core(
        transport,
        session,
        wake,
        frame,
        wheel,
        wake_token(idx, side),
        side,
        tick,
        session_steps,
    );
    if !out.stepped {
        return;
    }
    touched.push(idx);
    if let Some(e) = out.error {
        slot.result = Some(Err(e));
        slot.failed_side = Some(side);
    }
    if slot.result.is_none() && queued_after {
        carry.push(idx);
    }
}

/// What [`step_side_core`] produced: whether a real `Session::step`
/// happened, and the failure that must close the slot, if any.
pub(super) struct SideStep {
    pub(super) stepped: bool,
    pub(super) error: Option<ProtocolError>,
}

/// The side-step core shared by [`run_gateway`] and
/// [`run_persistent_gateway`]: replays the silent gap the dense loop
/// would have ticked through, makes at most one real `Session::step`
/// with `frame`, re-arms the side's wake timer from
/// [`Session::next_wake`] (under `token`) and transmits whatever the
/// step produced. A finished side with no frame is left alone — its
/// clock is stopped, exactly like the dense loop.
///
/// [`run_gateway`]: super::run_gateway
/// [`run_persistent_gateway`]: super::run_persistent_gateway
#[expect(
    clippy::too_many_arguments,
    reason = "all per-tick scheduler state is threaded explicitly"
)]
pub(super) fn step_side_core<T: Transport>(
    transport: &mut T,
    session: &mut dyn Session,
    wake: &mut WakeState,
    frame: Option<Vec<u8>>,
    wheel: &mut TimerWheel,
    token: u64,
    side: Side,
    tick: u64,
    session_steps: &mut u64,
) -> SideStep {
    if frame.is_none() && session.done() {
        // The dense loop skips a finished side with nothing to read.
        return SideStep {
            stepped: false,
            error: None,
        };
    }
    let was_done = session.done();
    if !was_done {
        // Replay the frameless steps the dense loop took between this
        // side's last real step and now; the `NextWake` contract
        // guarantees they were all silent idle-clock ticks.
        let gap = tick.saturating_sub(wake.next_dense_step);
        if gap > 0 {
            session.skip_silence(gap as u32);
        }
    }
    *session_steps += 1;
    let step_result = session.step(frame.as_deref());
    let now_done = session.done();
    let wants = if step_result.is_ok() && !now_done {
        Some(session.next_wake())
    } else {
        None
    };
    wake.next_dense_step = tick + 1;
    if was_done {
        wake.post_done_steps += 1;
    } else if now_done && wake.done_tick.is_none() {
        wake.done_tick = Some(tick);
    }
    if let Some(id) = wake.timer.take() {
        wheel.cancel(id);
    }
    if let Some(w) = wants {
        if let Some(d) = w.rearm_deadline(tick) {
            wake.timer = Some(wheel.schedule_at(d, token));
        }
    }
    match step_result {
        Ok(SessionAction::Send(f)) => {
            transport.send(side, f);
            SideStep {
                stepped: true,
                error: None,
            }
        }
        Ok(SessionAction::Wait | SessionAction::Done) => SideStep {
            stepped: true,
            error: None,
        },
        Err(e) => SideStep {
            stepped: true,
            error: Some(e),
        },
    }
}

/// `Session::step` calls the dense O(active) loop would have made for
/// this slot, reconstructed when the slot closes at `tick`. Per side:
/// one step per active tick until the side finished (or the slot
/// closed), plus the frame-driven steps a finished side took to
/// re-serve duplicates.
pub(super) fn dense_steps_at_close(slot: &Slot<'_>, tick: u64) -> u64 {
    let Some(ta) = slot.admitted_at else {
        return 0;
    };
    let mut total = 0u64;
    for side in [Side::A, Side::B] {
        let wake = match side {
            Side::A => &slot.wake_a,
            Side::B => &slot.wake_b,
        };
        // The last tick the dense loop would step this side: the close
        // tick, except the responder of a slot whose initiator failed
        // earlier in the same tick (its phase never runs).
        let last = if matches!((slot.failed_side, side), (Some(Side::A), Side::B)) {
            tick.saturating_sub(1)
        } else {
            tick
        };
        total += match wake.done_tick {
            Some(td) => (td - ta + 1) + wake.post_done_steps,
            None => (last + 1).saturating_sub(ta),
        };
    }
    total
}

/// [`dense_steps_at_close`] for a slot still active when the tick
/// budget (`end` ticks, exclusive) ran out: the dense loop would have
/// stepped each unfinished side on every remaining tick.
pub(super) fn dense_steps_unfinished(slot: &Slot<'_>, end: u64) -> u64 {
    let Some(ta) = slot.admitted_at else {
        return 0;
    };
    let mut total = 0u64;
    for wake in [&slot.wake_a, &slot.wake_b] {
        total += match wake.done_tick {
            Some(td) => (td - ta + 1) + wake.post_done_steps,
            None => end.saturating_sub(ta),
        };
    }
    total
}
