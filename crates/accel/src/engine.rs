//! The analog photonic inference engine.
//!
//! Weights live in phase-change-material (PCM) cells on MZI crossbars
//! (the NEUROPULS platform of \[11\]): programming quantizes each weight to
//! a finite number of transmission levels, every multiply-accumulate
//! picks up multiplicative analog noise, and the PCM levels drift slowly
//! after programming. The engine models those three effects and accounts
//! latency and energy per inference for the system-level experiments.

use crate::config::{ConfigCodecError, NetworkConfig};
use neuropuls_photonic::laser::gaussian;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::SeedableRng;

/// Analog non-idealities of the crossbar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogModel {
    /// Bits of weight quantization (PCM programming levels = 2^bits).
    pub weight_bits: u8,
    /// Relative multiplicative noise σ per MAC.
    pub mac_noise: f64,
    /// Relative PCM drift per programmed hour (applied via
    /// [`PhotonicEngine::age`]).
    pub drift_per_hour: f64,
    /// Energy per MAC in picojoules.
    pub energy_per_mac_pj: f64,
    /// Latency per layer in nanoseconds (optical transit + conversion).
    pub layer_latency_ns: f64,
}

impl AnalogModel {
    /// The reference platform model.
    pub fn reference() -> Self {
        AnalogModel {
            weight_bits: 6,
            mac_noise: 5e-3,
            drift_per_hour: 2e-3,
            energy_per_mac_pj: 0.05,
            layer_latency_ns: 4.0,
        }
    }

    /// An ideal digital engine (for accuracy-loss ablations).
    pub fn ideal() -> Self {
        AnalogModel {
            weight_bits: 32,
            mac_noise: 0.0,
            drift_per_hour: 0.0,
            energy_per_mac_pj: 1.0,
            layer_latency_ns: 100.0,
        }
    }
}

/// Errors from loading or running the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No network has been loaded.
    NotLoaded,
    /// The input width disagrees with the loaded network.
    InputWidth {
        /// Expected width.
        expected: usize,
        /// Supplied width.
        actual: usize,
    },
    /// The configuration failed validation.
    BadConfig(ConfigCodecError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NotLoaded => write!(f, "no network loaded"),
            EngineError::InputWidth { expected, actual } => {
                write!(f, "input width mismatch: expected {expected}, got {actual}")
            }
            EngineError::BadConfig(e) => write!(f, "bad network config: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ConfigCodecError> for EngineError {
    fn from(e: ConfigCodecError) -> Self {
        EngineError::BadConfig(e)
    }
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Inferences executed since load.
    pub inferences: u64,
    /// Total MAC operations.
    pub macs: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Total busy time in nanoseconds.
    pub busy_ns: f64,
}

/// The photonic inference engine.
#[derive(Debug, Clone)]
pub struct PhotonicEngine {
    model: AnalogModel,
    /// Programmed (quantized) weights, one row-major matrix per layer.
    programmed: Vec<Vec<f64>>,
    config: Option<NetworkConfig>,
    drift_factor: f64,
    stats: EngineStats,
    rng: StdRng,
}

impl PhotonicEngine {
    /// Creates an engine with the given analog model.
    pub fn new(model: AnalogModel, noise_seed: u64) -> Self {
        PhotonicEngine {
            model,
            programmed: Vec::new(),
            config: None,
            drift_factor: 1.0,
            stats: EngineStats::default(),
            rng: StdRng::seed_from_u64(noise_seed),
        }
    }

    /// Reference-model engine.
    pub fn reference(noise_seed: u64) -> Self {
        Self::new(AnalogModel::reference(), noise_seed)
    }

    /// The analog model.
    pub fn model(&self) -> &AnalogModel {
        &self.model
    }

    /// Whether a network is loaded.
    pub fn is_loaded(&self) -> bool {
        self.config.is_some()
    }

    /// Execution statistics since the last load.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Programs a validated network into the PCM cells (quantizing
    /// weights).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadConfig`] if the configuration fails
    /// validation.
    pub fn load(&mut self, config: NetworkConfig) -> Result<(), EngineError> {
        config.validate()?;
        let levels = (1u64 << self.model.weight_bits.min(63)) as f64;
        self.programmed = config
            .layers
            .iter()
            .map(|layer| {
                let max_abs = layer
                    .weights
                    .iter()
                    .fold(0f32, |m, w| m.max(w.abs()))
                    .max(f32::MIN_POSITIVE) as f64;
                layer
                    .weights
                    .iter()
                    .map(|&w| {
                        // Quantize to the PCM level grid over [-max, max].
                        let normalized = w as f64 / max_abs;
                        let level = (normalized * (levels / 2.0 - 1.0)).round();
                        level / (levels / 2.0 - 1.0) * max_abs
                    })
                    .collect()
            })
            .collect();
        self.config = Some(config);
        self.drift_factor = 1.0;
        self.stats = EngineStats::default();
        Ok(())
    }

    /// Unloads the network and clears the PCM cells (the hardware
    /// equivalent of zeroizing key material).
    pub fn unload(&mut self) {
        self.programmed.clear();
        self.config = None;
    }

    /// Ages the PCM cells by `hours` of drift.
    pub fn age(&mut self, hours: f64) {
        self.drift_factor *= (1.0 - self.model.drift_per_hour).powf(hours.max(0.0));
    }

    /// Runs one inference.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NotLoaded`] or
    /// [`EngineError::InputWidth`].
    pub fn infer(&mut self, input: &[f64]) -> Result<Vec<f64>, EngineError> {
        let config = self.config.as_ref().ok_or(EngineError::NotLoaded)?;
        if input.len() != config.input_width() {
            return Err(EngineError::InputWidth {
                expected: config.input_width(),
                actual: input.len(),
            });
        }
        let mut activations: Vec<f64> = input.to_vec();
        let mut macs = 0u64;
        for (layer, weights) in config.layers.iter().zip(self.programmed.iter()) {
            let mut next = Vec::with_capacity(layer.outputs);
            for o in 0..layer.outputs {
                let mut acc = layer.biases[o] as f64;
                for (i, &a) in activations.iter().enumerate() {
                    let w = weights[o * layer.inputs + i] * self.drift_factor;
                    let noise = 1.0 + self.model.mac_noise * gaussian(&mut self.rng);
                    acc += w * a * noise;
                    macs += 1;
                }
                next.push(layer.activation.apply(acc));
            }
            activations = next;
        }
        self.stats.inferences += 1;
        self.stats.macs += macs;
        self.stats.energy_pj += macs as f64 * self.model.energy_per_mac_pj;
        self.stats.busy_ns += config.layers.len() as f64 * self.model.layer_latency_ns;
        Ok(activations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    fn identity_config(width: usize) -> NetworkConfig {
        NetworkConfig::mlp(&[width, width], |_, o, i| if o == i { 1.0 } else { 0.0 })
    }

    #[test]
    fn infer_requires_load() {
        let mut engine = PhotonicEngine::reference(1);
        assert_eq!(engine.infer(&[1.0]), Err(EngineError::NotLoaded));
    }

    #[test]
    fn identity_network_roughly_passes_through() {
        let mut engine = PhotonicEngine::reference(2);
        engine.load(identity_config(4)).unwrap();
        let out = engine.infer(&[0.5, -0.25, 1.0, 0.0]).unwrap();
        assert_eq!(out.len(), 4);
        for (o, e) in out.iter().zip([0.5, -0.25, 1.0, 0.0]) {
            assert!((o - e).abs() < 0.05, "out {o} expected {e}");
        }
    }

    #[test]
    fn input_width_is_checked() {
        let mut engine = PhotonicEngine::reference(3);
        engine.load(identity_config(4)).unwrap();
        assert_eq!(
            engine.infer(&[1.0]),
            Err(EngineError::InputWidth {
                expected: 4,
                actual: 1
            })
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut engine = PhotonicEngine::reference(4);
        let mut config = identity_config(3);
        config.layers[0].biases.pop();
        assert!(matches!(engine.load(config), Err(EngineError::BadConfig(_))));
    }

    #[test]
    fn analog_noise_perturbs_output() {
        let mut engine = PhotonicEngine::reference(5);
        engine.load(identity_config(4)).unwrap();
        let a = engine.infer(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let b = engine.infer(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_ne!(a, b, "analog engine should be noisy");
    }

    #[test]
    fn ideal_engine_is_exact_and_deterministic() {
        let mut engine = PhotonicEngine::new(AnalogModel::ideal(), 6);
        engine.load(identity_config(4)).unwrap();
        let a = engine.infer(&[1.0, 2.0, -1.0, 0.5]).unwrap();
        // Single-layer MLPs end in a linear output layer.
        assert_eq!(a, vec![1.0, 2.0, -1.0, 0.5]);
    }

    #[test]
    fn quantization_limits_precision() {
        // A 1-bit engine collapses weights to ±max.
        let mut coarse = PhotonicEngine::new(
            AnalogModel {
                weight_bits: 2,
                mac_noise: 0.0,
                ..AnalogModel::reference()
            },
            7,
        );
        let config = NetworkConfig::mlp(&[2, 1], |_, _, i| if i == 0 { 1.0 } else { 0.3 });
        coarse.load(config.clone()).unwrap();
        let mut fine = PhotonicEngine::new(AnalogModel::ideal(), 7);
        fine.load(config).unwrap();
        let x = [1.0, 1.0];
        let c = coarse.infer(&x).unwrap()[0];
        let f = fine.infer(&x).unwrap()[0];
        assert!((c - f).abs() > 0.05, "quantization had no effect: {c} vs {f}");
    }

    #[test]
    fn drift_attenuates_weights() {
        let mut engine = PhotonicEngine::new(
            AnalogModel {
                mac_noise: 0.0,
                ..AnalogModel::reference()
            },
            8,
        );
        engine.load(identity_config(2)).unwrap();
        let fresh = engine.infer(&[1.0, 1.0]).unwrap();
        engine.age(100.0);
        let aged = engine.infer(&[1.0, 1.0]).unwrap();
        assert!(aged[0] < fresh[0], "drift did not attenuate: {aged:?}");
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = PhotonicEngine::reference(9);
        engine.load(identity_config(4)).unwrap();
        engine.infer(&[0.0; 4]).unwrap();
        engine.infer(&[0.0; 4]).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.inferences, 2);
        assert_eq!(stats.macs, 32);
        assert!(stats.energy_pj > 0.0);
        assert!(stats.busy_ns > 0.0);
    }

    #[test]
    fn unload_clears_state() {
        let mut engine = PhotonicEngine::reference(10);
        engine.load(identity_config(2)).unwrap();
        assert!(engine.is_loaded());
        engine.unload();
        assert!(!engine.is_loaded());
        assert_eq!(engine.infer(&[1.0, 1.0]), Err(EngineError::NotLoaded));
    }
}
