//! SRAM PUF — the ASIC-side weak PUF of Fig. 1, which "guarantees unique
//! binding between the chips".
//!
//! Model: each cell has a fixed threshold-voltage mismatch drawn from a
//! standard Gaussian at fabrication. On power-up the cell settles to
//! `mismatch + noise > 0`, so cells with small |mismatch| are the noisy
//! ones — the standard literature model. The challenge selects a word
//! range; the response is the power-up pattern of those cells.
//!
//! The model also implements the **remanence decay** behaviour of
//! Zeitouni et al. \[27\]: if the array held *data* and is briefly powered
//! down, cells revert to their power-up preference with a probability
//! that grows with the off-time. §IV argues the photonic PUF is immune to
//! this class of attack because its response exists only during the
//! <100 ns interrogation window; experiment E8 contrasts the two.

use crate::bits::{Challenge, Response};
use crate::traits::{Puf, PufError, PufKind};
use neuropuls_photonic::laser::gaussian;
use neuropuls_photonic::process::DieId;
use neuropuls_photonic::Environment;
use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::{Rng, SeedableRng};

/// Configuration of the SRAM array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramConfig {
    /// Total number of cells.
    pub cells: usize,
    /// Response word width in bits.
    pub word_bits: usize,
    /// Power-up noise σ relative to the mismatch σ (≈ 0.06 gives the
    /// ~4 % noisy-cell fraction reported for real SRAM).
    pub noise_sigma: f64,
    /// Temperature coefficient: extra noise σ per kelvin away from 25 °C.
    pub noise_temp_coeff: f64,
    /// Remanence time constant in milliseconds (off-time after which
    /// ~63 % of cells have decayed to their power-up preference).
    pub remanence_tau_ms: f64,
}

impl SramConfig {
    /// A 4 KiB array with 64-bit words.
    pub fn reference() -> Self {
        SramConfig {
            cells: 32_768,
            word_bits: 64,
            noise_sigma: 0.06,
            noise_temp_coeff: 0.002,
            remanence_tau_ms: 5.0,
        }
    }
}

/// The SRAM PUF.
#[derive(Debug, Clone)]
pub struct SramPuf {
    die: DieId,
    config: SramConfig,
    /// Per-cell fixed mismatch (the physical secret).
    mismatch: Vec<f64>,
    /// Data currently written to the array (None = array used purely as
    /// a PUF).
    data: Option<Vec<u8>>,
    env: Environment,
    rng: StdRng,
}

impl SramPuf {
    /// Fabricates the array for `die`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero cells or word
    /// width, or word wider than the array).
    pub fn fabricate(die: DieId, config: SramConfig, noise_seed: u64) -> Self {
        assert!(
            config.cells > 0 && config.word_bits > 0,
            "degenerate SRAM config"
        );
        assert!(config.word_bits <= config.cells, "word wider than array");
        let mut fab_rng = StdRng::seed_from_u64(die.0.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mismatch = (0..config.cells).map(|_| gaussian(&mut fab_rng)).collect();
        SramPuf {
            die,
            config,
            mismatch,
            data: None,
            env: Environment::nominal(),
            rng: StdRng::seed_from_u64(noise_seed ^ die.0),
        }
    }

    /// Reference-configuration constructor.
    pub fn reference(die: DieId, noise_seed: u64) -> Self {
        Self::fabricate(die, SramConfig::reference(), noise_seed)
    }

    /// The die this array was fabricated as.
    pub fn die(&self) -> DieId {
        self.die
    }

    /// The configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.config.cells / self.config.word_bits
    }

    fn noise_sigma(&self) -> f64 {
        self.config.noise_sigma + self.config.noise_temp_coeff * self.env.delta_t().abs()
    }

    fn power_up_cell(&mut self, idx: usize) -> u8 {
        let sigma = self.noise_sigma();
        u8::from(self.mismatch[idx] + sigma * gaussian(&mut self.rng) > 0.0)
    }

    /// Power-up read of word `word` (PUF mode).
    ///
    /// # Errors
    ///
    /// Returns [`PufError::ChallengeOutOfRange`] if the word index is out
    /// of bounds.
    pub fn read_word(&mut self, word: usize) -> Result<Response, PufError> {
        if word >= self.words() {
            return Err(PufError::ChallengeOutOfRange(format!(
                "word {word} of {}",
                self.words()
            )));
        }
        let base = word * self.config.word_bits;
        let bits: Vec<u8> = (0..self.config.word_bits)
            .map(|i| self.power_up_cell(base + i))
            .collect();
        Ok(Response::from_bits(bits))
    }

    /// Writes data into the array (normal memory mode); used by the
    /// remanence-decay attack model.
    pub fn write_data(&mut self, data: Vec<u8>) {
        assert_eq!(data.len(), self.config.cells, "data must cover the array");
        self.data = Some(data.into_iter().map(|b| b & 1).collect());
    }

    /// Simulates a power cycle with the given off-time and reads the
    /// whole array. Cells that held data keep it with probability
    /// `exp(-t/τ)` and otherwise revert to their power-up preference —
    /// the remanence-decay side channel of \[27\].
    pub fn power_cycle_read(&mut self, off_time_ms: f64) -> Vec<u8> {
        let retain = (-off_time_ms / self.config.remanence_tau_ms).exp();
        let data = self.data.clone();
        (0..self.config.cells)
            .map(|i| match &data {
                Some(d) if self.rng.gen::<f64>() < retain => d[i],
                _ => self.power_up_cell(i),
            })
            .collect()
    }

    /// Fraction of cells whose |mismatch| is below one noise σ — the
    /// intrinsically unstable population.
    pub fn unstable_cell_fraction(&self) -> f64 {
        let sigma = self.config.noise_sigma;
        self.mismatch.iter().filter(|m| m.abs() < sigma).count() as f64 / self.config.cells as f64
    }
}

impl Puf for SramPuf {
    /// Challenge = word index, log2(words) bits.
    fn challenge_bits(&self) -> usize {
        usize::BITS as usize - (self.words() - 1).leading_zeros() as usize
    }

    fn response_bits(&self) -> usize {
        self.config.word_bits
    }

    fn kind(&self) -> PufKind {
        PufKind::Weak
    }

    fn respond(&mut self, challenge: &Challenge) -> Result<Response, PufError> {
        let mut word = 0usize;
        for (i, &bit) in challenge.bits().iter().enumerate() {
            if i >= usize::BITS as usize {
                break;
            }
            word |= (bit as usize) << i;
        }
        self.read_word(word)
    }

    fn set_environment(&mut self, env: Environment) {
        self.env = env;
    }

    fn environment(&self) -> Environment {
        self.env
    }

    /// Power-up readout latency: microseconds, not nanoseconds — SRAM
    /// PUFs are slow compared to the pPUF.
    fn latency_ns(&self) -> f64 {
        1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn puf(die: u64) -> SramPuf {
        SramPuf::reference(DieId(die), 42 + die)
    }

    #[test]
    fn word_read_is_mostly_stable() {
        let mut p = puf(1);
        let golden = p.read_word(0).unwrap();
        let mut flips = 0usize;
        let reads = 20;
        for _ in 0..reads {
            flips += golden.hamming(&p.read_word(0).unwrap());
        }
        let ber = flips as f64 / (reads * 64) as f64;
        assert!(ber < 0.1, "SRAM BER {ber}");
    }

    #[test]
    fn different_dies_differ() {
        let mut a = puf(2);
        let mut b = puf(3);
        let fhd = a.read_word(0).unwrap().fhd(&b.read_word(0).unwrap());
        assert!(fhd > 0.3, "inter-die FHD {fhd}");
    }

    #[test]
    fn out_of_range_word_rejected() {
        let mut p = puf(4);
        let words = p.words();
        assert!(p.read_word(words).is_err());
    }

    #[test]
    fn respond_uses_word_index() {
        let mut p = puf(5);
        let via_trait = p
            .respond(&Challenge::from_u64(3, p.challenge_bits()))
            .unwrap();
        let direct = p.read_word(3).unwrap();
        // Both are noisy reads of the same word: close, not necessarily
        // equal.
        assert!(via_trait.fhd(&direct) < 0.2);
    }

    #[test]
    fn unstable_fraction_is_small_but_nonzero() {
        let p = puf(6);
        let f = p.unstable_cell_fraction();
        assert!(f > 0.005 && f < 0.15, "unstable fraction {f}");
    }

    #[test]
    fn remanence_short_off_time_leaks_data() {
        let mut p = puf(7);
        let data: Vec<u8> = (0..p.config().cells).map(|i| (i % 2) as u8).collect();
        p.write_data(data.clone());
        let read = p.power_cycle_read(0.1); // 0.1 ms ≪ τ = 5 ms
        let matches = read.iter().zip(&data).filter(|(a, b)| a == b).count();
        let frac = matches as f64 / data.len() as f64;
        assert!(frac > 0.9, "remanence leak fraction {frac}");
    }

    #[test]
    fn remanence_long_off_time_erases_data() {
        let mut p = puf(8);
        let data: Vec<u8> = (0..p.config().cells).map(|i| (i % 2) as u8).collect();
        p.write_data(data.clone());
        let read = p.power_cycle_read(100.0); // 100 ms ≫ τ
        let matches = read.iter().zip(&data).filter(|(a, b)| a == b).count();
        let frac = matches as f64 / data.len() as f64;
        // Alternating data vs. random power-up: ~50 % agreement.
        assert!((frac - 0.5).abs() < 0.1, "agreement {frac}");
    }

    #[test]
    fn heat_increases_noise() {
        let mut p = puf(9);
        let golden = p.read_word(1).unwrap();
        let cold_flips: usize = (0..20)
            .map(|_| golden.hamming(&p.read_word(1).unwrap()))
            .sum();
        p.set_environment(Environment::at_temperature(85.0));
        let hot_flips: usize = (0..20)
            .map(|_| golden.hamming(&p.read_word(1).unwrap()))
            .sum();
        assert!(hot_flips > cold_flips, "cold {cold_flips} hot {hot_flips}");
    }

    #[test]
    fn kind_and_widths() {
        let p = puf(10);
        assert_eq!(p.kind(), PufKind::Weak);
        assert_eq!(p.response_bits(), 64);
        assert_eq!(p.words(), 512);
        assert_eq!(p.challenge_bits(), 9);
    }
}
