//! Attack lab (§IV): runs every attack class against the electronic
//! baselines and the photonic PUF, printing the comparison the paper
//! argues qualitatively.
//!
//! ```sh
//! cargo run --example attack_lab --release
//! ```

use neuropuls::attacks::ml::{model_attack, parity_features, raw_features};
use neuropuls::attacks::remanence::{photonic_exposure, remanence_decay_curve};
use neuropuls::attacks::side_channel::{electronic_vs_photonic, reference_electronic_target};
use neuropuls::attacks::tamper::full_campaign;
use neuropuls::photonic::process::DieId;
use neuropuls::puf::arbiter::{ArbiterPuf, XorArbiterPuf};
use neuropuls::puf::photonic::PhotonicPuf;
use neuropuls::puf::sram::SramPuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== ML modeling attacks (logistic regression) ==");
    println!("{:<24} {:>10} {:>10}", "target", "train CRPs", "accuracy");
    for crps in [200, 1000, 4000] {
        let mut arbiter = ArbiterPuf::fabricate(DieId(1), 64, 1);
        let a = model_attack(&mut arbiter, parity_features, crps, 500, 0, 30, 7)?;
        println!(
            "{:<24} {:>10} {:>9.1}%",
            "arbiter-64",
            crps,
            a.accuracy * 100.0
        );
    }
    for crps in [200, 1000, 4000] {
        let mut xor4 = XorArbiterPuf::fabricate(DieId(2), 64, 4, 1);
        let a = model_attack(&mut xor4, parity_features, crps, 500, 0, 30, 7)?;
        println!(
            "{:<24} {:>10} {:>9.1}%",
            "4-xor-arbiter-64",
            crps,
            a.accuracy * 100.0
        );
    }
    for crps in [200, 1000] {
        let mut ppuf = PhotonicPuf::reference(DieId(3), 1);
        let a = model_attack(&mut ppuf, raw_features, crps, 300, 0, 30, 7)?;
        println!(
            "{:<24} {:>10} {:>9.1}%",
            "photonic (BPSK mesh)",
            crps,
            a.accuracy * 100.0
        );
    }

    println!("\n== Power-analysis side channel ==");
    let mut electronic = reference_electronic_target(5);
    let mut photonic = PhotonicPuf::reference(DieId(5), 5);
    let (e, p) = electronic_vs_photonic(&mut electronic, &mut photonic, 500, 11)?;
    println!(
        "electronic arbiter : response recovery {:.1}%, trained model {:.1}%",
        e.response_recovery * 100.0,
        e.model_accuracy * 100.0
    );
    println!(
        "photonic PUF       : response recovery {:.1}% (no RF leakage)",
        p.response_recovery * 100.0
    );

    println!("\n== Remanence decay ==");
    let mut sram = SramPuf::reference(DieId(6), 6);
    let secret: Vec<u8> = (0..sram.config().cells).map(|i| (i % 2) as u8).collect();
    for point in remanence_decay_curve(&mut sram, &secret, &[0.1, 1.0, 5.0, 20.0, 100.0]) {
        println!(
            "SRAM after {:>6.1} ms off: {:>5.1}% of secret recovered",
            point.off_time_ms,
            point.recovery * 100.0
        );
    }
    let window = PhotonicPuf::reference(DieId(7), 7).response_window_ns();
    println!(
        "photonic PUF: response lives {window:.2} ns; a power-cycle probe (≥1 ms) recovers {:.0}%",
        photonic_exposure(1e6, window) * 100.0
    );

    println!("\n== Chip-substitution tampering (composite PIC+ASIC) ==");
    for outcome in full_campaign(6, 0.25, 21)? {
        println!(
            "{:<14?}: mean FHD {:.3}, acceptance {:>5.1}%",
            outcome.scenario,
            outcome.mean_fhd,
            outcome.acceptance * 100.0
        );
    }
    Ok(())
}
