//! Structured tracing and metrics with deterministic output.
//!
//! The paper's §V simulator is defined by its observability — a
//! gem5-like model logging throughput, latency, power and PUF-quality
//! statistics. This module is the workspace-wide implementation of that
//! contract: spans and instants stamped with *simulated* ticks (never
//! host time), monotonic counters, fixed-boundary histograms, and a
//! thread-safe [`Registry`] whose merged output is byte-identical
//! regardless of thread count.
//!
//! Three vocabularies live here:
//!
//! * [`Tracer`] — an ordered event log ([`TraceEvent`]: span start/end
//!   and instants with typed fields) exported as JSONL. Tracers are
//!   *per-unit-of-work*: each item of a [`crate::pool::par_map`] records
//!   into its own tracer and the caller merges them in input order, so
//!   the merged log is independent of scheduling.
//! * [`Histogram`] — fixed bucket boundaries, commutative
//!   [`Histogram::merge`], and quantile estimates accurate to one
//!   bucket width.
//! * [`Registry`] — named scalars, distributions (the gem5
//!   `name value # description` dump of the original system-crate
//!   `StatRegistry`, folded in here), counters and histograms behind a
//!   mutex, so shared aggregation needs only `&self`.
//!
//! Determinism contract under threads: every Registry operation is
//! commutative (counter adds, histogram/distribution records, scalar
//! adds), so any interleaving of worker threads yields the same final
//! state; ordered *event* logs must instead go through per-item tracers
//! merged in input order. Both export deterministically (BTreeMap key
//! order for the registry, insertion order for tracers).

use crate::rng::{Error, RngCore};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// JSON rendering helpers (no external serializer: hermetic workspace)
// ---------------------------------------------------------------------------

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_f64_into(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is platform-independent, so
        // the rendering is deterministic.
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/inf.
        out.push_str("null");
    }
}

// ---------------------------------------------------------------------------
// Field values
// ---------------------------------------------------------------------------

/// A typed field value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rendered as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    fn render_into(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json_f64_into(out, *v),
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) => {
                out.push('"');
                json_escape_into(out, s);
                out.push('"');
            }
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::$variant(v as $conv)
            }
        }
    )*};
}

value_from! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i32 => I64 as i64, i64 => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

// ---------------------------------------------------------------------------
// Trace events and the Tracer
// ---------------------------------------------------------------------------

/// What kind of event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened at this tick.
    SpanStart,
    /// A span closed at this tick.
    SpanEnd,
    /// A point event.
    Instant,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "instant",
        }
    }
}

/// One recorded event: a deterministic simulated-tick timestamp, the
/// event kind, the span it belongs to (0 for instants), a static name
/// and typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated tick (cycle, nanosecond, protocol tick — whatever the
    /// instrumented layer counts in). Never host time.
    pub tick: u64,
    /// Start, end, or instant.
    pub kind: EventKind,
    /// Span identifier (`0` for instants).
    pub span: u64,
    /// Event name (static: names are part of the schema).
    pub name: &'static str,
    /// Typed fields, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    fn render_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"tick\":{},\"kind\":\"{}\"",
            self.tick,
            self.kind.as_str()
        );
        if self.span != 0 {
            let _ = write!(out, ",\"span\":{}", self.span);
        }
        out.push_str(",\"name\":\"");
        json_escape_into(out, self.name);
        out.push('"');
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape_into(out, k);
                out.push_str("\":");
                v.render_into(out);
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// Handle returned by [`Tracer::span_start`]; pass it to
/// [`Tracer::span_end`] to close the span.
#[derive(Debug, Clone, Copy)]
pub struct SpanId {
    id: u64,
    name: &'static str,
}

/// An ordered, deterministic event log.
///
/// A disabled tracer ([`Tracer::disabled`]) accepts every call and
/// records nothing, so instrumented code paths need no `if traced`
/// branches and the untraced baseline pays only a branch per event.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
    next_span: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A recording tracer.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
            next_span: 1,
        }
    }

    /// A no-op tracer: every call is accepted, nothing is recorded.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            events: Vec::new(),
            next_span: 1,
        }
    }

    /// Whether this tracer records events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a point event.
    pub fn instant(&mut self, tick: u64, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            tick,
            kind: EventKind::Instant,
            span: 0,
            name,
            fields,
        });
    }

    /// Opens a span and returns its handle.
    pub fn span_start(
        &mut self,
        tick: u64,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> SpanId {
        if !self.enabled {
            return SpanId { id: 0, name };
        }
        let id = self.next_span;
        self.next_span += 1;
        self.events.push(TraceEvent {
            tick,
            kind: EventKind::SpanStart,
            span: id,
            name,
            fields,
        });
        SpanId { id, name }
    }

    /// Closes a span opened by [`Tracer::span_start`], attaching
    /// `fields` to the end event.
    pub fn span_end(&mut self, tick: u64, span: SpanId, fields: Vec<(&'static str, Value)>) {
        if !self.enabled || span.id == 0 {
            return;
        }
        self.events.push(TraceEvent {
            tick,
            kind: EventKind::SpanEnd,
            span: span.id,
            name: span.name,
            fields,
        });
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends `other`'s log to this one, rebasing its span ids past
    /// ours. Merging per-item tracers **in input order** is how a
    /// parallel run reproduces the serial event log byte for byte.
    pub fn merge(&mut self, other: Tracer) {
        if !self.enabled {
            return;
        }
        let offset = self.next_span - 1;
        for mut ev in other.events {
            if ev.span != 0 {
                ev.span += offset;
            }
            self.events.push(ev);
        }
        self.next_span += other.next_span - 1;
    }

    /// Renders the log as JSON Lines: one event object per line, in
    /// recording order. Deterministic for deterministic inputs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            ev.render_into(&mut out);
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A fixed-boundary histogram.
///
/// `bounds` are the strictly increasing bucket upper edges; bucket `i`
/// covers `(bounds[i-1], bounds[i]]` and one extra overflow bucket
/// catches everything above the last edge. Fixed boundaries make
/// [`Histogram::merge`] exact and commutative, which is what lets
/// parallel shards aggregate deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over explicit bucket upper edges.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential edges `start, start·factor, …` (`buckets` edges).
    ///
    /// # Panics
    ///
    /// Panics when `start <= 0`, `factor <= 1`, or `buckets == 0`.
    pub fn exponential(start: f64, factor: f64, buckets: usize) -> Self {
        assert!(
            start > 0.0 && factor > 1.0 && buckets > 0,
            "bad exponential spec"
        );
        let mut bounds = Vec::with_capacity(buckets);
        let mut edge = start;
        for _ in 0..buckets {
            bounds.push(edge);
            edge *= factor;
        }
        Self::with_bounds(bounds)
    }

    /// The default edges used by [`Registry::observe`]: 24 exponential
    /// buckets from 1.0 with factor 2 (covers 1 … 8.4M with ≤2× error).
    pub fn default_bounds() -> Self {
        Self::exponential(1.0, 2.0, 24)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Exactly commutative: bucket counts
    /// add, and two-operand f64 sums are themselves commutative.
    ///
    /// # Panics
    ///
    /// Panics when the bucket boundaries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Quantile estimate: the upper edge of the bucket holding the
    /// `q`-th sample, clamped to the observed max — within one bucket
    /// width of the exact order statistic for in-range samples. NaN
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let edge = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return edge.min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One scalar statistic.
#[derive(Debug, Clone, Default)]
struct Scalar {
    value: f64,
    description: String,
}

/// One distribution statistic (running moments + min/max).
#[derive(Debug, Clone, Default)]
struct Distribution {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    description: String,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    scalars: BTreeMap<String, Scalar>,
    distributions: BTreeMap<String, Distribution>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The thread-safe metrics registry.
///
/// Subsumes the old system-crate `StatRegistry` (same scalar /
/// distribution API and the same gem5 `name value # description` dump
/// format) and adds integer counters and fixed-boundary histograms.
/// Every method takes `&self` — worker threads record into one shared
/// registry — and every mutation commutes, so the final state is
/// independent of interleaving. Exports walk `BTreeMap`s, so rendering
/// order is deterministic too.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Clone for Registry {
    fn clone(&self) -> Self {
        Registry {
            inner: Mutex::new(self.snapshot()),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.snapshot();
        f.debug_struct("Registry")
            .field("scalars", &inner.scalars.len())
            .field("distributions", &inner.distributions.len())
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a recording thread panicked; the panic
        // is already propagating, so unwrapping here cannot hide it.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn snapshot(&self) -> Inner {
        self.lock().clone()
    }

    // ---- gem5-style scalars and distributions (old StatRegistry) ----

    /// Increments a scalar counter, creating it on first use.
    pub fn add(&self, name: &str, amount: f64, description: &str) {
        let mut inner = self.lock();
        let entry = inner.scalars.entry(name.to_string()).or_default();
        entry.value += amount;
        if entry.description.is_empty() {
            entry.description = description.to_string();
        }
    }

    /// Sets a scalar to an absolute value.
    pub fn set(&self, name: &str, value: f64, description: &str) {
        let mut inner = self.lock();
        let entry = inner.scalars.entry(name.to_string()).or_default();
        entry.value = value;
        if entry.description.is_empty() {
            entry.description = description.to_string();
        }
    }

    /// Records a sample into a distribution.
    pub fn sample(&self, name: &str, value: f64, description: &str) {
        let mut inner = self.lock();
        let entry = inner
            .distributions
            .entry(name.to_string())
            .or_insert_with(|| Distribution {
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                description: description.to_string(),
                ..Default::default()
            });
        entry.count += 1;
        entry.sum += value;
        entry.sum_sq += value * value;
        entry.min = entry.min.min(value);
        entry.max = entry.max.max(value);
    }

    /// Reads a scalar (0.0 when absent).
    pub fn scalar(&self, name: &str) -> f64 {
        self.lock().scalars.get(name).map_or(0.0, |s| s.value)
    }

    /// Mean of a distribution (NaN when empty/absent).
    pub fn mean(&self, name: &str) -> f64 {
        self.lock()
            .distributions
            .get(name)
            .filter(|d| d.count > 0)
            .map_or(f64::NAN, |d| d.sum / d.count as f64)
    }

    /// Sample count of a distribution.
    pub fn count(&self, name: &str) -> u64 {
        self.lock().distributions.get(name).map_or(0, |d| d.count)
    }

    // ---- counters and histograms ----

    /// Adds `amount` to an integer counter, creating it at zero.
    pub fn counter(&self, name: &str, amount: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += amount;
    }

    /// Reads a counter (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into the named histogram, creating it with
    /// [`Histogram::default_bounds`] on first use.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, Histogram::default_bounds);
    }

    /// Records `value` into the named histogram, creating it with
    /// `make()` on first use. All shards of one metric must use the
    /// same boundaries or a later [`Registry::merge`] panics.
    pub fn observe_with(&self, name: &str, value: f64, make: impl FnOnce() -> Histogram) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(make)
            .record(value);
    }

    /// A copy of the named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Quantile of the named histogram (NaN when absent/empty).
    pub fn quantile(&self, name: &str, q: f64) -> f64 {
        self.lock()
            .histograms
            .get(name)
            .map_or(f64::NAN, |h| h.quantile(q))
    }

    // ---- aggregation and export ----

    /// Folds `other` into `self`: scalars and counters add,
    /// distributions and histograms merge. Commutative and
    /// associative, so shards merged in any grouping agree. Scalars
    /// written with [`Registry::set`] are summed like any other scalar;
    /// set absolute values after merging, not before.
    ///
    /// # Panics
    ///
    /// Panics when a shared histogram name has different boundaries.
    pub fn merge(&self, other: &Registry) {
        let theirs = other.snapshot();
        let mut inner = self.lock();
        for (name, s) in theirs.scalars {
            let entry = inner.scalars.entry(name).or_default();
            entry.value += s.value;
            if entry.description.is_empty() {
                entry.description = s.description;
            }
        }
        for (name, d) in theirs.distributions {
            let entry = inner
                .distributions
                .entry(name)
                .or_insert_with(|| Distribution {
                    min: f64::INFINITY,
                    max: f64::NEG_INFINITY,
                    description: d.description.clone(),
                    ..Default::default()
                });
            entry.count += d.count;
            entry.sum += d.sum;
            entry.sum_sq += d.sum_sq;
            entry.min = entry.min.min(d.min);
            entry.max = entry.max.max(d.max);
        }
        for (name, v) in theirs.counters {
            *inner.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in theirs.histograms {
            match inner.histograms.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
            }
        }
    }

    /// Renders the gem5-style dump: scalars, then distributions, then
    /// counters and histogram summaries, each section in name order.
    pub fn dump(&self) -> String {
        let inner = self.snapshot();
        let mut out = String::from("---------- Begin Simulation Statistics ----------\n");
        for (name, s) in &inner.scalars {
            let _ = writeln!(out, "{name:<42} {:>14.4} # {}", s.value, s.description);
        }
        for (name, d) in &inner.distributions {
            if d.count == 0 {
                continue;
            }
            let mean = d.sum / d.count as f64;
            let var = (d.sum_sq / d.count as f64 - mean * mean).max(0.0);
            let _ = writeln!(
                out,
                "{:<42} {:>14.4} # {} (n={}, sd={:.4}, min={:.4}, max={:.4})",
                format!("{name}::mean"),
                mean,
                d.description,
                d.count,
                var.sqrt(),
                d.min,
                d.max
            );
        }
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "{name:<42} {v:>14} # (counter)");
        }
        for (name, h) in &inner.histograms {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<42} {:>14.4} # (histogram: n={}, mean={:.4}, p99={:.4})",
                format!("{name}::p50"),
                h.quantile(0.5),
                h.count(),
                h.mean(),
                h.quantile(0.99)
            );
        }
        out.push_str("---------- End Simulation Statistics   ----------\n");
        out
    }

    /// Renders every metric as JSON Lines, one object per line, in
    /// section order (scalars, distributions, counters, histograms)
    /// and name order within a section. Deterministic.
    pub fn to_jsonl(&self) -> String {
        let inner = self.snapshot();
        let mut out = String::new();
        for (name, s) in &inner.scalars {
            out.push_str("{\"type\":\"scalar\",\"name\":\"");
            json_escape_into(&mut out, name);
            out.push_str("\",\"value\":");
            json_f64_into(&mut out, s.value);
            out.push_str("}\n");
        }
        for (name, d) in &inner.distributions {
            out.push_str("{\"type\":\"dist\",\"name\":\"");
            json_escape_into(&mut out, name);
            let _ = write!(out, "\",\"count\":{},\"sum\":", d.count);
            json_f64_into(&mut out, d.sum);
            out.push_str(",\"min\":");
            json_f64_into(&mut out, if d.count == 0 { f64::NAN } else { d.min });
            out.push_str(",\"max\":");
            json_f64_into(&mut out, if d.count == 0 { f64::NAN } else { d.max });
            out.push_str("}\n");
        }
        for (name, v) in &inner.counters {
            out.push_str("{\"type\":\"counter\",\"name\":\"");
            json_escape_into(&mut out, name);
            let _ = write!(out, "\",\"value\":{v}}}");
            out.push('\n');
        }
        for (name, h) in &inner.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":\"");
            json_escape_into(&mut out, name);
            let _ = write!(out, "\",\"count\":{},\"sum\":", h.count());
            json_f64_into(&mut out, h.sum());
            out.push_str(",\"min\":");
            json_f64_into(&mut out, if h.count() == 0 { f64::NAN } else { h.min() });
            out.push_str(",\"max\":");
            json_f64_into(&mut out, if h.count() == 0 { f64::NAN } else { h.max() });
            out.push_str(",\"counts\":[");
            for (i, c) in h.bucket_counts().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Clears all statistics.
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }
}

// ---------------------------------------------------------------------------
// Noise-draw accounting
// ---------------------------------------------------------------------------

/// A pass-through [`RngCore`] wrapper that counts draws without
/// perturbing the stream — each `next_u32`/`next_u64`/`fill_bytes`
/// call is one draw. Wraps a model's RNG so "noise draws per
/// evaluation" becomes a measurable metric.
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R> CountingRng<R> {
    /// Wraps `inner` with a zeroed draw counter.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Draws observed so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.draws += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws += 1;
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.draws += 1;
        self.inner.try_fill_bytes(dest)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Adds to a [`Registry`](crate::trace::Registry) counter:
/// `counter!(reg, "name")` adds 1, `counter!(reg, "name", n)` adds `n`.
#[macro_export]
macro_rules! counter {
    ($reg:expr, $name:expr) => {
        $reg.counter($name, 1)
    };
    ($reg:expr, $name:expr, $amount:expr) => {
        $reg.counter($name, $amount)
    };
}

/// Records a sample into a [`Registry`](crate::trace::Registry)
/// histogram (default boundaries on first use).
#[macro_export]
macro_rules! histogram {
    ($reg:expr, $name:expr, $value:expr) => {
        $reg.observe($name, $value as f64)
    };
}

/// Records a complete span on a [`Tracer`](crate::trace::Tracer):
/// `trace_span!(tracer, start_tick, end_tick, "name", "key" => value, ...)`.
/// Fields attach to the start event.
#[macro_export]
macro_rules! trace_span {
    ($tracer:expr, $start:expr, $end:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {{
        let __span = $tracer.span_start(
            $start,
            $name,
            vec![$(($k, $crate::trace::Value::from($v))),*],
        );
        $tracer.span_end($end, __span, vec![]);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, SeedableRng};
    use crate::rngs::StdRng;

    #[test]
    fn tracer_records_in_order_and_renders_jsonl() {
        let mut t = Tracer::new();
        let s = t.span_start(0, "session", vec![("side", Value::from("A"))]);
        t.instant(3, "frame.send", vec![("len", Value::from(42u64))]);
        t.span_end(7, s, vec![("ok", Value::from(true))]);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"tick":0,"kind":"span_start","span":1,"name":"session","fields":{"side":"A"}}"#
        );
        assert_eq!(
            lines[1],
            r#"{"tick":3,"kind":"instant","name":"frame.send","fields":{"len":42}}"#
        );
        assert_eq!(
            lines[2],
            r#"{"tick":7,"kind":"span_end","span":1,"name":"session","fields":{"ok":true}}"#
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        let s = t.span_start(0, "x", vec![]);
        t.instant(1, "y", vec![]);
        t.span_end(2, s, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn merge_rebases_span_ids() {
        let mut a = Tracer::new();
        let sa = a.span_start(0, "a", vec![]);
        a.span_end(1, sa, vec![]);
        let mut b = Tracer::new();
        let sb = b.span_start(0, "b", vec![]);
        b.span_end(2, sb, vec![]);
        a.merge(b);
        let spans: Vec<u64> = a.events().iter().map(|e| e.span).collect();
        assert_eq!(spans, vec![1, 1, 2, 2]);
        // A further span continues past the merged ids.
        let sc = a.span_start(5, "c", vec![]);
        assert_eq!(a.events().last().unwrap().span, 3);
        a.span_end(6, sc, vec![]);
    }

    #[test]
    fn merged_tracers_reproduce_serial_log() {
        // Serial: one tracer records items 0..4 in order. Parallel:
        // per-item tracers merged in input order. Same JSONL.
        let mut serial = Tracer::new();
        for i in 0..4u64 {
            let s = serial.span_start(i * 10, "item", vec![("i", Value::from(i))]);
            serial.span_end(i * 10 + 5, s, vec![]);
        }
        let shards: Vec<Tracer> = (0..4u64)
            .map(|i| {
                let mut t = Tracer::new();
                let s = t.span_start(i * 10, "item", vec![("i", Value::from(i))]);
                t.span_end(i * 10 + 5, s, vec![]);
                t
            })
            .collect();
        let mut merged = Tracer::new();
        for t in shards {
            merged.merge(t);
        }
        assert_eq!(merged.to_jsonl(), serial.to_jsonl());
    }

    #[test]
    fn json_escaping_and_nonfinite_floats() {
        let mut t = Tracer::new();
        t.instant(
            0,
            "odd",
            vec![
                ("s", Value::from("a\"b\\c\nd")),
                ("nan", Value::from(f64::NAN)),
                ("inf", Value::from(f64::INFINITY)),
            ],
        );
        let line = t.to_jsonl();
        assert!(line.contains(r#""s":"a\"b\\c\nd""#), "{line}");
        assert!(line.contains(r#""nan":null"#), "{line}");
        assert!(line.contains(r#""inf":null"#), "{line}");
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        // (-inf,1]: 0.5, 1.0; (1,2]: 1.5; (2,4]: 3.0; overflow: 100.
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut a = Histogram::default_bounds();
        let mut b = Histogram::default_bounds();
        for _ in 0..200 {
            a.record(rng.gen_range(0.0..1e6));
            b.record(rng.gen_range(0.0..10.0));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn quantile_within_one_bucket_of_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = Histogram::with_bounds((1..=100).map(f64::from).collect());
        let mut values: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..100.0)).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = values[((q * 500.0_f64).ceil() as usize - 1).min(499)];
            let est = h.quantile(q);
            assert!(
                (est - exact).abs() <= 1.0 + 1e-9,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = Histogram::default_bounds();
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
    }

    #[test]
    fn registry_counters_and_histograms() {
        let reg = Registry::new();
        crate::counter!(reg, "wire.frames");
        crate::counter!(reg, "wire.frames", 4);
        crate::histogram!(reg, "lat", 3.0);
        crate::histogram!(reg, "lat", 5.0);
        assert_eq!(reg.counter_value("wire.frames"), 5);
        assert_eq!(reg.histogram("lat").unwrap().count(), 2);
        assert!((reg.histogram("lat").unwrap().mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn registry_preserves_gem5_dump_shape() {
        let reg = Registry::new();
        reg.add("sim.ticks", 100.0, "simulated ticks");
        reg.sample("puf.latency", 6.0, "per-eval latency");
        reg.counter("bus.reads", 3);
        let dump = reg.dump();
        assert!(dump.contains("sim.ticks"));
        assert!(dump.contains("puf.latency::mean"));
        assert!(dump.contains("bus.reads"));
        assert!(dump.contains("Begin Simulation Statistics"));
    }

    #[test]
    fn registry_merge_accumulates_everything() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("x", 1.0, "d");
        b.add("x", 2.0, "d");
        a.counter("c", 5);
        b.counter("c", 7);
        a.observe("h", 2.0);
        b.observe("h", 1000.0);
        a.sample("d", 1.0, "");
        b.sample("d", 3.0, "");
        a.merge(&b);
        assert_eq!(a.scalar("x"), 3.0);
        assert_eq!(a.counter_value("c"), 12);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.count("d"), 2);
        assert!((a.mean("d") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn registry_jsonl_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("z.last", 1);
        reg.counter("a.first", 2);
        reg.observe("h", 3.0);
        let a = reg.to_jsonl();
        let b = reg.clone().to_jsonl();
        assert_eq!(a, b);
        let first_counter = a.lines().position(|l| l.contains("a.first")).unwrap();
        let last_counter = a.lines().position(|l| l.contains("z.last")).unwrap();
        assert!(first_counter < last_counter, "{a}");
    }

    #[test]
    fn counting_rng_preserves_the_stream() {
        let mut plain = StdRng::seed_from_u64(5);
        let mut counted = CountingRng::new(StdRng::seed_from_u64(5));
        let a: Vec<u64> = (0..10).map(|_| plain.next_u64()).collect();
        let b: Vec<u64> = (0..10).map(|_| counted.next_u64()).collect();
        assert_eq!(a, b);
        assert_eq!(counted.draws(), 10);
        let mut buf = [0u8; 16];
        counted.fill_bytes(&mut buf);
        assert_eq!(counted.draws(), 11);
    }

    #[test]
    fn trace_span_macro_records_start_and_end() {
        let mut t = Tracer::new();
        crate::trace_span!(t, 10, 20, "work", "device" => 3usize, "ok" => true);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].kind, EventKind::SpanStart);
        assert_eq!(t.events()[1].kind, EventKind::SpanEnd);
        assert_eq!(t.events()[0].tick, 10);
        assert_eq!(t.events()[1].tick, 20);
    }
}
