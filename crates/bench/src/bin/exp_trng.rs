//! Regenerates the TRNG study (E16).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, _) = experiments::trng::run(Scale::from_args());
    print!("{out}");
}
