//! Regenerates the instrumentation-overhead study (E19) and writes the
//! traced fleet event log to `TRACE_exp_fleet.jsonl` (the artifact CI
//! diffs across thread counts).
//!
//! Run standalone, this binary also *enforces* the overhead budget:
//! tracing the fleet workload must cost < 5% wall clock. The budget is
//! asserted here rather than in the library so the noisy parallel
//! schedule of `exp_all` cannot flake it.
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, outcome) = experiments::trace_overhead::run(Scale::from_args());
    print!("{out}");
    match std::fs::write("TRACE_exp_fleet.jsonl", &outcome.trace_jsonl) {
        Ok(()) => eprintln!("wrote TRACE_exp_fleet.jsonl ({} events)", outcome.events),
        Err(e) => eprintln!("could not write TRACE_exp_fleet.jsonl: {e}"),
    }
    assert!(
        outcome.overhead_frac < 0.05,
        "instrumentation overhead {:.2}% exceeds the 5% budget",
        outcome.overhead_frac * 100.0
    );
    eprintln!(
        "overhead {:+.2}% — within the 5% budget",
        outcome.overhead_frac * 100.0
    );
}
