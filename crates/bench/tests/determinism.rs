//! The harness half of the determinism contract: every parallelized
//! experiment must render byte-identical output at 1 thread and at N
//! threads. CI additionally diffs the `exp_all --smoke` binaries at the
//! process level; these tests localize a violation to the experiment
//! that introduced shared RNG state.

use neuropuls_bench::{experiments, Scale};
use neuropuls_rt::pool;

fn assert_thread_invariant(name: &str, render: impl Fn() -> String + Sync) {
    let serial = pool::with_threads(1, &render);
    let wide = pool::with_threads(4, &render);
    assert_eq!(serial, wide, "{name} output depends on the thread count");
}

#[test]
fn fig3_is_thread_invariant() {
    assert_thread_invariant("exp_fig3", || {
        let (ro, _) = experiments::fig3::run_ro(Scale::Smoke);
        let (ph, _) = experiments::fig3::run_photonic(Scale::Smoke);
        format!("{ro}{ph}")
    });
}

#[test]
fn puf_quality_is_thread_invariant() {
    assert_thread_invariant("exp_puf_quality", || {
        experiments::puf_quality::run(Scale::Smoke).0.to_string()
    });
}

#[test]
fn environment_is_thread_invariant() {
    assert_thread_invariant("exp_environment", || {
        experiments::environment::run(Scale::Smoke).0.to_string()
    });
}

#[test]
fn aging_is_thread_invariant() {
    assert_thread_invariant("exp_aging", || {
        experiments::aging::run(Scale::Smoke).0.to_string()
    });
}

#[test]
fn fleet_is_thread_invariant() {
    assert_thread_invariant("exp_fleet", || {
        experiments::fleet::run(Scale::Smoke).0.to_string()
    });
}
