//! E20 — concurrent attestation gateway throughput: hundreds of
//! mutual-authentication wire sessions multiplexed over *one* shared
//! lossy transport, with the sharded CRP store fronting the verifier
//! records. Sweeps session count, CRP-store sharding and frame-loss
//! rate; every cell is an independent seeded run, so the sweep fans out
//! on the pool with byte-identical output at any thread count.

use crate::{Rendered, Scale};
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::gateway::{run_gateway, GatewayConfig, SessionPair};
use neuropuls_protocols::mutual_auth::{
    Device as AuthDevice, Verifier as AuthVerifier, WireDevice, WireVerifier,
};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::{ProtocolId, SessionConfig};
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::trace::{Registry, Tracer};
use neuropuls_system::crp_store::{CrpStore, CrpStoreConfig};

/// One sweep cell: a fleet size, a store geometry and a link quality.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Concurrent sessions per round (one per device).
    sessions: usize,
    /// CRP-store shards.
    shards: usize,
    /// Hot-set capacity per shard.
    hot_per_shard: usize,
    /// Frame-drop probability of the shared link.
    loss: f64,
    /// Authentication rounds (round 1 is cold, later rounds measure
    /// the hot set).
    rounds: usize,
}

/// Deterministic outcome of one cell.
#[derive(Debug, Clone, Copy)]
struct CellResult {
    cell: Cell,
    attempted: usize,
    completed: usize,
    failed: usize,
    ticks: u64,
    retransmits: u64,
    late_frames: u64,
    peak_active: usize,
    hit_rate: f64,
}

/// Runs `cell`: enrolls `sessions` devices in a sharded CRP store,
/// then for each round checks every record out, multiplexes all of the
/// round's wire sessions through the gateway over one shared lossy
/// link, and commits the rotated CRPs back.
fn run_cell(cell: Cell) -> (CellResult, Registry) {
    let registry = Registry::new();
    let mut store: CrpStore<AuthVerifier> = CrpStore::new(CrpStoreConfig {
        shards: cell.shards,
        hot_capacity: cell.hot_per_shard,
    });
    let mut devices: Vec<(u64, AuthDevice<PhotonicPuf>)> = Vec::new();
    for i in 0..cell.sessions as u64 {
        let die = DieId(0xE2_0000 + i);
        let memory: Vec<u8> = (0..256).map(|b| (b * 23 % 241) as u8).collect();
        let Ok((device, provisioned)) = AuthDevice::provision(
            PhotonicPuf::reference(die, 1),
            memory,
            format!("e20-prov-{i}").as_bytes(),
        ) else {
            continue;
        };
        let verifier = AuthVerifier::new(provisioned, format!("e20-verif-{i}").as_bytes());
        if store.enroll(i, verifier).is_ok() {
            devices.push((i, device));
        }
    }

    // One shared link carries every session of every round; the seed
    // folds in the cell geometry so cells are independent draws.
    let seed = 0xE20_u64
        ^ ((cell.sessions as u64) << 32)
        ^ ((cell.shards as u64) << 16)
        ^ (cell.loss * 1000.0) as u64;
    let mut link = FaultyChannel::new(FaultRates::loss(cell.loss), seed);
    let gateway_cfg = GatewayConfig {
        max_active: 512,
        accept_queue: 64,
        max_ticks: 8192.max(cell.sessions as u64 * 64),
        ..GatewayConfig::default()
    };

    let mut attempted = 0usize;
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut ticks = 0u64;
    let mut retransmits = 0u64;
    let mut late_frames = 0u64;
    let mut peak_active = 0usize;
    for round in 0..cell.rounds {
        let mut checked: Vec<(u64, AuthVerifier)> = Vec::new();
        for &(i, _) in &devices {
            if let Ok(verifier) = store.checkout(i) {
                checked.push((i, verifier));
            }
        }
        let mut sessions: Vec<SessionPair<'_>> = Vec::new();
        for ((i, device), (_, verifier)) in devices.iter_mut().zip(checked.iter_mut()) {
            let sid = (round as u64) * (cell.sessions as u64) + *i + 1;
            sessions.push(SessionPair::new(
                ProtocolId::MutualAuth,
                sid,
                Box::new(WireVerifier::new(verifier, sid, SessionConfig::default())),
                Box::new(WireDevice::new(device, SessionConfig::default())),
            ));
        }
        let gw = run_gateway(
            &mut link,
            sessions,
            gateway_cfg.clone(),
            &mut Tracer::disabled(),
            &registry,
        );
        attempted += gw.sessions;
        completed += gw.completed;
        failed += gw.failed + gw.unfinished;
        ticks += gw.ticks;
        retransmits += gw.retransmits;
        late_frames += gw.late_frames + link.drain_late() as u64;
        peak_active = peak_active.max(gw.peak_active);
        for (i, verifier) in checked {
            let _ = store.commit(i, verifier);
        }
    }
    store.fold_into(&registry);
    let result = CellResult {
        cell,
        attempted,
        completed,
        failed,
        ticks,
        retransmits,
        late_frames,
        peak_active,
        hit_rate: store.stats().hit_rate(),
    };
    (result, registry)
}

fn render_table(out: &mut Rendered, results: &[CellResult]) {
    out.push(format!(
        "{:>9} {:>7} {:>9} {:>6} {:>11} {:>7} {:>12} {:>6} {:>11} {:>9}",
        "sessions",
        "shards",
        "hot/shard",
        "loss",
        "completed",
        "failed",
        "retransmits",
        "ticks",
        "peak activ",
        "hit rate"
    ));
    for r in results {
        out.push(format!(
            "{:>9} {:>7} {:>9} {:>5.0}% {:>5}/{:<5} {:>7} {:>12} {:>6} {:>11} {:>8.1}%",
            r.cell.sessions,
            r.cell.shards,
            r.cell.hot_per_shard,
            r.cell.loss * 100.0,
            r.completed,
            r.attempted,
            r.failed,
            r.retransmits,
            r.ticks,
            r.peak_active,
            r.hit_rate * 100.0,
        ));
    }
}

/// Per-cell summary row for the smoke assertions: `(sessions, shards,
/// loss, completed, attempted)`.
pub type CellSummary = (usize, usize, f64, usize, usize);

/// Runs the three sweeps (session count, shard geometry, loss rate) and
/// renders one table per sweep plus a merged-metrics summary.
pub fn run(scale: Scale) -> (Rendered, Vec<CellSummary>) {
    let rounds = 2;
    // Session-count sweep at fixed geometry and 10% loss — the
    // acceptance row: hundreds of concurrent sessions, one lossy wire.
    let session_sweep: Vec<usize> = scale.pick(vec![8, 16], vec![32, 64, 128, 256]);
    // Shard sweep at the largest fleet: more shards at fixed per-shard
    // capacity = a bigger hot set = better hit rate.
    let shard_sweep: Vec<usize> = scale.pick(vec![1, 4], vec![1, 2, 8, 32]);
    // Loss sweep at fixed fleet and geometry.
    let loss_sweep: Vec<f64> = scale.pick(vec![0.0, 0.10], vec![0.0, 0.05, 0.10, 0.20]);
    let top_sessions = *session_sweep.last().unwrap_or(&16);

    let mut cells: Vec<Cell> = Vec::new();
    for &sessions in &session_sweep {
        cells.push(Cell {
            sessions,
            shards: 8,
            hot_per_shard: 8,
            loss: 0.10,
            rounds,
        });
    }
    for &shards in &shard_sweep {
        cells.push(Cell {
            sessions: top_sessions,
            shards,
            hot_per_shard: 8,
            loss: 0.10,
            rounds,
        });
    }
    for &loss in &loss_sweep {
        cells.push(Cell {
            sessions: top_sessions,
            shards: 8,
            hot_per_shard: 8,
            loss,
            rounds,
        });
    }

    // Every cell records into its own registry; merging in input order
    // afterwards keeps the aggregate byte-identical at any thread
    // count.
    let cell_results: Vec<(CellResult, Registry)> = neuropuls_rt::pool::par_map(cells, run_cell);
    let metrics = Registry::new();
    let results: Vec<CellResult> = cell_results
        .into_iter()
        .map(|(result, registry)| {
            metrics.merge(&registry);
            result
        })
        .collect();
    let (sessions_part, rest) = results.split_at(session_sweep.len());
    let (shards_part, loss_part) = rest.split_at(shard_sweep.len());

    let mut out = Rendered::new("E20 — concurrent attestation gateway over one shared link");
    out.push(format!(
        "session-count sweep ({rounds} rounds each, 10% frame drop, 8 shards x 8 hot):"
    ));
    render_table(&mut out, sessions_part);
    out.push(
        "every session multiplexes over the same wire; ARQ absorbs the loss and the \
         round-2 checkout comes from the hot set"
            .to_string(),
    );
    out.push(String::new());
    out.push(format!(
        "shard sweep at {top_sessions} sessions (hot set grows with the shard count):"
    ));
    render_table(&mut out, shards_part);
    out.push(
        "an undersized hot set thrashes on the batched round-robin checkout; once \
         shards x hot covers the fleet the second round hits"
            .to_string(),
    );
    out.push(String::new());
    out.push(format!("loss sweep at {top_sessions} sessions, 8 shards:"));
    render_table(&mut out, loss_part);
    out.push(
        "retransmissions and ticks grow with the drop rate; completions hold through 10% \
         loss and only the harshest link exhausts a few ARQ budgets"
            .to_string(),
    );

    out.push(String::new());
    let late_total: u64 = results.iter().map(|r| r.late_frames).sum();
    out.push(format!(
        "gateway totals: {} sessions completed / {} failed; session ticks p50 {:.0}, \
         p99 {:.0}; {late_total} late frames counted; crp store {} hits / {} misses / {} \
         evictions",
        metrics.counter_value("gateway.completed"),
        metrics.counter_value("gateway.failed") + metrics.counter_value("gateway.unfinished"),
        metrics.quantile("gateway.session_ticks", 0.5),
        metrics.quantile("gateway.session_ticks", 0.99),
        metrics.counter_value("crp_store.hits"),
        metrics.counter_value("crp_store.misses"),
        metrics.counter_value("crp_store.evictions"),
    ));

    let summary = results
        .iter()
        .map(|r| {
            (
                r.cell.sessions,
                r.cell.shards,
                r.cell.loss,
                r.completed,
                r.attempted,
            )
        })
        .collect();
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_gateway_sweep() {
        let (rendered, summary) = run(Scale::Smoke);
        assert!(!summary.is_empty());
        for &(sessions, _, loss, completed, attempted) in &summary {
            assert!(attempted >= sessions, "two rounds per cell");
            if loss <= 0.1 {
                assert_eq!(
                    completed, attempted,
                    "ARQ must carry every session through {loss} loss"
                );
            }
        }
        // The output is deterministic: a second run renders identically.
        let (again, _) = run(Scale::Smoke);
        assert_eq!(rendered.stable_string(), again.stable_string());
    }
}
