//! Byte-level transports connecting two protocol endpoints.
//!
//! Every §III service speaks over a [`Transport`]: a pair of ordered
//! frame queues between side [`Side::A`] (the initiator) and side
//! [`Side::B`] (the responder). Two implementations ship:
//!
//! * [`Channel`] — a perfect, deterministic in-memory link; frames
//!   arrive exactly once, in order, unmodified.
//! * [`FaultyChannel`] — the same link behind a seeded fault injector
//!   that drops, duplicates, reorders, bit-corrupts, or replays frames
//!   at configurable rates, plus an optional man-in-the-middle hook
//!   that observes and rewrites traffic (the §IV adversary).
//!
//! With every fault rate at zero a `FaultyChannel` delivers a byte
//! stream identical to `Channel` (a property test pins this), so
//! experiments can sweep fault rates down to a perfect-channel
//! baseline without switching types.

use neuropuls_rt::rngs::StdRng;
use neuropuls_rt::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// One endpoint of a point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The initiating endpoint (verifier / client / EKE initiator).
    A,
    /// The responding endpoint (device / accelerator / EKE responder).
    B,
}

impl Side {
    /// The opposite endpoint.
    pub fn peer(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// A bidirectional, frame-oriented link between two endpoints.
pub trait Transport {
    /// Queues `frame` from `from` toward its peer.
    fn send(&mut self, from: Side, frame: Vec<u8>);

    /// Pops the next frame awaiting delivery to `to`, if any.
    fn recv(&mut self, to: Side) -> Option<Vec<u8>>;
}

/// Perfect in-memory channel: ordered, lossless, unmodified delivery.
#[derive(Debug, Default)]
pub struct Channel {
    to_a: VecDeque<Vec<u8>>,
    to_b: VecDeque<Vec<u8>>,
    transcript: Vec<(Side, Vec<u8>)>,
}

impl Channel {
    /// An empty channel.
    pub fn new() -> Self {
        Channel::default()
    }

    /// Every frame admitted for delivery, in admission order, tagged
    /// with the side that sent it. Used to compare transports
    /// byte-for-byte.
    pub fn transcript(&self) -> &[(Side, Vec<u8>)] {
        &self.transcript
    }

    /// Frames admitted but not yet received by `to` (in flight).
    pub fn pending(&self, to: Side) -> usize {
        match to {
            Side::A => self.to_a.len(),
            Side::B => self.to_b.len(),
        }
    }

    fn queue_mut(&mut self, to: Side) -> &mut VecDeque<Vec<u8>> {
        match to {
            Side::A => &mut self.to_a,
            Side::B => &mut self.to_b,
        }
    }
}

impl Transport for Channel {
    fn send(&mut self, from: Side, frame: Vec<u8>) {
        self.transcript.push((from, frame.clone()));
        self.queue_mut(from.peer()).push_back(frame);
    }

    fn recv(&mut self, to: Side) -> Option<Vec<u8>> {
        self.queue_mut(to).pop_front()
    }
}

/// Per-frame fault probabilities of a [`FaultyChannel`]. Each fault is
/// an independent draw; `drop` preempts the others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a frame is silently discarded.
    pub drop: f64,
    /// Probability a delivered frame is enqueued twice.
    pub duplicate: f64,
    /// Probability a delivered frame is swapped with the frame queued
    /// just before it (adjacent reorder).
    pub reorder: f64,
    /// Probability one uniformly chosen bit of the frame is flipped.
    pub corrupt: f64,
    /// Probability a uniformly chosen *past* frame is re-injected
    /// toward the same destination after this one.
    pub replay: f64,
}

impl FaultRates {
    /// A fault-free channel (behaves exactly like [`Channel`]).
    pub fn none() -> Self {
        FaultRates {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            replay: 0.0,
        }
    }

    /// Pure loss at probability `p`.
    pub fn loss(p: f64) -> Self {
        FaultRates {
            drop: p,
            ..FaultRates::none()
        }
    }

    /// Pure bit corruption at probability `p`.
    pub fn corruption(p: f64) -> Self {
        FaultRates {
            corrupt: p,
            ..FaultRates::none()
        }
    }
}

/// What a man-in-the-middle hook decides to do with an observed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MitmVerdict {
    /// Deliver the frame unmodified.
    Forward,
    /// Suppress the frame entirely.
    Drop,
    /// Deliver the supplied bytes in place of the observed frame.
    Replace(Vec<u8>),
}

/// The MITM observation hook: sees (sender, frame bytes), returns a
/// verdict. Runs *before* random fault injection — the adversary taps
/// the wire, the noise happens on the wire.
pub type MitmHook = Box<dyn FnMut(Side, &[u8]) -> MitmVerdict>;

/// Running counters of what a [`FaultyChannel`] did to the traffic.
///
/// Frame conservation holds at all times (the interleaved-fault
/// regression tests pin both identities):
///
/// * `sent + injected = mitm_dropped + dropped +
///   (delivered − duplicated − replayed)` — every frame handed to the
///   channel is suppressed, dropped, or admitted exactly once, with
///   duplicates, replays and attacker injections accounted separately;
/// * `delivered = received + in-flight + late_drained` — every admitted
///   frame is eventually received by a peer, still queued, or drained
///   as a late frame after the session tore down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames handed to `send`.
    pub sent: usize,
    /// Frames admitted for delivery (including duplicates/replays).
    pub delivered: usize,
    /// Frames popped by `recv` (actually seen by a peer).
    pub received: usize,
    /// Frames randomly dropped.
    pub dropped: usize,
    /// Frames enqueued twice.
    pub duplicated: usize,
    /// Adjacent swaps performed.
    pub reordered: usize,
    /// Frames with a flipped bit.
    pub corrupted: usize,
    /// Past frames re-injected.
    pub replayed: usize,
    /// Frames the attacker transmitted directly via
    /// [`FaultyChannel::inject`] (bypassing fault injection).
    pub injected: usize,
    /// Frames suppressed by the MITM hook.
    pub mitm_dropped: usize,
    /// Frames rewritten by the MITM hook.
    pub mitm_replaced: usize,
    /// Frames still in flight when the session tore down, drained and
    /// accounted via [`FaultyChannel::drain_late`] instead of being
    /// silently leaked in the queues.
    pub late_drained: usize,
}

/// Realized fault fractions of a [`FaultyChannel`]
/// (see [`FaultyChannel::realized_rates`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealizedRates {
    /// Fraction of admitted frames that were dropped.
    pub drop: f64,
    /// Fraction of surviving frames that were duplicated.
    pub duplicate: f64,
    /// Fraction of surviving frames that had a bit flipped.
    pub corrupt: f64,
    /// Frames that entered the fault injector (post-MITM denominator).
    pub admitted: usize,
}

/// A [`Channel`] behind a seeded fault injector and an optional MITM
/// hook. Deterministic: same seed, same traffic, same faults.
pub struct FaultyChannel {
    inner: Channel,
    rates: FaultRates,
    rng: StdRng,
    history: Vec<Vec<u8>>,
    mitm: Option<MitmHook>,
    stats: FaultStats,
}

impl fmt::Debug for FaultyChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyChannel")
            .field("rates", &self.rates)
            .field("stats", &self.stats)
            .field("mitm", &self.mitm.is_some())
            .finish()
    }
}

impl FaultyChannel {
    /// Creates a channel with the given fault rates and RNG seed.
    pub fn new(rates: FaultRates, seed: u64) -> Self {
        FaultyChannel {
            inner: Channel::new(),
            rates,
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
            mitm: None,
            stats: FaultStats::default(),
        }
    }

    /// Installs a man-in-the-middle hook (replacing any previous one).
    pub fn set_mitm(&mut self, hook: MitmHook) {
        self.mitm = Some(hook);
    }

    /// Removes the MITM hook.
    pub fn clear_mitm(&mut self) {
        self.mitm = None;
    }

    /// Injects a frame directly toward `to`, bypassing fault injection
    /// — the attacker's own transmission. Counted under
    /// [`FaultStats::injected`] (it never passed through `send`, so it
    /// must not inflate the `sent`-based realized rates).
    pub fn inject(&mut self, to: Side, frame: Vec<u8>) {
        self.stats.delivered += 1;
        self.stats.injected += 1;
        self.inner.send(to.peer(), frame);
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Frames admitted but not yet received by `to` (in flight).
    pub fn pending(&self, to: Side) -> usize {
        self.inner.pending(to)
    }

    /// Drains every frame still in flight in both directions — the
    /// frames a closed session never collected (late duplicates,
    /// replays landing after completion). They are counted under
    /// [`FaultStats::late_drained`] rather than silently leaked, so
    /// `delivered == received + late_drained` holds once the session is
    /// torn down. Returns how many frames were drained.
    pub fn drain_late(&mut self) -> usize {
        let mut drained = 0;
        for side in [Side::A, Side::B] {
            while self.inner.recv(side).is_some() {
                drained += 1;
            }
        }
        self.stats.late_drained += drained;
        drained
    }

    /// Realized per-frame fault fractions, computed over the frames
    /// each fault could actually have hit: drops over every frame
    /// admitted past the MITM hook, duplicates/corruptions over the
    /// frames that survived the drop draw. For long seeded runs these
    /// converge on the configured [`FaultRates`] — E18 reports them
    /// next to the configured rates so a miswired injector is visible.
    pub fn realized_rates(&self) -> RealizedRates {
        let admitted = self.stats.sent - self.stats.mitm_dropped;
        let survivors = admitted - self.stats.dropped;
        let frac = |n: usize, d: usize| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        RealizedRates {
            drop: frac(self.stats.dropped, admitted),
            duplicate: frac(self.stats.duplicated, survivors),
            corrupt: frac(self.stats.corrupted, survivors),
            admitted,
        }
    }

    /// Frames admitted for delivery, post-faults; comparable with
    /// [`Channel::transcript`].
    pub fn transcript(&self) -> &[(Side, Vec<u8>)] {
        self.inner.transcript()
    }
}

impl Transport for FaultyChannel {
    fn send(&mut self, from: Side, mut frame: Vec<u8>) {
        self.stats.sent += 1;

        // The adversary taps the wire first; channel noise applies to
        // whatever it lets through.
        if let Some(hook) = self.mitm.as_mut() {
            match hook(from, &frame) {
                MitmVerdict::Forward => {}
                MitmVerdict::Drop => {
                    self.stats.mitm_dropped += 1;
                    return;
                }
                MitmVerdict::Replace(replacement) => {
                    self.stats.mitm_replaced += 1;
                    frame = replacement;
                }
            }
        }
        self.history.push(frame.clone());

        if self.rng.gen_bool(self.rates.drop) {
            self.stats.dropped += 1;
            return;
        }
        if self.rng.gen_bool(self.rates.corrupt) && !frame.is_empty() {
            let bit = self.rng.gen_range(0..frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
            self.stats.corrupted += 1;
        }

        self.stats.delivered += 1;
        self.inner.send(from, frame.clone());

        if self.rng.gen_bool(self.rates.duplicate) {
            self.stats.delivered += 1;
            self.stats.duplicated += 1;
            self.inner.send(from, frame);
        }
        if self.rng.gen_bool(self.rates.reorder) {
            let queue = self.inner.queue_mut(from.peer());
            let n = queue.len();
            if n >= 2 {
                queue.swap(n - 1, n - 2);
                self.stats.reordered += 1;
            }
        }
        if self.rng.gen_bool(self.rates.replay) && !self.history.is_empty() {
            let idx = self.rng.gen_range(0..self.history.len());
            let old = self.history[idx].clone();
            self.stats.delivered += 1;
            self.stats.replayed += 1;
            self.inner.send(from, old);
        }
    }

    fn recv(&mut self, to: Side) -> Option<Vec<u8>> {
        let frame = self.inner.recv(to);
        if frame.is_some() {
            self.stats.received += 1;
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; 4 + i % 3]).collect()
    }

    #[test]
    fn perfect_channel_is_fifo_both_ways() {
        let mut ch = Channel::new();
        ch.send(Side::A, vec![1]);
        ch.send(Side::A, vec![2]);
        ch.send(Side::B, vec![9]);
        assert_eq!(ch.recv(Side::B), Some(vec![1]));
        assert_eq!(ch.recv(Side::B), Some(vec![2]));
        assert_eq!(ch.recv(Side::B), None);
        assert_eq!(ch.recv(Side::A), Some(vec![9]));
    }

    #[test]
    fn zero_rates_match_perfect_channel() {
        let mut perfect = Channel::new();
        let mut faulty = FaultyChannel::new(FaultRates::none(), 42);
        for (i, f) in frames(20).into_iter().enumerate() {
            let side = if i % 2 == 0 { Side::A } else { Side::B };
            perfect.send(side, f.clone());
            faulty.send(side, f);
        }
        assert_eq!(perfect.transcript(), faulty.transcript());
        while let Some(f) = perfect.recv(Side::B) {
            assert_eq!(faulty.recv(Side::B), Some(f));
        }
        assert_eq!(faulty.recv(Side::B), None);
    }

    #[test]
    fn drop_rate_one_delivers_nothing() {
        let mut ch = FaultyChannel::new(FaultRates::loss(1.0), 7);
        for f in frames(10) {
            ch.send(Side::A, f);
        }
        assert_eq!(ch.recv(Side::B), None);
        assert_eq!(ch.stats().dropped, 10);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut ch = FaultyChannel::new(FaultRates::corruption(1.0), 3);
        ch.send(Side::A, vec![0u8; 16]);
        let got = ch.recv(Side::B).unwrap();
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit must differ");
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut ch = FaultyChannel::new(
            FaultRates {
                duplicate: 1.0,
                ..FaultRates::none()
            },
            5,
        );
        ch.send(Side::A, vec![7, 7]);
        assert_eq!(ch.recv(Side::B), Some(vec![7, 7]));
        assert_eq!(ch.recv(Side::B), Some(vec![7, 7]));
        assert_eq!(ch.recv(Side::B), None);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        let mut ch = FaultyChannel::new(
            FaultRates {
                reorder: 1.0,
                ..FaultRates::none()
            },
            5,
        );
        ch.send(Side::A, vec![1]);
        ch.send(Side::A, vec![2]);
        // The second send swaps with the first still in the queue.
        assert_eq!(ch.recv(Side::B), Some(vec![2]));
        assert_eq!(ch.recv(Side::B), Some(vec![1]));
    }

    #[test]
    fn replay_reinjects_history() {
        let mut ch = FaultyChannel::new(
            FaultRates {
                replay: 1.0,
                ..FaultRates::none()
            },
            5,
        );
        ch.send(Side::A, vec![1]);
        // Delivered once plus one replayed copy from history.
        let mut got = Vec::new();
        while let Some(f) = ch.recv(Side::B) {
            got.push(f);
        }
        assert!(got.len() >= 2);
        assert!(got.iter().all(|f| f == &vec![1]));
    }

    #[test]
    fn mitm_can_drop_and_replace() {
        let mut ch = FaultyChannel::new(FaultRates::none(), 1);
        ch.set_mitm(Box::new(|_, frame: &[u8]| {
            if frame == [1] {
                MitmVerdict::Drop
            } else {
                MitmVerdict::Replace(vec![0xEE])
            }
        }));
        ch.send(Side::A, vec![1]);
        ch.send(Side::A, vec![2]);
        assert_eq!(ch.recv(Side::B), Some(vec![0xEE]));
        assert_eq!(ch.recv(Side::B), None);
        assert_eq!(ch.stats().mitm_dropped, 1);
        assert_eq!(ch.stats().mitm_replaced, 1);
        ch.clear_mitm();
        ch.send(Side::A, vec![3]);
        assert_eq!(ch.recv(Side::B), Some(vec![3]));
    }

    #[test]
    fn inject_bypasses_faults() {
        let mut ch = FaultyChannel::new(FaultRates::loss(1.0), 1);
        ch.inject(Side::B, vec![5]);
        assert_eq!(ch.recv(Side::B), Some(vec![5]));
    }

    #[test]
    fn realized_rates_track_configured_rates() {
        // 4000 seeded frames: each realized fraction must land within
        // ±0.02 of its configured probability (>3σ for these rates), so
        // a miswired injector (wrong denominator, skipped draw) fails.
        let configured = FaultRates {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.0,
            corrupt: 0.05,
            replay: 0.0,
        };
        let mut ch = FaultyChannel::new(configured, 2024);
        for i in 0..4000usize {
            ch.send(Side::A, vec![i as u8, (i >> 8) as u8, 0xAB, 0xCD]);
            while ch.recv(Side::B).is_some() {}
        }
        let realized = ch.realized_rates();
        assert_eq!(realized.admitted, 4000);
        assert!(
            (realized.drop - configured.drop).abs() < 0.02,
            "drop: realized {} vs configured {}",
            realized.drop,
            configured.drop
        );
        assert!(
            (realized.duplicate - configured.duplicate).abs() < 0.02,
            "duplicate: realized {} vs configured {}",
            realized.duplicate,
            configured.duplicate
        );
        assert!(
            (realized.corrupt - configured.corrupt).abs() < 0.02,
            "corrupt: realized {} vs configured {}",
            realized.corrupt,
            configured.corrupt
        );
        // Consistency with the raw counters.
        let stats = ch.stats();
        assert_eq!(
            stats.dropped + stats.delivered - stats.duplicated,
            4000,
            "every admitted frame is dropped or delivered once"
        );
    }

    #[test]
    fn realized_rates_empty_channel_is_all_zero() {
        let ch = FaultyChannel::new(FaultRates::none(), 1);
        let r = ch.realized_rates();
        assert_eq!(r.admitted, 0);
        assert_eq!((r.drop, r.duplicate, r.corrupt), (0.0, 0.0, 0.0));
    }

    /// Conservation identities under every fault interleaving at once
    /// (duplicate + reorder + replay + drop + corrupt), with attacker
    /// injections mixed in and the session torn down mid-stream.
    ///
    /// Regression for two silent accounting leaks: `inject` used to be
    /// indistinguishable from a fault-path delivery (no `injected`
    /// counter, so `sent`-based conservation broke whenever the MITM
    /// transmitted), and frames still queued at session close were
    /// invisible — neither received nor counted anywhere.
    #[test]
    fn interleaved_faults_conserve_every_frame() {
        let rates = FaultRates {
            drop: 0.15,
            duplicate: 0.2,
            reorder: 0.25,
            corrupt: 0.1,
            replay: 0.2,
        };
        for seed in [1u64, 7, 42, 0xBAD_F00D] {
            let mut ch = FaultyChannel::new(rates, seed);
            // Interleave traffic from both sides with attacker
            // injections; receive only part of it (a session that
            // closed before the queue drained).
            for (i, f) in frames(120).into_iter().enumerate() {
                let side = if i % 3 == 0 { Side::B } else { Side::A };
                ch.send(side, f);
                if i % 7 == 0 {
                    ch.inject(Side::B, vec![0xEE, i as u8]);
                }
                if i % 2 == 0 {
                    let _ = ch.recv(Side::B);
                }
            }
            let before = ch.stats();
            assert_eq!(
                before.sent + before.injected,
                before.mitm_dropped
                    + before.dropped
                    + (before.delivered - before.duplicated - before.replayed),
                "admission conservation: {before:?}"
            );
            let in_flight = ch.pending(Side::A) + ch.pending(Side::B);
            assert_eq!(
                before.delivered,
                before.received + in_flight + before.late_drained,
                "delivery conservation pre-drain: {before:?}"
            );
            assert!(in_flight > 0, "seed {seed} left nothing in flight");

            // Tear down: every late frame is drained and counted.
            let drained = ch.drain_late();
            let after = ch.stats();
            assert_eq!(drained, in_flight);
            assert_eq!(after.late_drained, drained);
            assert_eq!(
                after.delivered,
                after.received + after.late_drained,
                "delivery conservation post-drain: {after:?}"
            );
            assert_eq!(ch.pending(Side::A) + ch.pending(Side::B), 0);
            // Draining is not receiving: the realized rates and the
            // received count are unchanged by teardown.
            assert_eq!(after.received, before.received);
            assert_eq!(ch.realized_rates().admitted, before.sent);
        }
    }

    #[test]
    fn faulty_channel_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut ch = FaultyChannel::new(
                FaultRates {
                    drop: 0.3,
                    duplicate: 0.2,
                    reorder: 0.2,
                    corrupt: 0.2,
                    replay: 0.1,
                },
                seed,
            );
            for f in frames(40) {
                ch.send(Side::A, f);
            }
            let mut got = Vec::new();
            while let Some(f) = ch.recv(Side::B) {
                got.push(f);
            }
            got
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ");
    }
}
