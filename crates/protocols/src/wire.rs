//! Wire encodings and session machinery for the §III protocols.
//!
//! Every protocol message gets a versioned binary encoding through
//! [`neuropuls_rt::codec`] and travels inside a tagged [`Envelope`]
//! carrying the protocol id, a session id, and a sequence number. The
//! envelope is *routing metadata only*: an adversary can rewrite it
//! freely, so every security property still rests on the authenticated
//! payloads (MACs keyed by PUF-derived secrets).
//!
//! On top of the encodings sits a small poll-style session vocabulary:
//! a [`Session`] is stepped with at most one incoming frame per tick
//! and answers with a [`SessionAction`]. Sessions implement
//! stop-and-wait ARQ through [`Arq`]: the last frame sent is kept for
//! retransmission, silence for [`SessionConfig::timeout_ticks`] ticks
//! triggers a retransmit, and [`SessionConfig::max_retries`]
//! retransmissions without progress fail the session with
//! [`ProtocolError::Timeout`]. Frames that fail to decode are treated
//! exactly like silence (channel noise); frames that decode but are
//! rejected by the protocol (bad MAC, stale nonce) burn a retry and
//! re-elicit a fresh copy from the peer, so a single corrupted bit is
//! recoverable while a persistent forger exhausts the budget and
//! surfaces the protocol-level rejection.

use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use neuropuls_rt::codec::{CodecError, FromBytes, Reader, ToBytes, Writer};
use neuropuls_rt::trace::{Tracer, Value};

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Which §III service a frame belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolId {
    /// HSC-IoT mutual authentication (§III-A).
    MutualAuth,
    /// pPUF-chained software attestation (§III-B).
    Attestation,
    /// EKE authenticated key exchange (§IV).
    Eke,
    /// Table I secure NN load/execute (§III-C).
    SecureNn,
}

impl ProtocolId {
    fn to_u8(self) -> u8 {
        match self {
            ProtocolId::MutualAuth => 1,
            ProtocolId::Attestation => 2,
            ProtocolId::Eke => 3,
            ProtocolId::SecureNn => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            1 => Ok(ProtocolId::MutualAuth),
            2 => Ok(ProtocolId::Attestation),
            3 => Ok(ProtocolId::Eke),
            4 => Ok(ProtocolId::SecureNn),
            _ => Err(CodecError::Invalid("unknown protocol id")),
        }
    }
}

/// The tagged carrier of every frame on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Service discriminator.
    pub protocol: ProtocolId,
    /// Session identifier chosen by the initiator.
    pub session: u64,
    /// Position of the message in the protocol script (0-based).
    pub seq: u32,
    /// Raw message encoding (no frame header of its own).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Wraps `msg` for the wire.
    pub fn pack<T: ToBytes>(protocol: ProtocolId, session: u64, seq: u32, msg: &T) -> Self {
        Envelope {
            protocol,
            session,
            seq,
            payload: encode_payload(msg),
        }
    }

    /// Decodes the payload as `T`, requiring it to be consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated, trailing, or
    /// out-of-domain payload bytes.
    pub fn open<T: FromBytes>(&self) -> Result<T, CodecError> {
        decode_payload(&self.payload)
    }
}

impl ToBytes for Envelope {
    fn write_into(&self, out: &mut Writer) {
        out.u8(self.protocol.to_u8());
        out.u64(self.session);
        out.u32(self.seq);
        out.bytes(&self.payload);
    }
}

impl FromBytes for Envelope {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let protocol = ProtocolId::from_u8(r.u8()?)?;
        let session = r.u64()?;
        let seq = r.u32()?;
        let payload = r.bytes()?.to_vec();
        Ok(Envelope {
            protocol,
            session,
            seq,
            payload,
        })
    }
}

/// Encodes a message in its raw (unframed) form — the shape that lives
/// inside [`Envelope::payload`].
pub fn encode_payload<T: ToBytes + ?Sized>(msg: &T) -> Vec<u8> {
    let mut w = Writer::new();
    msg.write_into(&mut w);
    w.into_bytes()
}

/// Decodes a raw (unframed) message, rejecting trailing bytes.
///
/// # Errors
///
/// Returns a [`CodecError`] on truncated, trailing, or out-of-domain
/// input.
pub fn decode_payload<T: FromBytes>(payload: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(payload);
    let value = T::read_from(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

fn read_array<const N: usize>(r: &mut Reader<'_>) -> Result<[u8; N], CodecError> {
    r.take(N)?
        .try_into()
        .map_err(|_| CodecError::Invalid("fixed-size field"))
}

// ---------------------------------------------------------------------------
// Message encodings
// ---------------------------------------------------------------------------

use crate::attestation::{AttestationReport, AttestationRequest};
use crate::eke::{EkeConfirm, EkeHello, EkeReply};
use crate::mutual_auth::{AuthRequest, DeviceAuth, VerifierConfirm};

impl ToBytes for AuthRequest {
    fn write_into(&self, out: &mut Writer) {
        out.raw(&self.verifier_nonce);
    }
}

impl FromBytes for AuthRequest {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AuthRequest {
            verifier_nonce: read_array(r)?,
        })
    }
}

impl ToBytes for DeviceAuth {
    fn write_into(&self, out: &mut Writer) {
        out.bytes(&self.masked_response);
        out.raw(&self.memory_hash);
        out.u64(self.clock_count);
        out.raw(&self.device_nonce);
        out.raw(&self.mac);
    }
}

impl FromBytes for DeviceAuth {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DeviceAuth {
            masked_response: r.bytes()?.to_vec(),
            memory_hash: read_array(r)?,
            clock_count: r.u64()?,
            device_nonce: read_array(r)?,
            mac: read_array(r)?,
        })
    }
}

impl ToBytes for VerifierConfirm {
    fn write_into(&self, out: &mut Writer) {
        out.raw(&self.mac);
    }
}

impl FromBytes for VerifierConfirm {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VerifierConfirm {
            mac: read_array(r)?,
        })
    }
}

impl ToBytes for AttestationRequest {
    fn write_into(&self, out: &mut Writer) {
        out.u64(self.timestamp_ns);
        self.challenge.write_into(out);
    }
}

impl FromBytes for AttestationRequest {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AttestationRequest {
            timestamp_ns: r.u64()?,
            challenge: FromBytes::read_from(r)?,
        })
    }
}

impl ToBytes for AttestationReport {
    fn write_into(&self, out: &mut Writer) {
        out.raw(&self.final_hash);
        // f64 travels as its IEEE-754 bit pattern; every pattern is a
        // valid f64, so decoding cannot reject it.
        out.u64(self.elapsed_ns.to_bits());
    }
}

impl FromBytes for AttestationReport {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AttestationReport {
            final_hash: read_array(r)?,
            elapsed_ns: f64::from_bits(r.u64()?),
        })
    }
}

impl ToBytes for EkeHello {
    fn write_into(&self, out: &mut Writer) {
        out.raw(&self.encrypted_public);
        out.raw(&self.nonce);
    }
}

impl FromBytes for EkeHello {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EkeHello {
            encrypted_public: read_array(r)?,
            nonce: read_array(r)?,
        })
    }
}

impl ToBytes for EkeReply {
    fn write_into(&self, out: &mut Writer) {
        out.raw(&self.encrypted_public);
        out.raw(&self.nonce);
        out.raw(&self.confirm);
    }
}

impl FromBytes for EkeReply {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EkeReply {
            encrypted_public: read_array(r)?,
            nonce: read_array(r)?,
            confirm: read_array(r)?,
        })
    }
}

impl ToBytes for EkeConfirm {
    fn write_into(&self, out: &mut Writer) {
        out.raw(&self.confirm);
    }
}

impl FromBytes for EkeConfirm {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EkeConfirm {
            confirm: read_array(r)?,
        })
    }
}

/// Mutual-authentication messages as they appear in an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutualAuthMsg {
    /// Msg1 — verifier's challenge nonce.
    Request(AuthRequest),
    /// Msg2 — device's masked CRP update.
    Auth(DeviceAuth),
    /// Msg3 — verifier's proof of the fresh secret.
    Confirm(VerifierConfirm),
}

impl ToBytes for MutualAuthMsg {
    fn write_into(&self, out: &mut Writer) {
        match self {
            MutualAuthMsg::Request(m) => {
                out.u8(0);
                m.write_into(out);
            }
            MutualAuthMsg::Auth(m) => {
                out.u8(1);
                m.write_into(out);
            }
            MutualAuthMsg::Confirm(m) => {
                out.u8(2);
                m.write_into(out);
            }
        }
    }
}

impl FromBytes for MutualAuthMsg {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(MutualAuthMsg::Request(FromBytes::read_from(r)?)),
            1 => Ok(MutualAuthMsg::Auth(FromBytes::read_from(r)?)),
            2 => Ok(MutualAuthMsg::Confirm(FromBytes::read_from(r)?)),
            _ => Err(CodecError::Invalid("mutual-auth message tag")),
        }
    }
}

/// Attestation messages as they appear in an envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum AttestationMsg {
    /// Verifier's timestamped walk challenge.
    Request(AttestationRequest),
    /// Device's hash-chain report.
    Report(AttestationReport),
}

impl ToBytes for AttestationMsg {
    fn write_into(&self, out: &mut Writer) {
        match self {
            AttestationMsg::Request(m) => {
                out.u8(0);
                m.write_into(out);
            }
            AttestationMsg::Report(m) => {
                out.u8(1);
                m.write_into(out);
            }
        }
    }
}

impl FromBytes for AttestationMsg {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(AttestationMsg::Request(FromBytes::read_from(r)?)),
            1 => Ok(AttestationMsg::Report(FromBytes::read_from(r)?)),
            _ => Err(CodecError::Invalid("attestation message tag")),
        }
    }
}

/// EKE messages as they appear in an envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EkeMsg {
    /// Initiator's masked ephemeral key.
    Hello(EkeHello),
    /// Responder's masked key plus key confirmation.
    Reply(EkeReply),
    /// Initiator's final key confirmation.
    Confirm(EkeConfirm),
}

impl ToBytes for EkeMsg {
    fn write_into(&self, out: &mut Writer) {
        match self {
            EkeMsg::Hello(m) => {
                out.u8(0);
                m.write_into(out);
            }
            EkeMsg::Reply(m) => {
                out.u8(1);
                m.write_into(out);
            }
            EkeMsg::Confirm(m) => {
                out.u8(2);
                m.write_into(out);
            }
        }
    }
}

impl FromBytes for EkeMsg {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(EkeMsg::Hello(FromBytes::read_from(r)?)),
            1 => Ok(EkeMsg::Reply(FromBytes::read_from(r)?)),
            2 => Ok(EkeMsg::Confirm(FromBytes::read_from(r)?)),
            _ => Err(CodecError::Invalid("eke message tag")),
        }
    }
}

/// Secure-NN messages (Table I over the wire): every body is already a
/// sealed blob, so the wire layer adds only the call discriminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureNnMsg {
    /// `load_network(ciphered_network)`.
    Load(Vec<u8>),
    /// Accelerator acknowledges a successful load.
    LoadAck,
    /// `execute_network(ciphered_input)`.
    Execute(Vec<u8>),
    /// The ciphered output tensor.
    Output(Vec<u8>),
    /// The accelerator rejected the call (blob failed authentication or
    /// the engine refused it).
    Fault(String),
    /// One chunk of a batched `execute_network` request (tag 5,
    /// versioned — see [`NN_BATCH_VERSION`]).
    ExecuteChunk(NnChunk),
    /// Accelerator acknowledges request chunk `index` (tag 6). The ack
    /// for the final chunk is replaced by the first [`OutputChunk`].
    ChunkAck {
        /// Index of the request chunk being acknowledged.
        index: u32,
    },
    /// One chunk of the batched sealed outputs (tag 7).
    OutputChunk(NnChunk),
    /// Client acknowledges output chunk `index` (tag 8).
    OutputAck {
        /// Index of the output chunk being acknowledged.
        index: u32,
    },
}

/// Version byte prefixed to every batched-inference chunk. Bumping it
/// lets future encodings coexist with deployed accelerators: an
/// unknown version is a decode error, while the unversioned scalar
/// messages (tags 0–4) keep their original byte layout.
pub const NN_BATCH_VERSION: u8 = 1;

/// Soft budget in sealed-item bytes for one batched-inference chunk.
/// Chunks carry whole items only; a single oversized item still
/// travels alone, so this bounds frames without bounding items.
pub const NN_CHUNK_BUDGET: usize = 8192;

/// One chunk of a batched secure-NN exchange: chunk `index` of
/// `total`, carrying whole sealed items (inputs on the request path,
/// outputs on the response path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NnChunk {
    /// Zero-based chunk index.
    pub index: u32,
    /// Total chunks in this direction of the exchange.
    pub total: u32,
    /// Sealed items carried by this chunk.
    pub items: Vec<Vec<u8>>,
}

impl ToBytes for NnChunk {
    fn write_into(&self, out: &mut Writer) {
        out.u8(NN_BATCH_VERSION);
        out.u32(self.index);
        out.u32(self.total);
        out.u32(self.items.len() as u32);
        for item in &self.items {
            out.bytes(item);
        }
    }
}

impl FromBytes for NnChunk {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let version = r.u8()?;
        if version != NN_BATCH_VERSION {
            return Err(CodecError::Invalid("nn batch version"));
        }
        let index = r.u32()?;
        let total = r.u32()?;
        let count = r.u32()? as usize;
        let mut items = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            items.push(r.bytes()?.to_vec());
        }
        Ok(NnChunk {
            index,
            total,
            items,
        })
    }
}

/// Packs sealed items into chunks of at most [`NN_CHUNK_BUDGET`]
/// payload bytes each (whole items only, at least one item per chunk),
/// numbering them `0..total`.
pub fn chunk_nn_items(items: &[Vec<u8>]) -> Vec<NnChunk> {
    let mut groups: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut current: Vec<Vec<u8>> = Vec::new();
    let mut current_bytes = 0usize;
    for item in items {
        if !current.is_empty() && current_bytes + item.len() > NN_CHUNK_BUDGET {
            groups.push(std::mem::take(&mut current));
            current_bytes = 0;
        }
        current_bytes += item.len();
        current.push(item.clone());
    }
    if !current.is_empty() {
        groups.push(current);
    }
    let total = groups.len() as u32;
    groups
        .into_iter()
        .enumerate()
        .map(|(index, items)| NnChunk {
            index: index as u32,
            total,
            items,
        })
        .collect()
}

impl ToBytes for SecureNnMsg {
    fn write_into(&self, out: &mut Writer) {
        match self {
            SecureNnMsg::Load(blob) => {
                out.u8(0);
                out.bytes(blob);
            }
            SecureNnMsg::LoadAck => out.u8(1),
            SecureNnMsg::Execute(blob) => {
                out.u8(2);
                out.bytes(blob);
            }
            SecureNnMsg::Output(blob) => {
                out.u8(3);
                out.bytes(blob);
            }
            SecureNnMsg::Fault(what) => {
                out.u8(4);
                out.bytes(what.as_bytes());
            }
            SecureNnMsg::ExecuteChunk(chunk) => {
                out.u8(5);
                chunk.write_into(out);
            }
            SecureNnMsg::ChunkAck { index } => {
                out.u8(6);
                out.u32(*index);
            }
            SecureNnMsg::OutputChunk(chunk) => {
                out.u8(7);
                chunk.write_into(out);
            }
            SecureNnMsg::OutputAck { index } => {
                out.u8(8);
                out.u32(*index);
            }
        }
    }
}

impl FromBytes for SecureNnMsg {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(SecureNnMsg::Load(r.bytes()?.to_vec())),
            1 => Ok(SecureNnMsg::LoadAck),
            2 => Ok(SecureNnMsg::Execute(r.bytes()?.to_vec())),
            3 => Ok(SecureNnMsg::Output(r.bytes()?.to_vec())),
            4 => Ok(SecureNnMsg::Fault(
                String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| CodecError::Invalid("fault message utf-8"))?,
            )),
            5 => Ok(SecureNnMsg::ExecuteChunk(NnChunk::read_from(r)?)),
            6 => Ok(SecureNnMsg::ChunkAck { index: r.u32()? }),
            7 => Ok(SecureNnMsg::OutputChunk(NnChunk::read_from(r)?)),
            8 => Ok(SecureNnMsg::OutputAck { index: r.u32()? }),
            _ => Err(CodecError::Invalid("secure-nn message tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// What a session wants the driver to do after one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionAction {
    /// Transmit this frame to the peer.
    Send(Vec<u8>),
    /// Nothing to transmit; keep polling.
    Wait,
    /// The session finished successfully on this side.
    Done,
}

/// Timeout and retry budget of one session side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Consecutive silent ticks before a retransmission.
    pub timeout_ticks: u32,
    /// Retransmissions of one message before the session fails.
    pub max_retries: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            timeout_ticks: 3,
            max_retries: 4,
        }
    }
}

/// When a session next needs a [`step`](Session::step) call, assuming
/// no frame arrives for it in the meantime.
///
/// This is the contract that lets an event-driven driver (the
/// wake-based gateway loop) skip the silent steps a dense tick loop
/// would have burned CPU on: a session reporting `In(n)` promises that
/// its next `n - 1` frameless steps are pure idle-clock bookkeeping
/// with no observable action, so the driver may replace them with one
/// O(1) [`skip_silence`](Session::skip_silence) call and step the
/// session only when the timer actually fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextWake {
    /// Step this session every tick. The conservative default for
    /// implementations that have not been audited for silent-step
    /// equivalence; an event-driven driver degrades to the dense
    /// schedule for such sessions.
    EveryTick,
    /// The `n`-th future frameless step performs an observable action
    /// (ARQ retransmission or timeout failure); the `n - 1` before it
    /// are guaranteed silent. `In(0)` means "runnable right now" —
    /// e.g. an initiator in its start state that transmits on the
    /// first poll.
    In(u32),
    /// Only an incoming frame can change this side's state: the side
    /// has finished its script (possibly lingering to re-answer peer
    /// retransmissions) and its timeout clock is stopped.
    OnFrame,
}

impl NextWake {
    /// Absolute deadline for a side first stepped at `tick` (admission
    /// into a driver, or a keep-alive slot arming a fresh epoch
    /// session). A dense loop steps a fresh side at the admission tick
    /// itself, so `In(n)` fires at `tick + n - 1`; `In(0)`/`In(1)` and
    /// `EveryTick` mean "runnable at `tick`". `None` = frame-driven
    /// only (the idle wake between attestation epochs — the timer
    /// clock is stopped until a frame or the slot's next epoch fire).
    pub fn admission_deadline(self, tick: u64) -> Option<u64> {
        match self {
            NextWake::EveryTick => Some(tick),
            NextWake::In(n) => Some(tick + u64::from(n.saturating_sub(1))),
            NextWake::OnFrame => None,
        }
    }

    /// Absolute deadline after a real step at `tick`: `In(n)` promises
    /// the next `n - 1` frameless steps are silent, so the next real
    /// step lands at `tick + n` (clamped forward — a session reporting
    /// `In(0)` after a step still cannot be stepped twice in one tick).
    pub fn rearm_deadline(self, tick: u64) -> Option<u64> {
        match self {
            NextWake::EveryTick => Some(tick + 1),
            NextWake::In(n) => Some(tick + u64::from(n.max(1))),
            NextWake::OnFrame => None,
        }
    }
}

/// A poll-style protocol endpoint.
///
/// The driver calls [`step`](Session::step) once per tick with at most
/// one incoming frame; the session answers with what to transmit. After
/// [`done`](Session::done) turns true the driver keeps delivering stray
/// frames (so a finished responder can re-serve a retransmitted
/// request) but no longer ticks the session's timeout.
///
/// Event-driven drivers additionally consult
/// [`next_wake`](Session::next_wake) to know when the next frameless
/// step is due and use [`skip_silence`](Session::skip_silence) to
/// fast-forward over steps that are provably unobservable; the defaults
/// (`EveryTick` / no-op) keep every existing implementation correct
/// under both driver styles.
pub trait Session {
    /// Advances the state machine by one tick.
    ///
    /// # Errors
    ///
    /// Returns the first unrecoverable protocol failure — retry budget
    /// exhausted ([`ProtocolError::Timeout`]) or a persistent
    /// protocol-level rejection.
    fn step(&mut self, incoming: Option<&[u8]>) -> Result<SessionAction, ProtocolError>;

    /// Whether this side completed its script.
    fn done(&self) -> bool;

    /// Frames this side retransmitted (ARQ effort metric).
    fn retransmits(&self) -> u32;

    /// When this side next needs a frameless step. See [`NextWake`] for
    /// the exact contract. The default claims a wake on every tick,
    /// which is always safe.
    fn next_wake(&self) -> NextWake {
        NextWake::EveryTick
    }

    /// Credits `ticks` frameless steps in O(1). The driver may only
    /// call this with `ticks` strictly below the `n` most recently
    /// reported by [`next_wake`](Session::next_wake) (all provably
    /// silent), and must not call it at all after `OnFrame`. The
    /// default is a no-op, matching the `EveryTick` default above
    /// (under which the driver never skips).
    fn skip_silence(&mut self, ticks: u32) {
        let _ = ticks;
    }
}

/// Stop-and-wait ARQ bookkeeping shared by every wire session.
#[derive(Debug)]
pub(crate) struct Arq {
    cfg: SessionConfig,
    last_frame: Option<Vec<u8>>,
    idle_ticks: u32,
    retries_used: u32,
    retransmits: u32,
}

impl Arq {
    pub(crate) fn new(cfg: SessionConfig) -> Self {
        Arq {
            cfg,
            last_frame: None,
            idle_ticks: 0,
            retries_used: 0,
            retransmits: 0,
        }
    }

    /// Records a fresh outgoing frame; the retry budget restarts.
    pub(crate) fn sent(&mut self, frame: &[u8]) {
        self.last_frame = Some(frame.to_vec());
        self.idle_ticks = 0;
        self.retries_used = 0;
    }

    /// A valid, in-order frame arrived: the link is alive.
    pub(crate) fn activity(&mut self) {
        self.idle_ticks = 0;
    }

    fn bump(&mut self) -> Result<(), ProtocolError> {
        if self.retries_used >= self.cfg.max_retries {
            return Err(ProtocolError::Timeout {
                retries: self.retries_used,
            });
        }
        self.retries_used += 1;
        if self.last_frame.is_some() {
            self.retransmits += 1;
        }
        Ok(())
    }

    /// One tick of silence (or undecodable noise). Returns the frame to
    /// retransmit when the timeout fires.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] once the retry budget is exhausted.
    pub(crate) fn idle(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        self.idle_ticks += 1;
        if self.idle_ticks < self.cfg.timeout_ticks {
            return Ok(None);
        }
        self.idle_ticks = 0;
        self.bump()?;
        Ok(self.last_frame.clone())
    }

    /// A parse-valid frame was rejected at the protocol layer: burn a
    /// retry and retransmit to re-elicit a clean copy from the peer.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Timeout`] once the retry budget is exhausted.
    pub(crate) fn reject(&mut self) -> Result<Option<Vec<u8>>, ProtocolError> {
        self.idle_ticks = 0;
        self.bump()?;
        Ok(self.last_frame.clone())
    }

    /// The peer re-sent an already-processed message (it missed our
    /// reply): hand back our last frame verbatim.
    pub(crate) fn duplicate(&mut self) -> Option<Vec<u8>> {
        self.idle_ticks = 0;
        if self.last_frame.is_some() {
            self.retransmits += 1;
        }
        self.last_frame.clone()
    }

    pub(crate) fn retransmits(&self) -> u32 {
        self.retransmits
    }

    /// Frameless [`idle`](Arq::idle) calls until the retransmit timer
    /// next fires (always ≥ 1). This is the `n` a waiting session
    /// reports as [`NextWake::In`].
    pub(crate) fn ticks_to_fire(&self) -> u32 {
        self.cfg
            .timeout_ticks
            .saturating_sub(self.idle_ticks)
            .max(1)
    }

    /// Credits `ticks` frameless steps at once: exactly equivalent to
    /// `ticks` consecutive [`idle`](Arq::idle) calls that are known not
    /// to fire (the caller keeps `ticks < ticks_to_fire()`).
    pub(crate) fn skip(&mut self, ticks: u32) {
        debug_assert!(ticks < self.ticks_to_fire());
        self.idle_ticks += ticks;
    }
}

/// Turns an optional retransmission into a [`SessionAction`].
pub(crate) fn resend_or_wait(frame: Option<Vec<u8>>) -> SessionAction {
    match frame {
        Some(f) => SessionAction::Send(f),
        None => SessionAction::Wait,
    }
}

/// How one incoming frame relates to a session's script position.
pub(crate) enum Incoming<M> {
    /// Nothing usable arrived: silence, an undecodable frame, or a frame
    /// for a different protocol/session. Ticks the timeout clock.
    Noise,
    /// A frame from earlier in the script — the peer missed our reply
    /// and retransmitted. Answer with our own last frame.
    Duplicate,
    /// The message expected at this script position, with the session id
    /// its envelope carried.
    Msg(u64, M),
}

/// Serial-number ordering on sequence numbers (RFC 1982 with
/// `SERIAL_BITS = 32`): `a` precedes `b` when the wrapping distance
/// from `a` forward to `b` is shorter than half the sequence space.
///
/// The raw `<` comparison this replaces broke at the wrap boundary: a
/// long-lived gateway session whose script position rolled past
/// `u32::MAX` would see the peer's retransmission of the *previous*
/// message (`seq = u32::MAX`, expected `0`) as "future junk" instead of
/// a duplicate, so the duplicate-answering path — which is what carries
/// lossy links through Msg3 delivery — went dead exactly once every
/// 2³² messages. Equal values are neither before nor after each other.
pub fn seq_before(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < 1 << 31
}

/// Classifies `incoming` against the script position `expected_seq`.
/// `session` filters on the session id (`None` = not yet latched, accept
/// any). Sequence positions compare in serial-number arithmetic
/// ([`seq_before`]), so the classification survives `u32` wraparound.
/// Frames from the future of the script are treated as noise: an honest
/// peer cannot produce them, so they can only be junk.
pub(crate) fn classify<M: FromBytes>(
    incoming: Option<&[u8]>,
    protocol: ProtocolId,
    session: Option<u64>,
    expected_seq: u32,
) -> Incoming<M> {
    let Some(frame) = incoming else {
        return Incoming::Noise;
    };
    let Ok(env) = Envelope::from_bytes(frame) else {
        return Incoming::Noise;
    };
    if env.protocol != protocol || session.is_some_and(|s| s != env.session) {
        return Incoming::Noise;
    }
    if seq_before(env.seq, expected_seq) {
        return Incoming::Duplicate;
    }
    if env.seq != expected_seq {
        return Incoming::Noise;
    }
    match env.open::<M>() {
        Ok(msg) => Incoming::Msg(env.session, msg),
        Err(_) => Incoming::Noise,
    }
}

/// Outcome of driving one wire session to completion (or failure).
#[derive(Debug)]
pub struct SessionReport {
    /// Ticks to completion, or the failure that ended the session.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both sides (ARQ effort).
    pub retransmits: u32,
}

impl SessionReport {
    /// Whether the session completed.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }
}

/// [`drive`] plus retransmission accounting from both endpoints. Pass
/// [`Tracer::disabled`] when no instrumentation is wanted.
pub fn drive_report<T: Transport>(
    channel: &mut T,
    a: &mut dyn Session,
    b: &mut dyn Session,
    max_ticks: u32,
    tracer: &mut Tracer,
) -> SessionReport {
    let result = drive(channel, a, b, max_ticks, tracer);
    SessionReport {
        result,
        retransmits: a.retransmits() + b.retransmits(),
    }
}

/// Default tick budget for [`drive`]-based helpers: generous enough for
/// a full retry budget on every message of the longest script.
pub const DEFAULT_MAX_TICKS: u32 = 256;

fn side_label(side: Side) -> &'static str {
    match side {
        Side::A => "A",
        Side::B => "B",
    }
}

/// Fields describing one raw frame: side, wire length, and — when the
/// frame decodes as an [`Envelope`] — its sequence number and payload
/// length (bytes on the wire per envelope).
fn frame_fields(side: Side, frame: &[u8]) -> Vec<(&'static str, Value)> {
    let mut fields = vec![
        ("side", Value::from(side_label(side))),
        ("len", Value::from(frame.len())),
    ];
    if let Ok(env) = Envelope::from_bytes(frame) {
        fields.push(("seq", Value::from(env.seq)));
        fields.push(("payload_len", Value::from(env.payload.len())));
    }
    fields
}

/// Drives two sessions against each other over `channel` until both
/// complete. Each tick delivers at most one queued frame to each side
/// and steps it. Returns the tick count on success.
///
/// Wire activity is recorded into `tracer` (pass [`Tracer::disabled`]
/// for an untraced run at zero cost): one `session.side` span per
/// endpoint (closed when that side completes, carrying its retransmit
/// count), `frame.recv`/`frame.send` instants with per-envelope byte
/// counts, `arq.retransmit` instants, and a final `session.result`
/// instant. Timestamps are driver ticks, so the trace is deterministic
/// for a deterministic channel.
///
/// # Errors
///
/// Propagates the first session failure; returns
/// [`ProtocolError::Timeout`] if `max_ticks` elapse first. The trace is
/// complete (all spans closed) on every path.
pub fn drive<T: Transport>(
    channel: &mut T,
    a: &mut dyn Session,
    b: &mut dyn Session,
    max_ticks: u32,
    tracer: &mut Tracer,
) -> Result<u32, ProtocolError> {
    fn tick_side<T: Transport>(
        channel: &mut T,
        side: Side,
        sess: &mut dyn Session,
        tick: u64,
        tracer: &mut Tracer,
    ) -> Result<(), ProtocolError> {
        let frame = channel.recv(side);
        if tracer.is_enabled() {
            if let Some(f) = frame.as_deref() {
                tracer.instant(tick, "frame.recv", frame_fields(side, f));
            }
        }
        if frame.is_none() && sess.done() {
            return Ok(());
        }
        let before = sess.retransmits();
        let action = sess.step(frame.as_deref())?;
        if tracer.is_enabled() && sess.retransmits() > before {
            tracer.instant(
                tick,
                "arq.retransmit",
                vec![
                    ("side", Value::from(side_label(side))),
                    ("count", Value::from(sess.retransmits() - before)),
                ],
            );
        }
        match action {
            SessionAction::Send(f) => {
                if tracer.is_enabled() {
                    tracer.instant(tick, "frame.send", frame_fields(side, &f));
                }
                channel.send(side, f);
            }
            SessionAction::Wait | SessionAction::Done => {}
        }
        Ok(())
    }

    let mut span_a = Some(tracer.span_start(0, "session.side", vec![("side", Value::from("A"))]));
    let mut span_b = Some(tracer.span_start(0, "session.side", vec![("side", Value::from("B"))]));

    let mut outcome = Err(ProtocolError::Timeout { retries: 0 });
    let mut last_tick = 0u64;
    for tick in 0..max_ticks {
        last_tick = u64::from(tick);
        if let Err(e) = tick_side(channel, Side::A, a, last_tick, tracer) {
            outcome = Err(e);
            break;
        }
        if a.done() {
            if let Some(span) = span_a.take() {
                tracer.span_end(
                    last_tick,
                    span,
                    vec![("retransmits", Value::from(a.retransmits()))],
                );
            }
        }
        if let Err(e) = tick_side(channel, Side::B, b, last_tick, tracer) {
            outcome = Err(e);
            break;
        }
        if b.done() {
            if let Some(span) = span_b.take() {
                tracer.span_end(
                    last_tick,
                    span,
                    vec![("retransmits", Value::from(b.retransmits()))],
                );
            }
        }
        if a.done() && b.done() {
            outcome = Ok(tick + 1);
            break;
        }
    }

    if let Some(span) = span_a.take() {
        tracer.span_end(
            last_tick,
            span,
            vec![("retransmits", Value::from(a.retransmits()))],
        );
    }
    if let Some(span) = span_b.take() {
        tracer.span_end(
            last_tick,
            span,
            vec![("retransmits", Value::from(b.retransmits()))],
        );
    }
    tracer.instant(
        last_tick,
        "session.result",
        vec![
            ("ok", Value::from(outcome.is_ok())),
            ("ticks", Value::from(*outcome.as_ref().unwrap_or(&0))),
            (
                "retransmits",
                Value::from(a.retransmits() + b.retransmits()),
            ),
        ],
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_puf::bits::Challenge;

    fn roundtrip_envelope(env: &Envelope) {
        let bytes = env.to_bytes();
        assert_eq!(&Envelope::from_bytes(&bytes).unwrap(), env);
        // Truncation at every boundary must error, never panic.
        for cut in 0..bytes.len() {
            assert!(Envelope::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn envelope_roundtrip_and_truncation() {
        roundtrip_envelope(&Envelope {
            protocol: ProtocolId::MutualAuth,
            session: 0xDEAD_BEEF,
            seq: 7,
            payload: vec![1, 2, 3, 4, 5],
        });
        roundtrip_envelope(&Envelope {
            protocol: ProtocolId::SecureNn,
            session: 0,
            seq: 0,
            payload: Vec::new(),
        });
    }

    #[test]
    fn unknown_protocol_id_rejected() {
        let env = Envelope {
            protocol: ProtocolId::Eke,
            session: 1,
            seq: 1,
            payload: vec![9],
        };
        let mut bytes = env.to_bytes();
        bytes[6] = 0xAA; // protocol id byte (after 4-byte magic + u16 version)
        assert!(matches!(
            Envelope::from_bytes(&bytes),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn payload_trailing_bytes_rejected() {
        let msg = MutualAuthMsg::Confirm(VerifierConfirm { mac: [7; 32] });
        let mut payload = encode_payload(&msg);
        payload.push(0);
        assert!(matches!(
            decode_payload::<MutualAuthMsg>(&payload),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn mutual_auth_messages_roundtrip() {
        let msgs = vec![
            MutualAuthMsg::Request(AuthRequest {
                verifier_nonce: [3; 16],
            }),
            MutualAuthMsg::Auth(DeviceAuth {
                masked_response: vec![1, 2, 3, 4, 5, 6, 7],
                memory_hash: [9; 32],
                clock_count: 1234,
                device_nonce: [4; 16],
                mac: [5; 32],
            }),
            MutualAuthMsg::Confirm(VerifierConfirm { mac: [6; 32] }),
        ];
        for msg in msgs {
            let payload = encode_payload(&msg);
            assert_eq!(decode_payload::<MutualAuthMsg>(&payload).unwrap(), msg);
            for cut in 0..payload.len() {
                assert!(decode_payload::<MutualAuthMsg>(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn attestation_messages_roundtrip() {
        let msgs = vec![
            AttestationMsg::Request(AttestationRequest {
                timestamp_ns: 55,
                challenge: Challenge::from_u64(0xF0F0, 64),
            }),
            AttestationMsg::Report(AttestationReport {
                final_hash: [0xAB; 32],
                elapsed_ns: 1234.5,
            }),
        ];
        for msg in msgs {
            let payload = encode_payload(&msg);
            assert_eq!(decode_payload::<AttestationMsg>(&payload).unwrap(), msg);
            for cut in 0..payload.len() {
                assert!(decode_payload::<AttestationMsg>(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn eke_messages_roundtrip() {
        let msgs = vec![
            EkeMsg::Hello(EkeHello {
                encrypted_public: [1; 32],
                nonce: [2; 16],
            }),
            EkeMsg::Reply(EkeReply {
                encrypted_public: [3; 32],
                nonce: [4; 16],
                confirm: [5; 32],
            }),
            EkeMsg::Confirm(EkeConfirm { confirm: [6; 32] }),
        ];
        for msg in msgs {
            let payload = encode_payload(&msg);
            assert_eq!(decode_payload::<EkeMsg>(&payload).unwrap(), msg);
            for cut in 0..payload.len() {
                assert!(decode_payload::<EkeMsg>(&payload[..cut]).is_err());
            }
        }
    }

    #[test]
    fn secure_nn_messages_roundtrip() {
        let msgs = vec![
            SecureNnMsg::Load(vec![1, 2, 3]),
            SecureNnMsg::LoadAck,
            SecureNnMsg::Execute(vec![4; 60]),
            SecureNnMsg::Output(Vec::new()),
            SecureNnMsg::Fault("engine refused".into()),
            SecureNnMsg::ExecuteChunk(NnChunk {
                index: 0,
                total: 2,
                items: vec![vec![9; 40], vec![8; 17]],
            }),
            SecureNnMsg::ChunkAck { index: 0 },
            SecureNnMsg::OutputChunk(NnChunk {
                index: 1,
                total: 2,
                items: vec![Vec::new()],
            }),
            SecureNnMsg::OutputAck { index: 1 },
        ];
        for msg in msgs {
            let payload = encode_payload(&msg);
            assert_eq!(decode_payload::<SecureNnMsg>(&payload).unwrap(), msg);
            for cut in 0..payload.len() {
                assert!(decode_payload::<SecureNnMsg>(&payload[..cut]).is_err());
            }
        }
    }

    /// The scalar tags 0–4 predate batching; their byte layout is what
    /// deployed peers speak and must never move.
    #[test]
    fn secure_nn_scalar_encoding_is_pinned() {
        // Lengths are little-endian u64 on the wire.
        assert_eq!(
            encode_payload(&SecureNnMsg::Load(vec![0xAA, 0xBB])),
            vec![0, 2, 0, 0, 0, 0, 0, 0, 0, 0xAA, 0xBB]
        );
        assert_eq!(encode_payload(&SecureNnMsg::LoadAck), vec![1]);
        assert_eq!(
            encode_payload(&SecureNnMsg::Execute(vec![0xCC])),
            vec![2, 1, 0, 0, 0, 0, 0, 0, 0, 0xCC]
        );
        assert_eq!(
            encode_payload(&SecureNnMsg::Output(vec![0xDD])),
            vec![3, 1, 0, 0, 0, 0, 0, 0, 0, 0xDD]
        );
        assert_eq!(
            encode_payload(&SecureNnMsg::Fault("x".into())),
            vec![4, 1, 0, 0, 0, 0, 0, 0, 0, b'x']
        );
    }

    #[test]
    fn nn_chunk_rejects_unknown_version() {
        let chunk = NnChunk {
            index: 0,
            total: 1,
            items: vec![vec![1, 2]],
        };
        let mut payload = encode_payload(&SecureNnMsg::ExecuteChunk(chunk));
        // Byte 0 is the message tag, byte 1 the chunk version.
        payload[1] = NN_BATCH_VERSION + 1;
        assert!(matches!(
            decode_payload::<SecureNnMsg>(&payload),
            Err(CodecError::Invalid("nn batch version"))
        ));
    }

    #[test]
    fn chunker_respects_budget_and_order() {
        // 5 items of 3000 bytes: budget 8192 fits two per chunk.
        let items: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3000]).collect();
        let chunks = chunk_nn_items(&items);
        assert_eq!(chunks.len(), 3);
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.index, i as u32);
            assert_eq!(chunk.total, 3);
            let bytes: usize = chunk.items.iter().map(Vec::len).sum();
            assert!(bytes <= NN_CHUNK_BUDGET, "chunk {i} over budget: {bytes}");
        }
        let reassembled: Vec<Vec<u8>> = chunks.into_iter().flat_map(|c| c.items).collect();
        assert_eq!(reassembled, items);
        // An oversized single item still travels (alone).
        let big = vec![vec![7u8; NN_CHUNK_BUDGET * 2]];
        let chunks = chunk_nn_items(&big);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].items, big);
        assert!(chunk_nn_items(&[]).is_empty());
    }

    #[test]
    fn bad_message_tags_rejected() {
        assert!(decode_payload::<MutualAuthMsg>(&[9]).is_err());
        assert!(decode_payload::<AttestationMsg>(&[9]).is_err());
        assert!(decode_payload::<EkeMsg>(&[9]).is_err());
        assert!(decode_payload::<SecureNnMsg>(&[9]).is_err());
    }

    #[test]
    fn seq_before_is_a_strict_serial_order() {
        assert!(seq_before(0, 1));
        assert!(!seq_before(1, 0));
        assert!(!seq_before(5, 5));
        // The wrap boundary: u32::MAX precedes 0 by distance 1.
        assert!(seq_before(u32::MAX, 0));
        assert!(!seq_before(0, u32::MAX));
        assert!(seq_before(u32::MAX - 3, 2));
        // Half the space away in either direction stays ordered.
        assert!(seq_before(0, (1 << 31) - 1));
        assert!(!seq_before(0, 1 << 31));
    }

    /// Regression: with raw `<` comparison, a session whose script
    /// position wrapped past `u32::MAX` classified the peer's
    /// retransmission of the previous message as Noise (a "future"
    /// frame), so the duplicate-answering recovery path went dead at
    /// the boundary.
    #[test]
    fn classify_survives_seq_wraparound() {
        let msg = MutualAuthMsg::Confirm(VerifierConfirm { mac: [7; 32] });
        let frame_at = |seq: u32| Envelope::pack(ProtocolId::MutualAuth, 9, seq, &msg).to_bytes();

        // Expecting seq 0 just after rollover: the previous message
        // (seq u32::MAX) is a duplicate, not noise.
        let prev = frame_at(u32::MAX);
        assert!(matches!(
            classify::<MutualAuthMsg>(Some(&prev), ProtocolId::MutualAuth, Some(9), 0),
            Incoming::Duplicate
        ));

        // Expecting the last pre-wrap position: the first post-wrap
        // message (seq 0) is from the future, hence noise.
        let next = frame_at(0);
        assert!(matches!(
            classify::<MutualAuthMsg>(Some(&next), ProtocolId::MutualAuth, Some(9), u32::MAX),
            Incoming::Noise
        ));

        // The expected position itself still decodes at the boundary.
        assert!(matches!(
            classify::<MutualAuthMsg>(Some(&prev), ProtocolId::MutualAuth, Some(9), u32::MAX),
            Incoming::Msg(9, MutualAuthMsg::Confirm(_))
        ));

        // Far away from the expected position in either direction
        // stays rejected exactly as before the fix.
        let stale = frame_at(100);
        assert!(matches!(
            classify::<MutualAuthMsg>(Some(&stale), ProtocolId::MutualAuth, Some(9), 103),
            Incoming::Duplicate
        ));
        assert!(matches!(
            classify::<MutualAuthMsg>(Some(&stale), ProtocolId::MutualAuth, Some(9), 90),
            Incoming::Noise
        ));
    }

    #[test]
    fn arq_retransmits_after_timeout_then_gives_up() {
        let mut arq = Arq::new(SessionConfig {
            timeout_ticks: 2,
            max_retries: 2,
        });
        arq.sent(&[1, 2, 3]);
        assert_eq!(arq.idle().unwrap(), None); // tick 1: below timeout
        assert_eq!(arq.idle().unwrap(), Some(vec![1, 2, 3])); // retry 1
        assert_eq!(arq.idle().unwrap(), None);
        assert_eq!(arq.idle().unwrap(), Some(vec![1, 2, 3])); // retry 2
        assert_eq!(arq.idle().unwrap(), None);
        assert!(matches!(
            arq.idle(),
            Err(ProtocolError::Timeout { retries: 2 })
        ));
        assert_eq!(arq.retransmits(), 2);
    }

    #[test]
    fn arq_activity_resets_the_clock() {
        let mut arq = Arq::new(SessionConfig {
            timeout_ticks: 2,
            max_retries: 1,
        });
        arq.sent(&[7]);
        assert_eq!(arq.idle().unwrap(), None);
        arq.activity();
        assert_eq!(arq.idle().unwrap(), None); // clock restarted
        assert_eq!(arq.idle().unwrap(), Some(vec![7]));
    }

    #[test]
    fn arq_fresh_send_restarts_retry_budget() {
        let mut arq = Arq::new(SessionConfig {
            timeout_ticks: 1,
            max_retries: 1,
        });
        arq.sent(&[1]);
        assert_eq!(arq.idle().unwrap(), Some(vec![1]));
        arq.sent(&[2]);
        assert_eq!(arq.idle().unwrap(), Some(vec![2]));
        assert!(arq.idle().is_err());
    }
}
