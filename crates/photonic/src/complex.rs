//! Minimal complex arithmetic for coherent field simulation.
//!
//! The photonic PUF operates on the *complex* optical field: couplers and
//! rings act on amplitude and phase, and the square-law photodiode finally
//! collapses the field to an intensity. A small dedicated type keeps the
//! workspace free of external math dependencies.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use neuropuls_photonic::complex::Complex64;
///
/// let e = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((e.re).abs() < 1e-12);
/// assert!((e.im - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero field.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Unit real field.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from magnitude and phase (radians).
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex64 {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` — the optical *intensity* a photodiode
    /// sees.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, factor: f64) -> Self {
        Complex64 {
            re: self.re * factor,
            im: self.im * factor,
        }
    }

    /// Returns `e^{iθ}·z` — a lossless phase rotation.
    pub fn rotate(self, theta: f64) -> Self {
        self * Complex64::from_polar(1.0, theta)
    }

    /// True if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!((z / z).re, 1.0);
        assert!((z / z).im.abs() < 1e-15);
    }

    #[test]
    fn magnitude_and_intensity() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn rotation_preserves_intensity() {
        let z = Complex64::new(1.5, -0.5);
        let rotated = z.rotate(1.234);
        assert!((rotated.norm_sqr() - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_phase() {
        let z = Complex64::from_polar(1.0, 0.7);
        assert!((z.conj().arg() + 0.7).abs() < 1e-12);
    }

    #[test]
    fn sum_of_fields() {
        let fields = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -1.0)];
        let total: Complex64 = fields.iter().copied().sum();
        assert_eq!(total, Complex64::new(3.0, 0.0));
    }
}
