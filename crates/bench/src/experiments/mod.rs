//! All experiments, indexed as in `DESIGN.md`.

pub mod accel_throughput;
pub mod admission;
pub mod aging;
pub mod analog;
pub mod attestation;
pub mod auth;
pub mod eke;
pub mod environment;
pub mod fig3;
pub mod fleet;
pub mod fleet_longrun;
pub mod gateway;
pub mod keygen;
pub mod ml_attack;
pub mod protocol_robustness;
pub mod puf_quality;
pub mod remanence;
pub mod sched_scaling;
pub mod side_channel;
pub mod system;
pub mod table1;
pub mod tamper;
pub mod trace_overhead;
pub mod trng;
