//! Error-correcting codes for weak-PUF response stabilization.
//!
//! §II of the paper: weak-PUF responses "are corrected by various means,
//! for example, using error correction codes (ECCs) to account for
//! potential deviations". The standard key-generation construction is a
//! *code-offset* fuzzy extractor (see [`crate::fuzzy`]); this module
//! provides the linear binary codes it is built on:
//!
//! * [`RepetitionCode`] — corrects up to ⌊n/2⌋ errors per data bit, cheap
//!   and effective against independent bit flips;
//! * [`Hamming74`] — the (7,4) Hamming code correcting 1 error per block;
//! * [`ConcatenatedCode`] — Hamming(7,4) inner ⊕ repetition outer, the
//!   classic lightweight PUF construction.
//!
//! All codes operate on bit vectors represented as `Vec<u8>` with one bit
//! per byte (0/1), which keeps the code easy to verify and fast enough for
//! simulation.

use crate::CryptoError;

/// A linear binary block code over bits stored one-per-byte.
pub trait BlockCode {
    /// Number of data bits per block.
    fn data_bits(&self) -> usize;
    /// Number of coded bits per block.
    fn code_bits(&self) -> usize;
    /// Maximum number of bit errors per block that decoding corrects.
    fn correctable_errors(&self) -> usize;

    /// Encodes `data` (length must be a multiple of [`Self::data_bits`]).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if the length is not a
    /// multiple of the block data size.
    fn encode(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError>;

    /// Decodes `code` (length must be a multiple of [`Self::code_bits`]),
    /// correcting up to [`Self::correctable_errors`] per block.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] on bad input length.
    fn decode(&self, code: &[u8]) -> Result<Vec<u8>, CryptoError>;

    /// Code rate (data bits / coded bits).
    fn rate(&self) -> f64 {
        self.data_bits() as f64 / self.code_bits() as f64
    }
}

/// n-fold repetition code: each data bit is repeated `n` times and decoded
/// by majority vote.
///
/// # Example
///
/// ```
/// use neuropuls_crypto::ecc::{BlockCode, RepetitionCode};
///
/// # fn main() -> Result<(), neuropuls_crypto::CryptoError> {
/// let code = RepetitionCode::new(5);
/// let mut coded = code.encode(&[1, 0])?;
/// coded[1] ^= 1; // two flips within the first block
/// coded[3] ^= 1;
/// assert_eq!(code.decode(&coded)?, vec![1, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionCode {
    n: usize,
}

impl RepetitionCode {
    /// Creates an `n`-fold repetition code.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or even (even `n` makes majority votes
    /// ambiguous).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n % 2 == 1, "repetition factor must be odd");
        RepetitionCode { n }
    }
}

impl BlockCode for RepetitionCode {
    fn data_bits(&self) -> usize {
        1
    }

    fn code_bits(&self) -> usize {
        self.n
    }

    fn correctable_errors(&self) -> usize {
        self.n / 2
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::with_capacity(data.len() * self.n);
        for &bit in data {
            out.extend(std::iter::repeat_n(bit & 1, self.n));
        }
        Ok(out)
    }

    fn decode(&self, code: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !code.len().is_multiple_of(self.n) {
            return Err(CryptoError::InvalidLength {
                expected: self.n,
                actual: code.len() % self.n,
            });
        }
        Ok(code
            .chunks_exact(self.n)
            .map(|chunk| {
                let ones: usize = chunk.iter().map(|&b| (b & 1) as usize).sum();
                u8::from(ones * 2 > self.n)
            })
            .collect())
    }
}

/// The (7,4) Hamming code: 4 data bits per 7 coded bits, corrects any
/// single-bit error per block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming74;

impl Hamming74 {
    /// Creates a (7,4) Hamming code.
    pub fn new() -> Self {
        Hamming74
    }
}

// Codeword layout: [p1 p2 d1 p3 d2 d3 d4] with parity positions 1,2,4
// (1-indexed), the classic arrangement where the syndrome directly names
// the erroneous position.
impl BlockCode for Hamming74 {
    fn data_bits(&self) -> usize {
        4
    }

    fn code_bits(&self) -> usize {
        7
    }

    fn correctable_errors(&self) -> usize {
        1
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !data.len().is_multiple_of(4) {
            return Err(CryptoError::InvalidLength {
                expected: 4,
                actual: data.len() % 4,
            });
        }
        let mut out = Vec::with_capacity(data.len() / 4 * 7);
        for block in data.chunks_exact(4) {
            let [d1, d2, d3, d4] = [block[0] & 1, block[1] & 1, block[2] & 1, block[3] & 1];
            let p1 = d1 ^ d2 ^ d4;
            let p2 = d1 ^ d3 ^ d4;
            let p3 = d2 ^ d3 ^ d4;
            out.extend_from_slice(&[p1, p2, d1, p3, d2, d3, d4]);
        }
        Ok(out)
    }

    fn decode(&self, code: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !code.len().is_multiple_of(7) {
            return Err(CryptoError::InvalidLength {
                expected: 7,
                actual: code.len() % 7,
            });
        }
        let mut out = Vec::with_capacity(code.len() / 7 * 4);
        for block in code.chunks_exact(7) {
            let mut bits = [0u8; 7];
            for (b, &c) in bits.iter_mut().zip(block) {
                *b = c & 1;
            }
            let s1 = bits[0] ^ bits[2] ^ bits[4] ^ bits[6];
            let s2 = bits[1] ^ bits[2] ^ bits[5] ^ bits[6];
            let s3 = bits[3] ^ bits[4] ^ bits[5] ^ bits[6];
            let syndrome = (s1 as usize) | ((s2 as usize) << 1) | ((s3 as usize) << 2);
            if syndrome != 0 {
                bits[syndrome - 1] ^= 1;
            }
            out.extend_from_slice(&[bits[2], bits[4], bits[5], bits[6]]);
        }
        Ok(out)
    }
}

/// Concatenation of an inner [`Hamming74`] with an outer
/// [`RepetitionCode`]: data → Hamming encode → repeat each coded bit.
///
/// For a per-bit flip probability `p`, the residual block error rate drops
/// roughly as `p^(r/2+1)` per repetition factor `r`, which is what makes
/// weak-PUF key generation reach key failure rates below 10⁻⁶ (measured in
/// experiment E10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcatenatedCode {
    inner: Hamming74,
    outer: RepetitionCode,
}

impl ConcatenatedCode {
    /// Creates the concatenated code with repetition factor `repeat`
    /// (odd).
    ///
    /// # Panics
    ///
    /// Panics if `repeat` is zero or even.
    pub fn new(repeat: usize) -> Self {
        ConcatenatedCode {
            inner: Hamming74::new(),
            outer: RepetitionCode::new(repeat),
        }
    }
}

impl BlockCode for ConcatenatedCode {
    fn data_bits(&self) -> usize {
        4
    }

    fn code_bits(&self) -> usize {
        7 * self.outer.code_bits()
    }

    fn correctable_errors(&self) -> usize {
        // Guaranteed correction: every repetition group may lose up to
        // ⌊r/2⌋ bits, and one whole group may additionally fail and be
        // fixed by the Hamming layer.
        self.outer.correctable_errors() * 7 + (self.outer.correctable_errors() + 1)
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let inner = self.inner.encode(data)?;
        self.outer.encode(&inner)
    }

    fn decode(&self, code: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let inner = self.outer.decode(code)?;
        self.inner.decode(&inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_roundtrip() {
        let code = RepetitionCode::new(3);
        let data = vec![1, 0, 1, 1, 0];
        let coded = code.encode(&data).unwrap();
        assert_eq!(coded.len(), 15);
        assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn repetition_corrects_single_flip_per_block() {
        let code = RepetitionCode::new(3);
        let data = vec![1, 0];
        let mut coded = code.encode(&data).unwrap();
        coded[0] ^= 1;
        coded[4] ^= 1;
        assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn repetition_fails_beyond_capacity() {
        let code = RepetitionCode::new(3);
        let mut coded = code.encode(&[0]).unwrap();
        coded[0] ^= 1;
        coded[1] ^= 1;
        // Majority flips: decoding "succeeds" but yields the wrong bit —
        // that is the expected behaviour of a repetition code.
        assert_eq!(code.decode(&coded).unwrap(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn repetition_rejects_even_factor() {
        let _ = RepetitionCode::new(4);
    }

    #[test]
    fn hamming_roundtrip_all_nibbles() {
        let code = Hamming74::new();
        for nibble in 0u8..16 {
            let data: Vec<u8> = (0..4).map(|i| (nibble >> i) & 1).collect();
            let coded = code.encode(&data).unwrap();
            assert_eq!(code.decode(&coded).unwrap(), data, "nibble {nibble}");
        }
    }

    #[test]
    fn hamming_corrects_any_single_error() {
        let code = Hamming74::new();
        for nibble in 0u8..16 {
            let data: Vec<u8> = (0..4).map(|i| (nibble >> i) & 1).collect();
            let coded = code.encode(&data).unwrap();
            for pos in 0..7 {
                let mut corrupted = coded.clone();
                corrupted[pos] ^= 1;
                assert_eq!(
                    code.decode(&corrupted).unwrap(),
                    data,
                    "nibble {nibble} pos {pos}"
                );
            }
        }
    }

    #[test]
    fn hamming_rejects_bad_length() {
        let code = Hamming74::new();
        assert!(code.encode(&[1, 0, 1]).is_err());
        assert!(code.decode(&[1; 8]).is_err());
    }

    #[test]
    fn concatenated_roundtrip_with_noise() {
        let code = ConcatenatedCode::new(3);
        let data = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let mut coded = code.encode(&data).unwrap();
        assert_eq!(coded.len(), data.len() / 4 * 21);
        // One flip per repetition group is always corrected.
        for group in 0..coded.len() / 3 {
            coded[group * 3] ^= 1;
        }
        assert_eq!(code.decode(&coded).unwrap(), data);
    }

    #[test]
    fn rates_are_consistent() {
        assert!((RepetitionCode::new(5).rate() - 0.2).abs() < 1e-12);
        assert!((Hamming74::new().rate() - 4.0 / 7.0).abs() < 1e-12);
        assert!((ConcatenatedCode::new(3).rate() - 4.0 / 21.0).abs() < 1e-12);
    }
}
