//! Regenerates the batched-inference throughput study (E21) and writes
//! `BENCH_exp_accel_throughput.json` via the rt bench harness.
//!
//! Run standalone, this binary also *enforces* the throughput target:
//! pushing a batch of 64 through `infer_batch` on an 8-worker pool must
//! beat 64 scalar `infer` calls by >= 3x wall clock for the reference
//! model. The target is asserted here rather than in the library so the
//! noisy parallel schedule of `exp_all` cannot flake it. `--table-only`
//! skips the host-timed section (CI uses it for the 1-vs-8-thread
//! determinism diff, which must not depend on the host clock).

use neuropuls_accel::engine::{AnalogModel, PhotonicEngine};
use neuropuls_bench::experiments::accel_throughput::{batch_inputs, reference_network, run};
use neuropuls_bench::Scale;
use neuropuls_rt::criterion::{Criterion, Throughput};
use neuropuls_rt::pool;
use std::time::Instant;

/// The acceptance batch size.
const BATCH: usize = 64;

/// Wall-clock repetitions; the minimum is reported, which is the
/// standard way to shave scheduler noise off a hot-loop measurement.
const REPS: usize = 7;

fn loaded_reference_engine(seed: u64) -> PhotonicEngine {
    let mut engine = PhotonicEngine::new(AnalogModel::reference(), seed);
    engine
        .load(reference_network())
        .expect("reference network fits the quantizer");
    engine
}

fn min_secs(mut routine: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Host-timed section: measures the batched-vs-scalar wall clock,
/// records the same routines through the rt criterion harness and
/// asserts the >= 3x acceptance target.
fn measure_and_report() {
    let inputs = batch_inputs(BATCH);

    let mut scalar_engine = loaded_reference_engine(0xE21_BEEF);
    let scalar_s = min_secs(|| {
        for input in &inputs {
            std::hint::black_box(scalar_engine.infer(input).expect("network is loaded"));
        }
    });

    let mut batch_engine = loaded_reference_engine(0xE21_BEEF);
    let batch_s = pool::with_threads(8, || {
        min_secs(|| {
            std::hint::black_box(
                batch_engine
                    .infer_batch(&inputs)
                    .expect("network is loaded"),
            );
        })
    });

    let speedup = scalar_s / batch_s;
    eprintln!(
        "batch {BATCH} on 8 workers: scalar {:.3} ms, batched {:.3} ms — {speedup:.2}x",
        scalar_s * 1e3,
        batch_s * 1e3
    );

    let mut criterion = Criterion::default().sample_size(10);
    let mut group = criterion.benchmark_group("infer64");
    group.throughput(Throughput::Elements(BATCH as u64));
    let mut bench_scalar = loaded_reference_engine(0xE21_BEEF);
    group.bench_function("scalar", |b| {
        b.iter(|| {
            for input in &inputs {
                std::hint::black_box(bench_scalar.infer(input).expect("network is loaded"));
            }
        })
    });
    let mut bench_t1 = loaded_reference_engine(0xE21_BEEF);
    group.bench_function("batch_t1", |b| {
        pool::with_threads(1, || {
            b.iter(|| {
                std::hint::black_box(bench_t1.infer_batch(&inputs).expect("network is loaded"));
            })
        })
    });
    let mut bench_t8 = loaded_reference_engine(0xE21_BEEF);
    group.bench_function("batch_t8", |b| {
        pool::with_threads(8, || {
            b.iter(|| {
                std::hint::black_box(bench_t8.infer_batch(&inputs).expect("network is loaded"));
            })
        })
    });
    group.finish();
    neuropuls_rt::criterion::write_report();

    assert!(
        speedup >= 3.0,
        "batched inference must beat {BATCH} scalar calls by >= 3x, measured {speedup:.2}x"
    );
    eprintln!("throughput target met: {speedup:.2}x >= 3x");
}

fn main() {
    let table_only = std::env::args().any(|a| a == "--table-only");
    let (out, summary) = run(Scale::from_args());
    print!("{out}");

    for &(model, batch, _, invariant) in &summary {
        assert!(
            invariant,
            "{model} batch {batch} diverged between 1 and 8 pool workers"
        );
    }
    let modeled = summary
        .iter()
        .find(|(model, batch, _, _)| *model == "reference" && *batch == BATCH)
        .map(|&(_, _, speedup, _)| speedup)
        .expect("sweep carries the reference batch-64 cell");
    assert!(
        modeled >= 3.0,
        "modeled pipelined speedup at batch {BATCH} fell to {modeled:.2}x"
    );

    if table_only {
        return;
    }
    measure_and_report();
}
