//! Passive photonic building blocks: waveguides, phase shifters and
//! directional couplers.
//!
//! These act on the complex field sample-by-sample. Each element is
//! constructed *with* its process perturbation already baked in (drawn
//! from a [`crate::process::DieSampler`]), so a circuit built twice from
//! the same die is identical while two dies differ randomly — exactly the
//! PUF premise.

use crate::complex::Complex64;
use crate::environment::Environment;
use crate::process::DieSampler;

/// A waveguide segment: amplitude loss plus (process-random) phase, with a
/// thermo-optic temperature dependence proportional to its length.
#[derive(Debug, Clone, Copy)]
pub struct Waveguide {
    /// Amplitude transmission (0..=1).
    pub amplitude: f64,
    /// Static phase at the 25 °C reference, including the process offset.
    pub phase: f64,
    /// Effective length in µm (sets temperature sensitivity).
    pub length_um: f64,
}

impl Waveguide {
    /// Builds a segment of `length_um` with nominal loss `loss_db_per_cm`,
    /// drawing its phase perturbation from the die sampler.
    pub fn sampled(length_um: f64, loss_db_per_cm: f64, die: &mut DieSampler) -> Self {
        let loss_db = loss_db_per_cm * length_um / 10_000.0;
        let nominal_amplitude = 10f64.powf(-loss_db / 20.0);
        Waveguide {
            amplitude: die.loss_factor(nominal_amplitude),
            phase: die.phase_offset(),
            length_um,
        }
    }

    /// Propagates one field sample at the given environment.
    pub fn transfer(&self, input: Complex64, env: &Environment) -> Complex64 {
        let phase = self.phase + env.thermo_optic_phase(self.length_um);
        input.scale(self.amplitude).rotate(phase)
    }
}

/// A (possibly thermally tuned) phase shifter.
#[derive(Debug, Clone, Copy)]
pub struct PhaseShifter {
    /// Static process-random phase.
    pub phase: f64,
    /// Equivalent optical length for temperature sensitivity, µm.
    pub length_um: f64,
}

impl PhaseShifter {
    /// Draws a process-random phase shifter.
    pub fn sampled(length_um: f64, die: &mut DieSampler) -> Self {
        PhaseShifter {
            phase: die.phase_offset(),
            length_um,
        }
    }

    /// Applies the phase shift.
    pub fn transfer(&self, input: Complex64, env: &Environment) -> Complex64 {
        input.rotate(self.phase + env.thermo_optic_phase(self.length_um))
    }
}

/// A 2×2 directional coupler with field coupling angle θ:
///
/// ```text
/// [out0]   [ cosθ   i·sinθ ] [in0]
/// [out1] = [ i·sinθ  cosθ  ] [in1]
/// ```
///
/// Power coupling ratio is sin²θ; θ = π/4 is a 50:50 splitter. The matrix
/// is unitary, so the coupler conserves energy (checked by tests and by a
/// property test on the whole mesh).
#[derive(Debug, Clone, Copy)]
pub struct Coupler {
    /// Field coupling angle in radians, including process perturbation.
    pub theta: f64,
}

impl Coupler {
    /// A nominal 50:50 coupler perturbed by the die's process variation.
    pub fn sampled_50_50(die: &mut DieSampler) -> Self {
        Coupler {
            theta: std::f64::consts::FRAC_PI_4 + die.coupling_offset(),
        }
    }

    /// A coupler with explicit power coupling ratio `kappa2` (0..=1),
    /// perturbed by process variation.
    ///
    /// # Panics
    ///
    /// Panics if `kappa2` is outside `[0, 1]`.
    pub fn sampled_with_ratio(kappa2: f64, die: &mut DieSampler) -> Self {
        assert!(
            (0.0..=1.0).contains(&kappa2),
            "power ratio must be in [0,1]"
        );
        Coupler {
            theta: kappa2.sqrt().asin() + die.coupling_offset(),
        }
    }

    /// Power coupling ratio sin²θ.
    pub fn power_ratio(&self) -> f64 {
        self.theta.sin().powi(2)
    }

    /// Applies the 2×2 unitary to a pair of field samples.
    pub fn transfer(&self, in0: Complex64, in1: Complex64) -> (Complex64, Complex64) {
        let c = self.theta.cos();
        let s = self.theta.sin();
        let is = Complex64::new(0.0, s);
        (in0.scale(c) + in1 * is, in0 * is + in1.scale(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{DieId, ProcessVariation};

    fn die() -> DieSampler {
        DieSampler::new(DieId(3), ProcessVariation::typical_soi())
    }

    #[test]
    fn waveguide_loss_is_passive() {
        let mut sampler = die();
        for _ in 0..100 {
            let wg = Waveguide::sampled(200.0, 2.0, &mut sampler);
            assert!(wg.amplitude <= 1.0 && wg.amplitude > 0.9);
            let out = wg.transfer(Complex64::ONE, &Environment::nominal());
            assert!(out.norm_sqr() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn waveguide_temperature_changes_phase_not_power() {
        let mut sampler = die();
        let wg = Waveguide::sampled(500.0, 2.0, &mut sampler);
        let cold = wg.transfer(Complex64::ONE, &Environment::at_temperature(0.0));
        let hot = wg.transfer(Complex64::ONE, &Environment::at_temperature(80.0));
        assert!((cold.norm_sqr() - hot.norm_sqr()).abs() < 1e-12);
        assert!((cold.arg() - hot.arg()).abs() > 0.1);
    }

    #[test]
    fn coupler_is_unitary() {
        let mut sampler = die();
        for _ in 0..50 {
            let coupler = Coupler::sampled_50_50(&mut sampler);
            let in0 = Complex64::from_polar(0.8, 1.1);
            let in1 = Complex64::from_polar(0.6, -2.3);
            let (o0, o1) = coupler.transfer(in0, in1);
            let pin = in0.norm_sqr() + in1.norm_sqr();
            let pout = o0.norm_sqr() + o1.norm_sqr();
            assert!((pin - pout).abs() < 1e-12, "energy not conserved");
        }
    }

    #[test]
    fn fifty_fifty_splits_single_input_evenly() {
        let coupler = Coupler {
            theta: std::f64::consts::FRAC_PI_4,
        };
        let (o0, o1) = coupler.transfer(Complex64::ONE, Complex64::ZERO);
        assert!((o0.norm_sqr() - 0.5).abs() < 1e-12);
        assert!((o1.norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coupler_ratio_constructor() {
        let mut sampler = DieSampler::new(DieId(4), ProcessVariation::tight(0.0));
        let coupler = Coupler::sampled_with_ratio(0.2, &mut sampler);
        assert!((coupler.power_ratio() - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power ratio")]
    fn coupler_rejects_bad_ratio() {
        let mut sampler = die();
        let _ = Coupler::sampled_with_ratio(1.5, &mut sampler);
    }

    #[test]
    fn phase_shifter_preserves_power() {
        let mut sampler = die();
        let ps = PhaseShifter::sampled(100.0, &mut sampler);
        let input = Complex64::from_polar(0.9, 0.4);
        let out = ps.transfer(input, &Environment::nominal());
        assert!((out.norm_sqr() - input.norm_sqr()).abs() < 1e-12);
    }
}
