//! gem5-style statistics registry — folded into `neuropuls_rt::trace`.
//!
//! §V: "The gem5-provided log facility allows data collection to assess
//! entropy, uniqueness, and response uniformity … throughput, latency,
//! and power consumption measurements are essential". Components
//! register named scalar counters and distributions; a dump renders the
//! familiar `name value # description` format.
//!
//! The implementation now lives in [`neuropuls_rt::trace::Registry`],
//! which keeps this module's whole scalar/distribution API and dump
//! format and adds integer counters, fixed-boundary histograms, JSONL
//! export and thread-safe `&self` recording. This alias remains the
//! system crate's spelling of it.

pub use neuropuls_rt::trace::Registry as StatRegistry;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = StatRegistry::new();
        stats.add("cpu.instructions", 10.0, "retired instructions");
        stats.add("cpu.instructions", 5.0, "retired instructions");
        assert_eq!(stats.scalar("cpu.instructions"), 15.0);
    }

    #[test]
    fn set_overrides() {
        let stats = StatRegistry::new();
        stats.add("x", 3.0, "");
        stats.set("x", 1.0, "");
        assert_eq!(stats.scalar("x"), 1.0);
    }

    #[test]
    fn distribution_moments() {
        let stats = StatRegistry::new();
        for v in [1.0, 2.0, 3.0] {
            stats.sample("lat", v, "latency");
        }
        assert_eq!(stats.count("lat"), 3);
        assert!((stats.mean("lat") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_stats_have_neutral_values() {
        let stats = StatRegistry::new();
        assert_eq!(stats.scalar("nothing"), 0.0);
        assert!(stats.mean("nothing").is_nan());
        assert_eq!(stats.count("nothing"), 0);
    }

    #[test]
    fn dump_contains_entries() {
        let stats = StatRegistry::new();
        stats.add("sim.ticks", 100.0, "simulated ticks");
        stats.sample("puf.latency", 6.0, "per-eval latency");
        let dump = stats.dump();
        assert!(dump.contains("sim.ticks"));
        assert!(dump.contains("puf.latency::mean"));
        assert!(dump.contains("Begin Simulation Statistics"));
    }

    #[test]
    fn reset_clears() {
        let stats = StatRegistry::new();
        stats.add("a", 1.0, "");
        stats.reset();
        assert_eq!(stats.scalar("a"), 0.0);
    }

    #[test]
    fn registry_gains_counters_and_histograms() {
        // The fold's new surface is reachable through the old name.
        let stats = StatRegistry::new();
        stats.counter("bus.reads", 2);
        stats.observe("queue.depth", 3.0);
        assert_eq!(stats.counter_value("bus.reads"), 2);
        assert_eq!(stats.histogram("queue.depth").unwrap().count(), 1);
    }
}
