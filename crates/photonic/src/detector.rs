//! Receive chain: photodiode → transimpedance amplifier → ADC (Fig. 2).
//!
//! The photodiode is the *nonlinearity* of the PUF: it detects the
//! intensity |E|² of the coherent field, so amplitude and phase
//! information mix irreversibly ("sensitive not only to the amplitude but
//! also to the phase of the light field due to the coherence of the
//! approach", §II-A). The ASIC then amplifies the photocurrent (TIA) and
//! quantizes it (ADC), with realistic shot/thermal noise.

use crate::complex::Complex64;
use crate::environment::Environment;
use crate::laser::gaussian;
use neuropuls_rt::Rng;

/// A p-i-n photodiode (square-law detector).
#[derive(Debug, Clone, Copy)]
pub struct Photodiode {
    /// Responsivity in A/W.
    pub responsivity: f64,
    /// Dark current in µA.
    pub dark_current_ua: f64,
    /// Shot-noise scale relative to the Schottky value √(2qIB) at the
    /// detection bandwidth (1 = physical, 0 = shot noise off).
    pub shot_noise: f64,
    /// Absolute thermal (Johnson) noise floor in µA.
    pub thermal_noise_ua: f64,
}

/// Schottky shot-noise coefficient at the 25 GHz detection bandwidth:
/// σ = √(2·q·I·B); with the photocurrent in µA, σ = √(2q·B)·√I ≈
/// 0.0895·√I µA.
const SHOT_SIGMA_UA_PER_SQRT_UA: f64 = 0.0895;

impl Photodiode {
    /// A typical 25G germanium photodiode. The thermal floor is the
    /// Johnson noise of the 5 kΩ transimpedance over 25 GHz,
    /// √(4kT·B/R) ≈ 0.29 µA.
    pub fn new() -> Self {
        Photodiode {
            responsivity: 0.9,
            dark_current_ua: 0.01,
            shot_noise: 1.0,
            thermal_noise_ua: 0.29,
        }
    }

    /// Detects a field sample, returning the photocurrent in µA for a
    /// field normalized to 1 mW = unit intensity.
    pub fn detect<R: Rng>(&self, field: Complex64, rng: &mut R) -> f64 {
        // |E|² in mW × responsivity (A/W) → mA; convert to µA.
        let signal_ua = field.norm_sqr() * self.responsivity * 1000.0;
        let shot =
            SHOT_SIGMA_UA_PER_SQRT_UA * signal_ua.max(0.0).sqrt() * self.shot_noise * gaussian(rng);
        let thermal = self.thermal_noise_ua * gaussian(rng);
        (signal_ua + self.dark_current_ua + shot + thermal).max(0.0)
    }

    /// Noise-free detection (for analytic comparisons and enrollment
    /// golden references).
    pub fn detect_ideal(&self, field: Complex64) -> f64 {
        field.norm_sqr() * self.responsivity * 1000.0 + self.dark_current_ua
    }
}

impl Default for Photodiode {
    fn default() -> Self {
        Self::new()
    }
}

/// Transimpedance amplifier converting photocurrent to voltage.
#[derive(Debug, Clone, Copy)]
pub struct Tia {
    /// Gain in kΩ (µA → mV).
    pub gain_kohm: f64,
    /// Input-referred noise in µA RMS.
    pub input_noise_ua: f64,
    /// Single-pole bandwidth as a fraction of the sample rate (1.0 =
    /// tracks every sample, <1.0 = inter-symbol smoothing).
    pub bandwidth_fraction: f64,
    state_mv: f64,
}

impl Tia {
    /// A 25G TIA with 5 kΩ transimpedance.
    pub fn new() -> Self {
        Tia {
            gain_kohm: 5.0,
            input_noise_ua: 0.3,
            bandwidth_fraction: 0.8,
            state_mv: 0.0,
        }
    }

    /// Resets the filter state between interrogations.
    pub fn reset(&mut self) {
        self.state_mv = 0.0;
    }

    /// Amplifies one photocurrent sample (µA) to millivolts, applying
    /// supply-dependent gain and the one-pole response.
    pub fn amplify<R: Rng>(&mut self, current_ua: f64, env: &Environment, rng: &mut R) -> f64 {
        let gain = self.gain_kohm * (1.0 + 0.1 * env.supply_deviation);
        let noisy = current_ua + self.input_noise_ua * gaussian(rng);
        let target = noisy * gain;
        let alpha = self.bandwidth_fraction.clamp(0.0, 1.0);
        self.state_mv += alpha * (target - self.state_mv);
        self.state_mv
    }
}

impl Default for Tia {
    fn default() -> Self {
        Self::new()
    }
}

/// An n-bit analog-to-digital converter.
#[derive(Debug, Clone, Copy)]
pub struct Adc {
    /// Resolution in bits.
    pub bits: u8,
    /// Full-scale input in mV.
    pub full_scale_mv: f64,
}

impl Adc {
    /// An 8-bit ADC with a sensible full scale for the nominal chain
    /// (1 mW × 0.9 A/W × 5 kΩ = 4.5 V ≫ typical PUF outputs which sit
    /// well below the launched power after splitting losses).
    pub fn new(bits: u8) -> Self {
        Adc {
            bits,
            full_scale_mv: 1000.0,
        }
    }

    /// Number of output codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantizes a voltage sample to a code (clipping at the rails).
    pub fn quantize(&self, voltage_mv: f64) -> u32 {
        let max_code = self.codes() - 1;
        let normalized = voltage_mv / self.full_scale_mv;
        if normalized <= 0.0 {
            0
        } else if normalized >= 1.0 {
            max_code
        } else {
            (normalized * self.codes() as f64) as u32
        }
    }

    /// Mid-rise reconstruction of a code back to millivolts (used when
    /// thresholding in the response extractor).
    pub fn to_voltage(&self, code: u32) -> f64 {
        (code as f64 + 0.5) / self.codes() as f64 * self.full_scale_mv
    }
}

/// The complete receive chain for one output port.
#[derive(Debug, Clone)]
pub struct ReceiveChain {
    /// The photodiode.
    pub pd: Photodiode,
    /// The transimpedance amplifier.
    pub tia: Tia,
    /// The converter.
    pub adc: Adc,
}

impl ReceiveChain {
    /// Builds the nominal 25G chain with an 8-bit ADC.
    pub fn new() -> Self {
        ReceiveChain {
            pd: Photodiode::new(),
            tia: Tia::new(),
            adc: Adc::new(8),
        }
    }

    /// Resets inter-symbol state.
    pub fn reset(&mut self) {
        self.tia.reset();
    }

    /// Converts one field sample into an ADC code.
    pub fn sample<R: Rng>(&mut self, field: Complex64, env: &Environment, rng: &mut R) -> u32 {
        let current = self.pd.detect(field, rng);
        let voltage = self.tia.amplify(current, env, rng);
        self.adc.quantize(voltage)
    }
}

impl Default for ReceiveChain {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::rngs::StdRng;
    use neuropuls_rt::SeedableRng;

    #[test]
    fn photodiode_is_square_law() {
        let pd = Photodiode::new();
        let weak = pd.detect_ideal(Complex64::new(0.1, 0.0));
        let strong = pd.detect_ideal(Complex64::new(0.2, 0.0));
        // Doubling the field quadruples the current (minus dark current).
        let ratio = (strong - pd.dark_current_ua) / (weak - pd.dark_current_ua);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn photodiode_ignores_absolute_phase() {
        let pd = Photodiode::new();
        let a = pd.detect_ideal(Complex64::from_polar(0.5, 0.0));
        let b = pd.detect_ideal(Complex64::from_polar(0.5, 2.1));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn photocurrent_is_nonnegative() {
        let pd = Photodiode::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(pd.detect(Complex64::ZERO, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn adc_quantization_covers_range() {
        let adc = Adc::new(8);
        assert_eq!(adc.quantize(-5.0), 0);
        assert_eq!(adc.quantize(0.0), 0);
        assert_eq!(adc.quantize(2000.0), 255);
        let mid = adc.quantize(500.0);
        assert!(mid > 120 && mid < 136, "mid code {mid}");
    }

    #[test]
    fn adc_monotone() {
        let adc = Adc::new(6);
        let mut last = 0;
        for step in 0..100 {
            let code = adc.quantize(step as f64 * 12.0);
            assert!(code >= last);
            last = code;
        }
    }

    #[test]
    fn adc_roundtrip_error_bounded() {
        let adc = Adc::new(8);
        let lsb = adc.full_scale_mv / adc.codes() as f64;
        for v in [3.0, 127.0, 480.0, 999.0] {
            let back = adc.to_voltage(adc.quantize(v));
            assert!((back - v).abs() <= lsb, "v={v} back={back}");
        }
    }

    #[test]
    fn tia_lowpass_smooths_transitions() {
        let mut tia = Tia {
            input_noise_ua: 0.0,
            bandwidth_fraction: 0.5,
            ..Tia::new()
        };
        let env = Environment::nominal();
        let mut rng = StdRng::seed_from_u64(4);
        let first = tia.amplify(100.0, &env, &mut rng);
        let second = tia.amplify(100.0, &env, &mut rng);
        assert!(first < second, "one-pole response must approach target");
        assert!(second < 100.0 * 5.0 + 1.0);
    }

    #[test]
    fn chain_produces_higher_codes_for_brighter_fields() {
        let mut chain = ReceiveChain::new();
        let env = Environment::nominal();
        let mut rng = StdRng::seed_from_u64(5);
        chain.reset();
        let mut bright_sum = 0u64;
        let mut dark_sum = 0u64;
        for _ in 0..50 {
            bright_sum += u64::from(chain.sample(Complex64::new(0.3, 0.0), &env, &mut rng));
        }
        chain.reset();
        for _ in 0..50 {
            dark_sum += u64::from(chain.sample(Complex64::new(0.05, 0.0), &env, &mut rng));
        }
        assert!(
            bright_sum > dark_sum * 2,
            "bright {bright_sum} dark {dark_sum}"
        );
    }
}
