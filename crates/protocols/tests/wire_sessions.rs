//! Wire-level session integration tests: the acceptance criteria of the
//! protocol/transport refactor.
//!
//! * every protocol completes through a zero-fault [`FaultyChannel`]
//!   with a transcript byte-identical to the perfect [`Channel`];
//! * mutual authentication survives a lost Msg3 (the verifier's stored
//!   previous CRP recovers the desync);
//! * sessions still complete under heavy loss thanks to the ARQ layer;
//! * a zero-fault [`FaultyChannel`] is byte-identical to [`Channel`]
//!   for arbitrary frame streams (property-based).

use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{
    run_wire_attestation, AttestationVerifier, AttestingDevice, TimingModel,
};
use neuropuls_protocols::eke::{run_wire_exchange, EkeParty};
use neuropuls_protocols::mutual_auth::{run_wire_session, Device, Verifier};
use neuropuls_protocols::secure_nn::{run_wire_inference, NetworkOwner, SecureAccelerator};
use neuropuls_protocols::transport::{
    Channel, FaultRates, FaultyChannel, MitmVerdict, Side, Transport,
};
use neuropuls_protocols::wire::{Envelope, MutualAuthMsg, ProtocolId, SessionConfig};
use neuropuls_protocols::ProtocolError;
use neuropuls_puf::bits::Response;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::prelude::*;
use neuropuls_rt::trace::Tracer;

fn auth_pair(die: u64) -> (Device<PhotonicPuf>, Verifier) {
    let puf = PhotonicPuf::reference(DieId(die), die * 7 + 1);
    let (device, provisioned) =
        Device::provision(puf, vec![0xA5; 1024], b"provision-seed").unwrap();
    let verifier = Verifier::new(provisioned, b"verifier-rng");
    (device, verifier)
}

fn attest_pair(die: u64) -> (AttestingDevice, AttestationVerifier) {
    let memory: Vec<u8> = (0..2048).map(|i| (i * 31 % 251) as u8).collect();
    let timing = TimingModel::photonic();
    (
        AttestingDevice::new(
            PhotonicPuf::reference(DieId(die), 1),
            memory.clone(),
            timing,
        ),
        AttestationVerifier::new(PhotonicPuf::reference(DieId(die), 2), memory, timing),
    )
}

fn nn_blobs() -> (NetworkOwner, SecureAccelerator, Vec<u8>, Vec<u8>) {
    let key = [0x5A; 32];
    let mut owner = NetworkOwner::new(key, b"owner-rng");
    let accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
    let config = NetworkConfig::mlp(&[4, 4], |_, o, i| if o == i { 1.0 } else { 0.0 });
    let network_blob = owner.cipher_network(&config);
    let input_blob = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
    (owner, accel, network_blob, input_blob)
}

// ---------------------------------------------------------------------------
// Zero-fault transcript equivalence for all four protocols
// ---------------------------------------------------------------------------

#[test]
fn mutual_auth_zero_fault_transcript_matches_perfect_channel() {
    let mut perfect = Channel::new();
    let (mut d1, mut v1) = auth_pair(1);
    assert!(run_wire_session(
        &mut perfect,
        &mut d1,
        &mut v1,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled()
    )
    .succeeded());

    let mut faulty = FaultyChannel::new(FaultRates::none(), 99);
    let (mut d2, mut v2) = auth_pair(1);
    assert!(run_wire_session(
        &mut faulty,
        &mut d2,
        &mut v2,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled()
    )
    .succeeded());

    assert_eq!(perfect.transcript(), faulty.transcript());
    assert!(!perfect.transcript().is_empty());
}

#[test]
fn attestation_zero_fault_transcript_matches_perfect_channel() {
    let mut perfect = Channel::new();
    let (mut d1, mut v1) = attest_pair(2);
    assert!(run_wire_attestation(
        &mut perfect,
        &mut d1,
        &mut v1,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled()
    )
    .succeeded());

    let mut faulty = FaultyChannel::new(FaultRates::none(), 99);
    let (mut d2, mut v2) = attest_pair(2);
    assert!(run_wire_attestation(
        &mut faulty,
        &mut d2,
        &mut v2,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled()
    )
    .succeeded());

    assert_eq!(perfect.transcript(), faulty.transcript());
}

#[test]
fn eke_zero_fault_transcript_matches_perfect_channel() {
    let crp = Response::from_u64(0x1234, 63);
    let mut perfect = Channel::new();
    let mut i1 = EkeParty::new(&crp, b"rng-a");
    let mut r1 = EkeParty::new(&crp, b"rng-b");
    assert!(run_wire_exchange(
        &mut perfect,
        &mut i1,
        &mut r1,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled()
    )
    .succeeded());
    assert_eq!(i1.session(), r1.session());

    let mut faulty = FaultyChannel::new(FaultRates::none(), 99);
    let mut i2 = EkeParty::new(&crp, b"rng-a");
    let mut r2 = EkeParty::new(&crp, b"rng-b");
    assert!(run_wire_exchange(
        &mut faulty,
        &mut i2,
        &mut r2,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled()
    )
    .succeeded());

    assert_eq!(perfect.transcript(), faulty.transcript());
}

#[test]
fn secure_nn_zero_fault_transcript_matches_perfect_channel() {
    let (owner, mut a1, net, inp) = nn_blobs();
    let mut perfect = Channel::new();
    let (report, out1) = run_wire_inference(
        &mut perfect,
        &mut a1,
        net.clone(),
        inp.clone(),
        7,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded());

    let (_, mut a2, _, _) = nn_blobs();
    let mut faulty = FaultyChannel::new(FaultRates::none(), 99);
    let (report2, out2) = run_wire_inference(
        &mut faulty,
        &mut a2,
        net,
        inp,
        7,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    );
    assert!(report2.succeeded());

    assert_eq!(perfect.transcript(), faulty.transcript());
    assert_eq!(out1, out2);
    let output = owner.decipher_output(&out1.unwrap()).unwrap();
    assert_eq!(output.len(), 4);
    assert!((output[0] - 1.0).abs() < 0.05);
}

// ---------------------------------------------------------------------------
// Loss recovery
// ---------------------------------------------------------------------------

/// The headline HSC-IoT property: when every Msg3 of a session is lost,
/// the verifier has rotated but the device has not — and the *next*
/// session still authenticates through the stored previous response.
#[test]
fn mutual_auth_recovers_from_dropped_msg3_via_previous_crp() {
    let (mut device, mut verifier) = auth_pair(3);

    // An adversarial channel that swallows every VerifierConfirm.
    let mut channel = FaultyChannel::new(FaultRates::none(), 5);
    channel.set_mitm(Box::new(|_from: Side, frame: &[u8]| {
        if let Ok(env) = Envelope::from_bytes(frame) {
            if env.protocol == ProtocolId::MutualAuth
                && matches!(env.open(), Ok(MutualAuthMsg::Confirm(_)))
            {
                return MitmVerdict::Drop;
            }
        }
        MitmVerdict::Forward
    }));

    // Session 1: the device authenticates (the verifier rotates its
    // CRP) but never sees the confirmation — it exhausts its retry
    // budget and aborts, staying one CRP behind.
    let report = run_wire_session(
        &mut channel,
        &mut device,
        &mut verifier,
        1,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    );
    assert!(!report.succeeded(), "session should fail without Msg3");
    assert!(
        matches!(report.result, Err(ProtocolError::Timeout { .. })),
        "expected a timeout, got {:?}",
        report.result
    );
    assert_eq!(verifier.desync_recoveries(), 0);

    // Session 2, clean channel: the verifier's stored previous response
    // must still authenticate the lagging device and re-synchronize.
    channel.clear_mitm();
    let report = run_wire_session(
        &mut channel,
        &mut device,
        &mut verifier,
        2,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "recovery failed: {:?}", report.result);
    assert_eq!(verifier.desync_recoveries(), 1);

    // And a third, fully ordinary session works (no lingering desync).
    let report = run_wire_session(
        &mut channel,
        &mut device,
        &mut verifier,
        3,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded());
    assert_eq!(verifier.desync_recoveries(), 1);
}

/// `Verifier::desync_recoveries` must count exactly one recovery per
/// suppressed Msg3 — no more (a recovered session must not keep
/// counting) and no less (every suppression costs exactly one fallback
/// on the next clean session). Three suppress/recover rounds pin both
/// directions.
#[test]
fn desync_recovery_counts_exactly_one_per_suppressed_msg3() {
    let (mut device, mut verifier) = auth_pair(4);
    let suppress_confirm = || {
        Box::new(|_from: Side, frame: &[u8]| {
            if let Ok(env) = Envelope::from_bytes(frame) {
                if env.protocol == ProtocolId::MutualAuth
                    && matches!(env.open(), Ok(MutualAuthMsg::Confirm(_)))
                {
                    return MitmVerdict::Drop;
                }
            }
            MitmVerdict::Forward
        })
    };

    for round in 0..3u64 {
        // Suppressed session: the device times out one CRP behind. The
        // suppression itself must not touch the counter.
        let mut channel = FaultyChannel::new(FaultRates::none(), 40 + round);
        channel.set_mitm(suppress_confirm());
        let report = run_wire_session(
            &mut channel,
            &mut device,
            &mut verifier,
            round * 2 + 1,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        assert!(!report.succeeded(), "round {round}: Msg3 was suppressed");
        assert_eq!(verifier.desync_recoveries(), round, "round {round}");

        // Clean session: exactly one previous-CRP fallback.
        let mut clean = FaultyChannel::new(FaultRates::none(), 140 + round);
        let report = run_wire_session(
            &mut clean,
            &mut device,
            &mut verifier,
            round * 2 + 2,
            SessionConfig::default(),
            &mut Tracer::disabled(),
        );
        assert!(report.succeeded(), "round {round}: {:?}", report.result);
        assert_eq!(verifier.desync_recoveries(), round + 1, "round {round}");
    }
}

// ---------------------------------------------------------------------------
// Heavy loss still completes
// ---------------------------------------------------------------------------

#[test]
fn all_protocols_complete_under_moderate_loss() {
    let cfg = SessionConfig::default();

    let mut channel = FaultyChannel::new(FaultRates::loss(0.2), 11);
    let (mut d, mut v) = auth_pair(5);
    let report = run_wire_session(
        &mut channel,
        &mut d,
        &mut v,
        1,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "mutual auth: {:?}", report.result);

    let mut channel = FaultyChannel::new(FaultRates::loss(0.2), 12);
    let (mut d, mut v) = attest_pair(5);
    let report = run_wire_attestation(
        &mut channel,
        &mut d,
        &mut v,
        1,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "attestation: {:?}", report.result);

    let crp = Response::from_u64(0x77, 63);
    let mut channel = FaultyChannel::new(FaultRates::loss(0.2), 13);
    let mut i = EkeParty::new(&crp, b"rng-a");
    let mut r = EkeParty::new(&crp, b"rng-b");
    let report = run_wire_exchange(
        &mut channel,
        &mut i,
        &mut r,
        1,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "eke: {:?}", report.result);
    assert_eq!(i.session(), r.session());

    let (_, mut accel, net, inp) = nn_blobs();
    let mut channel = FaultyChannel::new(FaultRates::loss(0.2), 14);
    let (report, out) = run_wire_inference(
        &mut channel,
        &mut accel,
        net,
        inp,
        1,
        cfg,
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "secure nn: {:?}", report.result);
    assert!(out.is_some());
}

#[test]
fn bit_corruption_is_recovered_by_retransmission() {
    // Corrupt roughly a third of frames: decode failures are treated as
    // silence and the ARQ retransmits clean copies.
    let mut channel = FaultyChannel::new(FaultRates::corruption(0.3), 21);
    let (mut d, mut v) = auth_pair(6);
    let before = v.current_response().clone();
    let report = run_wire_session(
        &mut channel,
        &mut d,
        &mut v,
        1,
        SessionConfig::default(),
        &mut Tracer::disabled(),
    );
    assert!(report.succeeded(), "{:?}", report.result);
    assert_ne!(v.current_response(), &before, "CRP did not rotate");
}

// ---------------------------------------------------------------------------
// Property: zero-fault FaultyChannel ≡ Channel for arbitrary traffic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn zero_fault_channel_is_byte_identical_to_perfect(
        ops in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(any::<u8>(), 0..48)),
            0..24,
        ),
        seed in 0u64..1024,
    ) {
        let mut perfect = Channel::new();
        let mut faulty = FaultyChannel::new(FaultRates::none(), seed);
        for (from_a, frame) in &ops {
            let side = if *from_a { Side::A } else { Side::B };
            perfect.send(side, frame.clone());
            faulty.send(side, frame.clone());
        }
        prop_assert_eq!(perfect.transcript(), faulty.transcript());
        for side in [Side::A, Side::B] {
            loop {
                let (p, f) = (perfect.recv(side), faulty.recv(side));
                prop_assert_eq!(&p, &f);
                if p.is_none() {
                    break;
                }
            }
        }
        let stats = faulty.stats();
        prop_assert_eq!(stats.sent, ops.len());
        prop_assert_eq!(stats.delivered, ops.len());
        prop_assert_eq!(stats.dropped + stats.corrupted + stats.duplicated, 0);
    }
}
