//! No-derive binary serialization with a versioned header.
//!
//! Replaces the two `serde` derive sites the workspace used to have
//! (PUF bit strings and enrollment records). Types implement
//! [`ToBytes`]/[`FromBytes`] by hand over a small little-endian wire
//! vocabulary; the top-level [`ToBytes::to_bytes`] /
//! [`FromBytes::from_bytes`] entry points frame the payload with a
//! 4-byte magic (`NPRT`) and a `u16` format version so stored blobs
//! from a future incompatible layout are rejected instead of
//! misparsed.

use std::fmt;

/// Magic prefix of every framed blob.
pub const MAGIC: [u8; 4] = *b"NPRT";
/// Current wire-format version.
pub const VERSION: u16 = 1;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// The framed blob does not start with [`MAGIC`].
    BadMagic,
    /// The framed blob has a version this build cannot read.
    UnsupportedVersion(u16),
    /// Bytes remained after the top-level value was decoded.
    TrailingBytes(usize),
    /// A field held an out-of-domain value.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadMagic => write!(f, "missing NPRT magic header"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cursor over an input buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a raw (unframed) buffer.
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length (`u64` on the wire, checked against the remaining
    /// input so corrupt lengths fail fast instead of allocating).
    // A wire-format field decoder, not a container size accessor.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.len()?;
        self.take(n)
    }
}

/// Output buffer helpers (little-endian, length-prefixed).
#[derive(Debug, Default)]
pub struct Writer {
    out: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length (`u64` on the wire).
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len(v.len());
        self.out.extend_from_slice(v);
    }

    /// Appends raw bytes with no prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.out.extend_from_slice(v);
    }

    /// Consumes the writer into the accumulated buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

/// Serialization into the little-endian wire vocabulary.
pub trait ToBytes {
    /// Appends this value's raw encoding (no header).
    fn write_into(&self, out: &mut Writer);

    /// Encodes with the versioned `NPRT` frame — the stable on-disk /
    /// on-wire form.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u16(VERSION);
        self.write_into(&mut w);
        w.into_bytes()
    }
}

/// Deserialization from the little-endian wire vocabulary.
pub trait FromBytes: Sized {
    /// Decodes this value's raw encoding (no header).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or out-of-domain input.
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a framed blob produced by [`ToBytes::to_bytes`],
    /// checking magic, version, and that no bytes trail the value.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on framing or payload problems.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let value = Self::read_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(value)
    }
}

impl ToBytes for Vec<u8> {
    fn write_into(&self, out: &mut Writer) {
        out.bytes(self);
    }
}

impl FromBytes for Vec<u8> {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.bytes()?.to_vec())
    }
}

impl ToBytes for u64 {
    fn write_into(&self, out: &mut Writer) {
        out.u64(*self);
    }
}

impl FromBytes for u64 {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl ToBytes for String {
    fn write_into(&self, out: &mut Writer) {
        out.bytes(self.as_bytes());
    }
}

impl FromBytes for String {
    fn read_from(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        String::from_utf8(r.bytes()?.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

impl<T: ToBytes> ToBytes for [T] {
    fn write_into(&self, out: &mut Writer) {
        out.len(self.len());
        for item in self {
            item.write_into(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_roundtrip() {
        let v = vec![1u8, 2, 3, 255];
        let blob = v.to_bytes();
        assert_eq!(&blob[..4], b"NPRT");
        assert_eq!(Vec::<u8>::from_bytes(&blob).unwrap(), v);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = vec![5u8, 2, 3].to_bytes();
        blob[0] ^= 0xFF;
        assert_eq!(Vec::<u8>::from_bytes(&blob), Err(CodecError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut blob = vec![1u8].to_bytes();
        blob[4] = 0xFF;
        assert!(matches!(
            Vec::<u8>::from_bytes(&blob),
            Err(CodecError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = vec![1u8].to_bytes();
        blob.push(0);
        assert_eq!(
            Vec::<u8>::from_bytes(&blob),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn truncation_rejected() {
        let blob = vec![1u8, 2, 3].to_bytes();
        assert_eq!(
            Vec::<u8>::from_bytes(&blob[..blob.len() - 1]),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn corrupt_length_fails_fast() {
        // A length claiming more bytes than remain must error, not
        // allocate.
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u16(VERSION);
        w.u64(u64::MAX);
        let blob = w.into_bytes();
        assert_eq!(Vec::<u8>::from_bytes(&blob), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn string_roundtrip() {
        let s = "NEUROPULS §III-A".to_string();
        assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}
