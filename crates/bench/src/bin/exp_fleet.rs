//! Regenerates the fleet-scheduling study (E17).
use neuropuls_bench::{experiments, Scale};

fn main() {
    let (out, _) = experiments::fleet::run(Scale::from_args());
    print!("{out}");
}
