//! E18 — §III protocol robustness: every wire protocol swept against an
//! adversarial transport. Each cell runs many sessions through a seeded
//! [`FaultyChannel`] at one fault kind (frame drop or single-bit
//! corruption) and rate, and records session completion, ARQ
//! retransmission cost and — for mutual authentication — how often the
//! verifier's previous-CRP fallback repaired a desynchronization.
//!
//! Every cell is an independent simulation seeded from its own
//! coordinates, so the sweep fans out on the pool with byte-identical
//! output at any thread count.

use crate::{Rendered, Scale};
use neuropuls_accel::config::NetworkConfig;
use neuropuls_accel::engine::PhotonicEngine;
use neuropuls_photonic::process::DieId;
use neuropuls_protocols::attestation::{
    run_wire_attestation, AttestationVerifier, AttestingDevice, TimingModel,
};
use neuropuls_protocols::eke::{run_wire_exchange, EkeParty};
use neuropuls_protocols::mutual_auth::{run_wire_session, Device, Verifier};
use neuropuls_protocols::secure_nn::{run_wire_inference, NetworkOwner, SecureAccelerator};
use neuropuls_protocols::transport::{FaultRates, FaultyChannel};
use neuropuls_protocols::wire::SessionConfig;
use neuropuls_puf::bits::Response;
use neuropuls_puf::photonic::PhotonicPuf;
use neuropuls_rt::trace::Tracer;

/// The four §III services, in report order.
const PROTOCOLS: [&str; 4] = ["mutual-auth", "attestation", "eke", "secure-nn"];

/// Fault kinds swept per protocol.
const FAULTS: [&str; 2] = ["drop", "corrupt"];

/// One `(protocol, fault, rate)` cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellReport {
    /// Protocol name (one of [`PROTOCOLS`]).
    pub protocol: &'static str,
    /// Fault kind (one of [`FAULTS`]).
    pub fault: &'static str,
    /// Per-frame fault probability.
    pub rate: f64,
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions that completed within the retry budget.
    pub completed: usize,
    /// Total ARQ retransmissions across the cell.
    pub retransmits: u64,
    /// Previous-CRP desync recoveries (mutual auth only, 0 elsewhere).
    pub desync_recoveries: u64,
    /// Fault rate the channel actually realized for the swept fault
    /// kind (drawn per frame, so it fluctuates around `rate`).
    pub realized_rate: f64,
    /// Frames the channel admitted across the cell's sessions.
    pub frames: usize,
}

impl CellReport {
    /// Fraction of sessions that completed.
    pub fn success_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }
}

fn rates_for(fault: &str, rate: f64) -> FaultRates {
    match fault {
        "drop" => FaultRates::loss(rate),
        _ => FaultRates::corruption(rate),
    }
}

/// Runs all sessions of one cell. The endpoints persist across the
/// cell's sessions (a failed mutual-auth session must leave state the
/// next session can recover from — that recovery is the measurement).
fn run_cell(
    cell_idx: usize,
    protocol: &'static str,
    fault: &'static str,
    rate: f64,
    sessions: usize,
) -> CellReport {
    let seed = 0xE18_0000_0000 ^ ((cell_idx as u64) << 16) ^ 0x5D;
    let die = DieId(0xE18_000 + cell_idx as u64);
    let cfg = SessionConfig::default();
    let mut channel = FaultyChannel::new(rates_for(fault, rate), seed);
    let mut completed = 0usize;
    let mut retransmits = 0u64;
    let mut desync_recoveries = 0u64;

    match protocol {
        "mutual-auth" => {
            let puf = PhotonicPuf::reference(die, 1);
            let Ok((mut device, provisioned)) =
                Device::provision(puf, vec![0xE1; 512], b"e18-provision")
            else {
                // A reference PUF always provisions; an empty cell just
                // reports zero completions.
                return CellReport {
                    protocol,
                    fault,
                    rate,
                    sessions,
                    completed: 0,
                    retransmits: 0,
                    desync_recoveries: 0,
                    realized_rate: 0.0,
                    frames: 0,
                };
            };
            let mut verifier = Verifier::new(provisioned, b"e18-verifier");
            for s in 0..sessions {
                let report = run_wire_session(
                    &mut channel,
                    &mut device,
                    &mut verifier,
                    s as u64,
                    cfg,
                    &mut Tracer::disabled(),
                );
                retransmits += u64::from(report.retransmits);
                if report.succeeded() {
                    completed += 1;
                }
            }
            desync_recoveries = verifier.desync_recoveries();
        }
        "attestation" => {
            let memory: Vec<u8> = (0..1024).map(|i| (i * 37 % 253) as u8).collect();
            let timing = TimingModel::photonic();
            let mut device =
                AttestingDevice::new(PhotonicPuf::reference(die, 1), memory.clone(), timing);
            let mut verifier =
                AttestationVerifier::new(PhotonicPuf::reference(die, 2), memory, timing);
            for s in 0..sessions {
                let report = run_wire_attestation(
                    &mut channel,
                    &mut device,
                    &mut verifier,
                    s as u64,
                    cfg,
                    &mut Tracer::disabled(),
                );
                retransmits += u64::from(report.retransmits);
                if report.succeeded() {
                    completed += 1;
                }
            }
        }
        "eke" => {
            let crp = Response::from_u64(0xE18 ^ cell_idx as u64, 63);
            for s in 0..sessions {
                // Key exchange is one-shot: fresh parties per session,
                // each with its own derived RNG stream.
                let mut tag_a = b"e18-eke-init".to_vec();
                tag_a.extend_from_slice(&(s as u64).to_le_bytes());
                let mut tag_b = b"e18-eke-resp".to_vec();
                tag_b.extend_from_slice(&(s as u64).to_le_bytes());
                let mut initiator = EkeParty::new(&crp, &tag_a);
                let mut responder = EkeParty::new(&crp, &tag_b);
                let report = run_wire_exchange(
                    &mut channel,
                    &mut initiator,
                    &mut responder,
                    s as u64,
                    cfg,
                    &mut Tracer::disabled(),
                );
                retransmits += u64::from(report.retransmits);
                if report.succeeded() && initiator.session() == responder.session() {
                    completed += 1;
                }
            }
        }
        _ => {
            let key = [0xE1u8; 32];
            let mut owner = NetworkOwner::new(key, b"e18-owner");
            let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
            let config = NetworkConfig::mlp(&[4, 4], |_, o, i| if o == i { 1.0 } else { 0.0 });
            let network_blob = owner.cipher_network(&config);
            let input_blob = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
            for s in 0..sessions {
                let (report, output) = run_wire_inference(
                    &mut channel,
                    &mut accel,
                    network_blob.clone(),
                    input_blob.clone(),
                    s as u64,
                    cfg,
                    &mut Tracer::disabled(),
                );
                retransmits += u64::from(report.retransmits);
                let delivered = output
                    .as_deref()
                    .is_some_and(|blob| owner.decipher_output(blob).is_ok());
                if report.succeeded() && delivered {
                    completed += 1;
                }
            }
        }
    }

    let realized = channel.realized_rates();
    CellReport {
        protocol,
        fault,
        rate,
        sessions,
        completed,
        retransmits,
        desync_recoveries,
        realized_rate: match fault {
            "drop" => realized.drop,
            _ => realized.corrupt,
        },
        frames: realized.admitted,
    }
}

/// Runs the robustness sweep.
pub fn run(scale: Scale) -> (Rendered, Vec<CellReport>) {
    let rates: Vec<f64> = scale.pick(vec![0.0, 0.2], vec![0.0, 0.05, 0.1, 0.2, 0.3]);
    let sessions = scale.pick(10, 60);

    let mut cells: Vec<(usize, &'static str, &'static str, f64)> = Vec::new();
    for protocol in PROTOCOLS {
        for fault in FAULTS {
            for &rate in &rates {
                cells.push((cells.len(), protocol, fault, rate));
            }
        }
    }
    let reports: Vec<CellReport> =
        neuropuls_rt::pool::par_map(cells, |(idx, protocol, fault, rate)| {
            run_cell(idx, protocol, fault, rate, sessions)
        });

    let mut out = Rendered::new("E18 (§III) — protocol robustness under adversarial transport");
    out.push(format!(
        "{sessions} sessions per cell, stop-and-wait ARQ (timeout 3 ticks, 4 retries):"
    ));
    out.push(format!(
        "{:>12} {:>8} {:>6} {:>9} {:>10} {:>9} {:>13} {:>10}",
        "protocol",
        "fault",
        "rate",
        "realized",
        "completed",
        "success%",
        "retx/session",
        "recoveries"
    ));
    for r in &reports {
        out.push(format!(
            "{:>12} {:>8} {:>6.2} {:>9.3} {:>6}/{:<3} {:>8.1}% {:>13.2} {:>10}",
            r.protocol,
            r.fault,
            r.rate,
            r.realized_rate,
            r.completed,
            r.sessions,
            r.success_rate() * 100.0,
            r.retransmits as f64 / r.sessions.max(1) as f64,
            r.desync_recoveries,
        ));
    }
    out.push(
        "zero-fault cells complete every session with zero retransmissions; under loss the \
         ARQ buys completion with retransmissions until the retry budget saturates, and \
         mutual auth repairs every Msg3-loss desync through the stored previous CRP"
            .to_string(),
    );
    (out, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_protocol_robustness() {
        let (_, reports) = run(Scale::Smoke);
        assert_eq!(reports.len(), 4 * 2 * 2);
        for r in &reports {
            assert!(r.completed <= r.sessions, "{r:?}");
            if r.rate == 0.0 {
                assert_eq!(r.completed, r.sessions, "zero-fault cell failed: {r:?}");
                assert_eq!(r.retransmits, 0, "zero-fault cell retransmitted: {r:?}");
            }
            if r.protocol != "mutual-auth" {
                assert_eq!(r.desync_recoveries, 0, "{r:?}");
            }
        }
        // The ARQ must do real work somewhere in the faulty cells.
        let faulty_retx: u64 = reports
            .iter()
            .filter(|r| r.rate > 0.0)
            .map(|r| r.retransmits)
            .sum();
        assert!(
            faulty_retx > 0,
            "no retransmissions across the faulty cells"
        );
        // The channel's realized fault rates must track the configured
        // rate: exactly zero at rate 0, nonzero and within a generous
        // sampling tolerance otherwise.
        for r in &reports {
            assert!(
                r.frames > 0,
                "a cell that ran sessions admitted frames: {r:?}"
            );
            if r.rate == 0.0 {
                assert_eq!(r.realized_rate, 0.0, "{r:?}");
            } else {
                assert!(r.realized_rate > 0.0, "{r:?}");
                assert!(
                    (r.realized_rate - r.rate).abs() < 0.15,
                    "realized rate far from configured: {r:?}"
                );
            }
        }
    }
}
