//! BCH(15, 5, t = 3) over GF(2⁴) — a stronger inner code for the fuzzy
//! extractor.
//!
//! The repetition ⊕ Hamming concatenation in [`crate::ecc`] is the
//! cheapest classic PUF construction; BCH(15,5) corrects any 3 errors in
//! a 15-bit block at a better rate than repetition-5, which matters when
//! the weak PUF's bit error rate sits in the few-percent range
//! (experiment E10 compares the pipelines).
//!
//! Implementation: GF(16) built on the primitive polynomial
//! x⁴ + x + 1; systematic encoding by polynomial division with the
//! degree-10 generator g(x) = lcm(m₁, m₃, m₅); decoding via syndrome
//! computation and Peterson–Gorenstein–Zierler for t ≤ 3.

use crate::ecc::BlockCode;
use crate::CryptoError;

/// GF(16) arithmetic tables (primitive element α, x⁴ + x + 1).
#[derive(Debug, Clone)]
struct Gf16 {
    exp: [u8; 32],
    log: [u8; 16],
}

impl Gf16 {
    fn new() -> Self {
        let mut exp = [0u8; 32];
        let mut log = [0u8; 16];
        let mut x: u8 = 1;
        for i in 0..15 {
            exp[i] = x;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x10 != 0 {
                x = (x ^ 0x13) & 0x0F; // reduce by x^4 + x + 1
            }
        }
        for i in 15..32 {
            exp[i] = exp[i - 15];
        }
        Gf16 { exp, log }
    }

    fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] as usize + self.log[b as usize] as usize) % 15]
        }
    }

    fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "inverse of zero in GF(16)");
        self.exp[(15 - self.log[a as usize] as usize) % 15]
    }

    fn pow_alpha(&self, e: usize) -> u8 {
        self.exp[e % 15]
    }
}

/// The binary BCH(15, 5) code correcting up to 3 bit errors per block.
///
/// # Example
///
/// ```
/// use neuropuls_crypto::bch::Bch15_5;
/// use neuropuls_crypto::ecc::BlockCode;
///
/// # fn main() -> Result<(), neuropuls_crypto::CryptoError> {
/// let code = Bch15_5::new();
/// let data = vec![1, 0, 1, 1, 0];
/// let mut coded = code.encode(&data)?;
/// coded[1] ^= 1;
/// coded[7] ^= 1;
/// coded[14] ^= 1; // three errors
/// assert_eq!(code.decode(&coded)?, data);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bch15_5 {
    gf: Gf16,
}

/// Generator polynomial of BCH(15,5,t=3):
/// g(x) = x¹⁰ + x⁸ + x⁵ + x⁴ + x² + x + 1.
const GENERATOR: u16 = 0b101_0011_0111;
const N: usize = 15;
const K: usize = 5;

impl Bch15_5 {
    /// Creates the code (builds the GF(16) tables).
    pub fn new() -> Self {
        Bch15_5 { gf: Gf16::new() }
    }

    /// Encodes one 5-bit block into a systematic 15-bit codeword: the
    /// data occupies the high-degree coefficients x¹⁰..x¹⁴, the parity
    /// (remainder of m(x)·x¹⁰ mod g(x)) the low ones. Index `i` of the
    /// output is the coefficient of xⁱ throughout this module.
    fn encode_block(&self, data: &[u8]) -> [u8; N] {
        let mut work = [0u8; N];
        for i in 0..K {
            work[N - K + i] = data[i] & 1;
        }
        // Long division by g(x), high degree down.
        for j in (N - K..N).rev() {
            if work[j] == 1 {
                for k in 0..=(N - K) {
                    work[j - (N - K) + k] ^= ((GENERATOR >> k) & 1) as u8;
                }
            }
        }
        // work[0..10] now holds the remainder; add back the data.
        let mut out = work;
        for i in 0..K {
            out[N - K + i] = data[i] & 1;
        }
        out
    }

    /// Computes syndromes S₁..S₆ for a received word.
    fn syndromes(&self, word: &[u8]) -> [u8; 6] {
        let mut s = [0u8; 6];
        for (j, slot) in s.iter_mut().enumerate() {
            let mut acc = 0u8;
            for (i, &bit) in word.iter().enumerate() {
                if bit & 1 == 1 {
                    acc ^= self.gf.pow_alpha((j + 1) * i);
                }
            }
            *slot = acc;
        }
        s
    }

    /// Peterson–Gorenstein–Zierler: finds the error-locator polynomial
    /// coefficients for up to 3 errors, returns error positions.
    fn locate_errors(&self, s: &[u8; 6]) -> Result<Vec<usize>, CryptoError> {
        let gf = &self.gf;
        if s.iter().all(|&x| x == 0) {
            return Ok(Vec::new());
        }
        // Try ν = 3, then 2, then 1.
        // ν = 3 system:
        //  [S1 S2 S3][σ3]   [S4]
        //  [S2 S3 S4][σ2] = [S5]
        //  [S3 S4 S5][σ1]   [S6]
        let det3 = {
            let m = [[s[0], s[1], s[2]], [s[1], s[2], s[3]], [s[2], s[3], s[4]]];
            self.det3(&m)
        };
        let (sigma1, sigma2, sigma3) = if det3 != 0 {
            let m = [[s[0], s[1], s[2]], [s[1], s[2], s[3]], [s[2], s[3], s[4]]];
            let rhs = [s[3], s[4], s[5]];
            let sol = self.solve3(&m, &rhs)?;
            (sol[2], sol[1], sol[0])
        } else {
            let det2 = gf.mul(s[0], s[2]) ^ gf.mul(s[1], s[1]);
            if det2 != 0 {
                // [S1 S2][σ2]   [S3]
                // [S2 S3][σ1] = [S4]
                let inv = gf.inv(det2);
                let sigma2 = gf.mul(inv, gf.mul(s[2], s[2]) ^ gf.mul(s[1], s[3]));
                let sigma1 = gf.mul(inv, gf.mul(s[0], s[3]) ^ gf.mul(s[1], s[2]));
                (sigma1, sigma2, 0)
            } else if s[0] != 0 {
                (s[0], 0, 0) // single error: σ1 = S1
            } else {
                return Err(CryptoError::UncorrectableCodeword);
            }
        };

        // Chien search: roots of σ(x) = 1 + σ1 x + σ2 x² + σ3 x³; error
        // positions are i where x = α^{-i} is a root.
        let mut positions = Vec::new();
        for i in 0..N {
            let x = gf.pow_alpha((15 - i) % 15); // α^{-i}
            let x2 = gf.mul(x, x);
            let x3 = gf.mul(x2, x);
            let value = 1 ^ gf.mul(sigma1, x) ^ gf.mul(sigma2, x2) ^ gf.mul(sigma3, x3);
            if value == 0 {
                positions.push(i);
            }
        }
        let expected = if sigma3 != 0 {
            3
        } else if sigma2 != 0 {
            2
        } else {
            1
        };
        if positions.len() != expected {
            return Err(CryptoError::UncorrectableCodeword);
        }
        Ok(positions)
    }

    fn det3(&self, m: &[[u8; 3]; 3]) -> u8 {
        let gf = &self.gf;
        let a = gf.mul(m[0][0], gf.mul(m[1][1], m[2][2]) ^ gf.mul(m[1][2], m[2][1]));
        let b = gf.mul(m[0][1], gf.mul(m[1][0], m[2][2]) ^ gf.mul(m[1][2], m[2][0]));
        let c = gf.mul(m[0][2], gf.mul(m[1][0], m[2][1]) ^ gf.mul(m[1][1], m[2][0]));
        a ^ b ^ c
    }

    fn solve3(&self, m: &[[u8; 3]; 3], rhs: &[u8; 3]) -> Result<[u8; 3], CryptoError> {
        // Cramer's rule in GF(16).
        let det = self.det3(m);
        if det == 0 {
            return Err(CryptoError::UncorrectableCodeword);
        }
        let inv = self.gf.inv(det);
        let mut out = [0u8; 3];
        for col in 0..3 {
            let mut mc = *m;
            for row in 0..3 {
                mc[row][col] = rhs[row];
            }
            out[col] = self.gf.mul(inv, self.det3(&mc));
        }
        Ok(out)
    }
}

impl Default for Bch15_5 {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCode for Bch15_5 {
    fn data_bits(&self) -> usize {
        K
    }

    fn code_bits(&self) -> usize {
        N
    }

    fn correctable_errors(&self) -> usize {
        3
    }

    fn encode(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !data.len().is_multiple_of(K) {
            return Err(CryptoError::InvalidLength {
                expected: K,
                actual: data.len() % K,
            });
        }
        let mut out = Vec::with_capacity(data.len() / K * N);
        for block in data.chunks_exact(K) {
            out.extend_from_slice(&self.encode_block(block));
        }
        Ok(out)
    }

    fn decode(&self, code: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if !code.len().is_multiple_of(N) {
            return Err(CryptoError::InvalidLength {
                expected: N,
                actual: code.len() % N,
            });
        }
        let mut out = Vec::with_capacity(code.len() / N * K);
        for block in code.chunks_exact(N) {
            let mut word: Vec<u8> = block.iter().map(|b| b & 1).collect();
            let syndromes = self.syndromes(&word);
            let positions = self.locate_errors(&syndromes)?;
            for pos in positions {
                word[pos] ^= 1;
            }
            out.extend_from_slice(&word[N - K..]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> impl Iterator<Item = Vec<u8>> {
        (0u8..32).map(|m| (0..5).map(|i| (m >> i) & 1).collect())
    }

    #[test]
    fn gf16_inverse_law() {
        let gf = Gf16::new();
        for a in 1u8..16 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn gf16_alpha_order() {
        let gf = Gf16::new();
        assert_eq!(gf.pow_alpha(0), 1);
        assert_eq!(gf.pow_alpha(15), 1);
        // α is primitive: powers 0..15 are distinct.
        let mut seen = [false; 16];
        for e in 0..15 {
            let v = gf.pow_alpha(e) as usize;
            assert!(!seen[v], "α^{e} repeats");
            seen[v] = true;
        }
    }

    #[test]
    fn codewords_have_zero_syndromes() {
        let code = Bch15_5::new();
        for msg in all_messages() {
            let cw = code.encode(&msg).unwrap();
            assert!(code.syndromes(&cw).iter().all(|&s| s == 0), "msg {msg:?}");
        }
    }

    #[test]
    fn clean_roundtrip_all_messages() {
        let code = Bch15_5::new();
        for msg in all_messages() {
            let cw = code.encode(&msg).unwrap();
            assert_eq!(code.decode(&cw).unwrap(), msg);
        }
    }

    #[test]
    fn corrects_any_single_and_double_error() {
        let code = Bch15_5::new();
        for msg in all_messages().take(8) {
            let cw = code.encode(&msg).unwrap();
            for i in 0..15 {
                let mut w = cw.clone();
                w[i] ^= 1;
                assert_eq!(code.decode(&w).unwrap(), msg, "single error at {i}");
                for j in (i + 1)..15 {
                    let mut w2 = w.clone();
                    w2[j] ^= 1;
                    assert_eq!(code.decode(&w2).unwrap(), msg, "double error {i},{j}");
                }
            }
        }
    }

    #[test]
    fn corrects_all_triple_errors_for_one_message() {
        let code = Bch15_5::new();
        let msg = vec![1, 0, 1, 1, 0];
        let cw = code.encode(&msg).unwrap();
        for i in 0..15 {
            for j in (i + 1)..15 {
                for k in (j + 1)..15 {
                    let mut w = cw.clone();
                    w[i] ^= 1;
                    w[j] ^= 1;
                    w[k] ^= 1;
                    assert_eq!(code.decode(&w).unwrap(), msg, "triple {i},{j},{k}");
                }
            }
        }
    }

    #[test]
    fn four_errors_are_flagged_or_miscorrected_not_panicking() {
        let code = Bch15_5::new();
        let msg = vec![0, 1, 0, 0, 1];
        let cw = code.encode(&msg).unwrap();
        let mut w = cw;
        for i in [0, 4, 8, 12] {
            w[i] ^= 1;
        }
        // Beyond capacity: either an error or a (wrong) decode — both are
        // acceptable code behaviour; it must not panic.
        let _ = code.decode(&w);
    }

    #[test]
    fn rate_beats_repetition5() {
        use crate::ecc::RepetitionCode;
        let bch = Bch15_5::new();
        let rep = RepetitionCode::new(5);
        assert!(bch.rate() > rep.rate());
        assert_eq!(bch.correctable_errors(), 3);
    }

    #[test]
    fn length_validation() {
        let code = Bch15_5::new();
        assert!(code.encode(&[1, 0, 1]).is_err());
        assert!(code.decode(&[0; 16]).is_err());
    }

    #[test]
    fn works_with_fuzzy_extractor() {
        use crate::fuzzy::FuzzyExtractor;
        use crate::prng::CsPrng;
        let fx = FuzzyExtractor::new(Bch15_5::new());
        let response: Vec<u8> = (0..60).map(|i| ((i * 11 + 2) % 5 < 2) as u8).collect();
        let mut rng = CsPrng::from_seed_bytes(b"bch-fx");
        let enrolled = fx.generate(&response, &mut rng).unwrap();
        let mut noisy = response.clone();
        noisy[2] ^= 1;
        noisy[20] ^= 1;
        noisy[22] ^= 1; // three errors in the second block
        noisy[3] ^= 1;
        let key = fx.reproduce(&noisy, &enrolled.helper).unwrap();
        assert_eq!(key, enrolled.key);
    }
}
