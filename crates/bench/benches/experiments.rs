//! Criterion wrappers around the experiment harness (smoke scale): one
//! bench per table/figure so `cargo bench` exercises every regeneration
//! path and reports its wall time.

use neuropuls_bench::{experiments, Scale};
use neuropuls_rt::criterion::Criterion;
use neuropuls_rt::{criterion_group, criterion_main};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_smoke");
    group.sample_size(10);

    group.bench_function("e1_fig3_ro", |b| {
        b.iter(|| experiments::fig3::run_ro(Scale::Smoke))
    });
    group.bench_function("e1b_fig3_photonic", |b| {
        b.iter(|| experiments::fig3::run_photonic(Scale::Smoke))
    });
    group.bench_function("e3_table1", |b| {
        b.iter(|| experiments::table1::run(Scale::Smoke))
    });
    group.bench_function("e4_auth", |b| {
        b.iter(|| experiments::auth::run(Scale::Smoke))
    });
    group.bench_function("e5_attestation", |b| {
        b.iter(|| experiments::attestation::run(Scale::Smoke))
    });
    group.bench_function("e8_remanence", |b| {
        b.iter(|| experiments::remanence::run(Scale::Smoke))
    });
    group.bench_function("e9_system", |b| {
        b.iter(|| experiments::system::run(Scale::Smoke))
    });
    group.bench_function("e12_eke", |b| {
        b.iter(|| experiments::eke::run(Scale::Smoke))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
