//! Remanence-decay attack — §IV, citing Zeitouni et al. \[27\].
//!
//! SRAM PUFs that share their array with normal memory leak: after a
//! brief power cut, written data survives partially (remanence) and can
//! be read out by an attacker who re-powers the chip quickly. The
//! photonic PUF is structurally immune — "its response is present only
//! during the interrogation time and then disappears … below 100 ns" —
//! there is no persistent element to decay.

use neuropuls_puf::sram::SramPuf;

/// Outcome of one remanence readout attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemanenceOutcome {
    /// Power-off time before the readout, milliseconds.
    pub off_time_ms: f64,
    /// Fraction of secret bits correctly recovered (0.5 = chance).
    pub recovery: f64,
}

/// Writes `secret` into the SRAM array, power-cycles with `off_time_ms`,
/// reads the array back and scores recovery.
///
/// # Panics
///
/// Panics if `secret` does not cover the array.
pub fn sram_remanence_attack(
    sram: &mut SramPuf,
    secret: &[u8],
    off_time_ms: f64,
) -> RemanenceOutcome {
    assert_eq!(
        secret.len(),
        sram.config().cells,
        "secret must fill the array"
    );
    sram.write_data(secret.to_vec());
    let read = sram.power_cycle_read(off_time_ms);
    let matches = read
        .iter()
        .zip(secret.iter())
        .filter(|(a, b)| (**a & 1) == (**b & 1))
        .count();
    RemanenceOutcome {
        off_time_ms,
        recovery: matches as f64 / secret.len() as f64,
    }
}

/// Sweeps off-times and returns the decay curve.
pub fn remanence_decay_curve(
    sram: &mut SramPuf,
    secret: &[u8],
    off_times_ms: &[f64],
) -> Vec<RemanenceOutcome> {
    off_times_ms
        .iter()
        .map(|&t| sram_remanence_attack(sram, secret, t))
        .collect()
}

/// The photonic PUF's exposure window: the attacker can only capture the
/// response while it physically exists. Returns the recovery probability
/// for an attacker whose probe arrives `probe_delay_ns` after the
/// interrogation started, given the response window.
///
/// The model is a hard cutoff — after the light has left the PIC there
/// is nothing to probe (no remanence mechanism exists), hence exactly
/// chance level.
pub fn photonic_exposure(probe_delay_ns: f64, response_window_ns: f64) -> f64 {
    if probe_delay_ns < response_window_ns {
        1.0 // the response is live; a fast-enough probe sees it
    } else {
        0.5 // gone — guessing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::photonic::PhotonicPuf;

    fn secret(cells: usize) -> Vec<u8> {
        (0..cells).map(|i| ((i * 7 + 1) % 3 == 0) as u8).collect()
    }

    #[test]
    fn short_cut_leaks_long_cut_does_not() {
        let mut sram = SramPuf::reference(DieId(1), 5);
        let s = secret(sram.config().cells);
        let fast = sram_remanence_attack(&mut sram, &s, 0.05);
        let slow = sram_remanence_attack(&mut sram, &s, 50.0);
        assert!(fast.recovery > 0.9, "fast probe recovery {}", fast.recovery);
        assert!(
            (slow.recovery - 0.5).abs() < 0.15,
            "slow probe recovery {}",
            slow.recovery
        );
    }

    #[test]
    fn decay_curve_is_monotone_decreasing() {
        let mut sram = SramPuf::reference(DieId(2), 6);
        let s = secret(sram.config().cells);
        let curve = remanence_decay_curve(&mut sram, &s, &[0.1, 1.0, 5.0, 20.0, 100.0]);
        for pair in curve.windows(2) {
            assert!(
                pair[1].recovery <= pair[0].recovery + 0.05,
                "decay not monotone: {curve:?}"
            );
        }
    }

    #[test]
    fn photonic_window_is_binary_and_short() {
        let puf = PhotonicPuf::reference(DieId(3), 7);
        let window = puf.response_window_ns();
        assert!(window < 100.0);
        assert_eq!(photonic_exposure(window + 1.0, window), 0.5);
        assert_eq!(photonic_exposure(window * 0.5, window), 1.0);
    }

    #[test]
    fn realistic_probe_always_misses_photonic_window() {
        // A remanence-style probe needs power cycling: milliseconds.
        let puf = PhotonicPuf::reference(DieId(4), 8);
        let probe_delay_ns = 1e6; // 1 ms
        assert_eq!(
            photonic_exposure(probe_delay_ns, puf.response_window_ns()),
            0.5
        );
    }
}
