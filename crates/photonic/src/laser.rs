//! Telecom laser source (Fig. 2: "telecom laser source").
//!
//! Emits a CW carrier at 1550 nm whose amplitude follows the environment's
//! laser power setting, with relative intensity noise (RIN) and slow phase
//! drift applied per interrogation.

use crate::complex::Complex64;
use crate::environment::Environment;
use neuropuls_rt::Rng;

/// A CW telecom laser.
#[derive(Debug, Clone, Copy)]
pub struct Laser {
    /// Emission wavelength in nm (informational; the simulation is
    /// single-wavelength).
    pub wavelength_nm: f64,
}

impl Laser {
    /// A standard C-band laser at 1550 nm.
    pub fn new() -> Self {
        Laser {
            wavelength_nm: 1550.0,
        }
    }

    /// Carrier amplitude for the environment's power setting. Power in mW
    /// maps to |E|² in normalized units (1 mW → |E|² = 1).
    pub fn carrier(&self, env: &Environment) -> Complex64 {
        Complex64::new(env.laser_power_mw.max(0.0).sqrt(), 0.0)
    }

    /// Carrier with per-interrogation RIN and random optical phase drawn
    /// from `rng` (the optical phase is not locked between
    /// interrogations; only *relative* phases inside the PIC matter).
    pub fn noisy_carrier<R: Rng>(&self, env: &Environment, rng: &mut R) -> Complex64 {
        let rin: f64 = 1.0 + env.rin * gaussian(rng);
        let power = (env.laser_power_mw * rin.max(0.0)).max(0.0);
        let phase = rng.gen::<f64>() * std::f64::consts::TAU;
        Complex64::from_polar(power.sqrt(), phase)
    }
}

impl Default for Laser {
    fn default() -> Self {
        Self::new()
    }
}

/// Standard Gaussian via Box–Muller, usable with any [`Rng`].
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuropuls_rt::rngs::StdRng;
    use neuropuls_rt::SeedableRng;

    #[test]
    fn carrier_power_tracks_environment() {
        let laser = Laser::new();
        let env = Environment::nominal().with_laser_scale(4.0);
        assert!((laser.carrier(&env).norm_sqr() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_power_is_dark() {
        let laser = Laser::new();
        let env = Environment::nominal().with_laser_scale(0.0);
        assert_eq!(laser.carrier(&env).norm_sqr(), 0.0);
    }

    #[test]
    fn noisy_carrier_fluctuates_around_nominal() {
        let laser = Laser::new();
        let env = Environment::nominal();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean_power: f64 = (0..n)
            .map(|_| laser.noisy_carrier(&env, &mut rng).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((mean_power - 1.0).abs() < 0.01, "mean power {mean_power}");
    }

    #[test]
    fn gaussian_helper_has_unit_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.05);
    }
}
