//! Concurrent session gateway: many wire sessions, one transport.
//!
//! The §III drivers in [`crate::wire`] run exactly one session per
//! channel. A production verifier terminates *fleets*: hundreds of
//! devices authenticate, attest, key-exchange and stream inference
//! blobs over one physical link. This module multiplexes any number of
//! concurrent [`Session`] pairs — all four protocols mixed freely —
//! over a single shared [`Transport`] by demultiplexing on the
//! [`Envelope`] tags (`protocol`, `session`) that every frame already
//! carries.
//!
//! # Scheduling model
//!
//! The gateway is a deterministic poll loop. Each tick:
//!
//! 1. **Admit** — sessions move backlog → accept queue → active set.
//!    The accept queue is bounded ([`GatewayConfig::accept_queue`]) and
//!    the active set is bounded ([`GatewayConfig::max_active`]); a
//!    session's ARQ clock only runs while it is active, so queued
//!    sessions cannot time out waiting for admission.
//! 2. **Route A** — every frame pending on [`Side::A`] is decoded and
//!    appended to the owning session's initiator inbox.
//! 3. **Step initiators** — each active initiator is stepped with at
//!    most one inbox frame, in round-robin order rotated by the tick
//!    number so no session systematically transmits first.
//! 4. **Route B / step responders** — the mirror image for [`Side::B`].
//! 5. **Close** — slots whose two sides both finished (or either side
//!    failed) leave the active set, freeing capacity for the queue.
//!
//! This is the per-session cadence of [`crate::wire::drive_traced`]
//! exactly: an initiator frame sent on tick *t* reaches the responder
//! on tick *t*, and the reply reaches the initiator on tick *t + 1*.
//! Over a lossless transport the gateway therefore produces, per
//! session, byte-identical wire transcripts to running each session
//! alone (`tests/` pins this property).
//!
//! # Demux rules
//!
//! * Frames that do not decode as an [`Envelope`] are dropped and
//!   counted (`undecodable_frames`); a session treats a missing frame
//!   exactly like decoded noise, so this cannot change behavior.
//! * Frames whose `(protocol, session)` key matches a *closed* slot are
//!   late arrivals — duplicates or reordered stragglers from a session
//!   that already completed. They are dropped and counted
//!   (`late_frames`), never silently lost.
//! * Frames with an unknown key are counted as `unroutable_frames`.
//!
//! The gateway itself is single-threaded and allocation-light;
//! fleet-scale runs fan out *independent* gateways (one per shared
//! link) on `neuropuls_rt::pool`, whose ordered-merge contract keeps
//! the aggregate deterministic under any thread count.

use crate::error::ProtocolError;
use crate::transport::{Side, Transport};
use crate::wire::{Envelope, ProtocolId, Session, SessionAction};
use neuropuls_rt::codec::FromBytes;
use neuropuls_rt::trace::{Registry, Tracer, Value};
use std::collections::{BTreeMap, VecDeque};

/// Human-readable protocol label for traces and reports.
pub fn protocol_label(protocol: ProtocolId) -> &'static str {
    match protocol {
        ProtocolId::MutualAuth => "mutual_auth",
        ProtocolId::Attestation => "attestation",
        ProtocolId::Eke => "eke",
        ProtocolId::SecureNn => "secure_nn",
    }
}

/// One session to multiplex: the two endpoints plus the envelope key
/// (`protocol`, `id`) its frames carry on the shared wire.
pub struct SessionPair<'x> {
    /// Service discriminator routed on.
    pub protocol: ProtocolId,
    /// Session identifier routed on (chosen unique by the caller).
    pub id: u64,
    /// The [`Side::A`] endpoint (verifier / client / initiator).
    pub initiator: Box<dyn Session + 'x>,
    /// The [`Side::B`] endpoint (device / accelerator / responder).
    pub responder: Box<dyn Session + 'x>,
}

/// Capacity and budget knobs of one gateway run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Sessions running concurrently (ARQ clocks ticking).
    pub max_active: usize,
    /// Sessions staged for admission; overflow waits in the backlog.
    pub accept_queue: usize,
    /// Total tick budget for the whole run.
    pub max_ticks: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            max_active: 64,
            accept_queue: 16,
            max_ticks: 4096,
        }
    }
}

/// Terminal state of one multiplexed session.
#[derive(Debug)]
pub struct GatewayOutcome {
    /// Service the session ran.
    pub protocol: ProtocolId,
    /// Envelope session id.
    pub id: u64,
    /// Active ticks to completion, or the failure that ended it.
    /// Sessions still queued or in flight when the tick budget ran out
    /// report [`ProtocolError::Timeout`] with `retries: 0`.
    pub result: Result<u32, ProtocolError>,
    /// Frames retransmitted across both endpoints.
    pub retransmits: u32,
    /// Tick the session entered the active set (`None` = never admitted).
    pub admitted_at: Option<u64>,
}

/// Aggregate outcome of one gateway run.
#[derive(Debug)]
pub struct GatewayReport {
    /// Sessions submitted.
    pub sessions: usize,
    /// Sessions that completed both sides.
    pub completed: usize,
    /// Sessions that failed with a protocol error.
    pub failed: usize,
    /// Sessions still queued or in flight at the tick budget.
    pub unfinished: usize,
    /// Ticks consumed (≤ [`GatewayConfig::max_ticks`]).
    pub ticks: u64,
    /// Total frames retransmitted across all sessions.
    pub retransmits: u64,
    /// Frames routed to an already-closed session (counted, dropped).
    pub late_frames: u64,
    /// Decoded frames whose key matched no known session.
    pub unroutable_frames: u64,
    /// Frames that did not decode as an [`Envelope`].
    pub undecodable_frames: u64,
    /// Most sessions simultaneously active.
    pub peak_active: usize,
    /// Most sessions simultaneously staged in the accept queue.
    pub peak_staged: usize,
    /// Per-session outcomes, in submission order.
    pub outcomes: Vec<GatewayOutcome>,
}

impl GatewayReport {
    /// Whether every submitted session completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.sessions
    }
}

enum SlotState {
    Backlog,
    Staged,
    Active,
    Closed,
}

struct Slot<'x> {
    pair: SessionPair<'x>,
    state: SlotState,
    inbox_a: VecDeque<Vec<u8>>,
    inbox_b: VecDeque<Vec<u8>>,
    admitted_at: Option<u64>,
    ticks_active: u32,
    result: Option<Result<u32, ProtocolError>>,
}

impl Slot<'_> {
    fn close(&mut self, result: Result<u32, ProtocolError>) {
        self.state = SlotState::Closed;
        self.result = Some(result);
    }

    fn retransmits(&self) -> u32 {
        self.pair.initiator.retransmits() + self.pair.responder.retransmits()
    }
}

/// [`run_gateway_traced`] without instrumentation.
pub fn run_gateway<T: Transport>(
    transport: &mut T,
    sessions: Vec<SessionPair<'_>>,
    config: GatewayConfig,
) -> GatewayReport {
    run_gateway_traced(
        transport,
        sessions,
        config,
        &mut Tracer::disabled(),
        &Registry::new(),
    )
}

/// Runs every session in `sessions` to completion (or failure) over the
/// shared `transport`, multiplexing frames by their envelope key.
///
/// Instrumentation: one `gateway.session` span per session (admission
/// to close, carrying protocol, ticks and retransmits), instants for
/// late / unroutable frames, and `gateway.*` counters plus a
/// `gateway.session_ticks` histogram folded into `registry`.
///
/// The report is total: every submitted session appears in
/// [`GatewayReport::outcomes`] exactly once, on every path. Duplicate
/// `(protocol, id)` keys fail the later session immediately with
/// [`ProtocolError::OutOfOrder`] rather than corrupting the demux.
pub fn run_gateway_traced<T: Transport>(
    transport: &mut T,
    sessions: Vec<SessionPair<'_>>,
    config: GatewayConfig,
    tracer: &mut Tracer,
    registry: &Registry,
) -> GatewayReport {
    let mut slots: Vec<Slot<'_>> = sessions
        .into_iter()
        .map(|pair| Slot {
            pair,
            state: SlotState::Backlog,
            inbox_a: VecDeque::new(),
            inbox_b: VecDeque::new(),
            admitted_at: None,
            ticks_active: 0,
            result: None,
        })
        .collect();
    registry.counter("gateway.sessions", slots.len() as u64);

    // Demux table: envelope key -> slot index. A key maps to at most
    // one *open* slot; closed slots move to `closed_keys` so stragglers
    // are recognized as late rather than unroutable.
    let mut routes: BTreeMap<(ProtocolId, u64), usize> = BTreeMap::new();
    let mut backlog: VecDeque<usize> = VecDeque::new();
    for (idx, slot) in slots.iter_mut().enumerate() {
        let key = (slot.pair.protocol, slot.pair.id);
        match routes.entry(key) {
            std::collections::btree_map::Entry::Vacant(entry) => {
                entry.insert(idx);
                backlog.push_back(idx);
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                slot.close(Err(ProtocolError::OutOfOrder(format!(
                    "duplicate gateway session key {}/{}",
                    protocol_label(key.0),
                    key.1
                ))));
            }
        }
    }

    let mut staged: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    let mut late_frames = 0u64;
    let mut unroutable_frames = 0u64;
    let mut undecodable_frames = 0u64;
    let mut peak_active = 0usize;
    let mut peak_staged = 0usize;
    let mut ticks = 0u64;
    let mut open = slots.iter().filter(|s| s.result.is_none()).count();

    let mut route = |transport: &mut T,
                     side: Side,
                     slots: &mut Vec<Slot<'_>>,
                     tracer: &mut Tracer,
                     tick: u64| {
        while let Some(frame) = transport.recv(side) {
            let Ok(env) = Envelope::from_bytes(&frame) else {
                undecodable_frames += 1;
                continue;
            };
            match routes.get(&(env.protocol, env.session)) {
                Some(&idx) => {
                    // invariant: `routes` only holds indices produced by
                    // enumerate() over `slots`, which never shrinks.
                    let Some(slot) = slots.get_mut(idx) else {
                        unroutable_frames += 1;
                        continue;
                    };
                    if matches!(slot.state, SlotState::Closed) {
                        late_frames += 1;
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.late_frame",
                                vec![
                                    ("protocol", Value::from(protocol_label(env.protocol))),
                                    ("session", Value::from(env.session)),
                                ],
                            );
                        }
                    } else if side == Side::A {
                        slot.inbox_a.push_back(frame);
                    } else {
                        slot.inbox_b.push_back(frame);
                    }
                }
                None => {
                    unroutable_frames += 1;
                    if tracer.is_enabled() {
                        tracer.instant(
                            tick,
                            "gateway.unroutable",
                            vec![
                                ("protocol", Value::from(protocol_label(env.protocol))),
                                ("session", Value::from(env.session)),
                            ],
                        );
                    }
                }
            }
        }
    };

    while open > 0 && ticks < config.max_ticks {
        let tick = ticks;

        // Phase 1 — admit: backlog refills the bounded accept queue,
        // the accept queue fills free active capacity, FIFO throughout.
        while staged.len() < config.accept_queue {
            match backlog.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Staged;
                    }
                    staged.push_back(idx);
                }
                None => break,
            }
        }
        peak_staged = peak_staged.max(staged.len());
        while active.len() < config.max_active {
            match staged.pop_front() {
                Some(idx) => {
                    if let Some(slot) = slots.get_mut(idx) {
                        slot.state = SlotState::Active;
                        slot.admitted_at = Some(tick);
                        if tracer.is_enabled() {
                            tracer.instant(
                                tick,
                                "gateway.admit",
                                vec![
                                    (
                                        "protocol",
                                        Value::from(protocol_label(slot.pair.protocol)),
                                    ),
                                    ("session", Value::from(slot.pair.id)),
                                ],
                            );
                        }
                    }
                    active.push(idx);
                }
                None => break,
            }
        }
        peak_active = peak_active.max(active.len());

        // Fair rotation: which active session transmits first cycles
        // with the tick, so early slots get no standing head start on
        // the shared wire.
        let rotation = if active.is_empty() {
            0
        } else {
            (tick as usize) % active.len()
        };
        let order: Vec<usize> = (0..active.len())
            .map(|k| (rotation + k) % active.len())
            .filter_map(|pos| active.get(pos).copied())
            .collect();

        // Phase 2/3 — deliver pending side-A frames, step initiators.
        route(transport, Side::A, &mut slots, tracer, tick);
        for &idx in &order {
            step_side(transport, &mut slots, idx, Side::A, tick);
        }

        // Phase 4 — the responder mirror.
        route(transport, Side::B, &mut slots, tracer, tick);
        for &idx in &order {
            step_side(transport, &mut slots, idx, Side::B, tick);
        }

        // Phase 5 — close finished and failed slots.
        for &idx in &order {
            let Some(slot) = slots.get_mut(idx) else {
                continue;
            };
            if slot.result.is_some() && !matches!(slot.state, SlotState::Closed) {
                // A side failed during stepping this tick.
                slot.state = SlotState::Closed;
            } else if slot.pair.initiator.done() && slot.pair.responder.done() {
                slot.ticks_active += 1;
                let t = slot.ticks_active;
                slot.close(Ok(t));
            } else {
                slot.ticks_active += 1;
                continue;
            }
            if tracer.is_enabled() {
                let ok = matches!(slot.result, Some(Ok(_)));
                tracer.instant(
                    tick,
                    "gateway.session_closed",
                    vec![
                        ("protocol", Value::from(protocol_label(slot.pair.protocol))),
                        ("session", Value::from(slot.pair.id)),
                        ("ok", Value::from(ok)),
                        ("ticks", Value::from(slot.ticks_active)),
                        ("retransmits", Value::from(slot.retransmits())),
                    ],
                );
            }
            open = open.saturating_sub(1);
        }
        active.retain(|&idx| {
            slots
                .get(idx)
                .is_some_and(|s| !matches!(s.state, SlotState::Closed))
        });

        ticks += 1;
    }

    // Budget exhausted: everything still open is unfinished.
    let mut unfinished = 0usize;
    for slot in &mut slots {
        if slot.result.is_none() {
            unfinished += 1;
            slot.close(Err(ProtocolError::Timeout { retries: 0 }));
        }
    }

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut retransmits = 0u64;
    let outcomes: Vec<GatewayOutcome> = slots
        .into_iter()
        .map(|slot| {
            let result = slot.result.unwrap_or(Err(ProtocolError::Timeout { retries: 0 }));
            match &result {
                Ok(t) => {
                    completed += 1;
                    registry.observe("gateway.session_ticks", f64::from(*t));
                }
                Err(_) => failed += 1,
            }
            let r = slot.pair.initiator.retransmits() + slot.pair.responder.retransmits();
            retransmits += u64::from(r);
            GatewayOutcome {
                protocol: slot.pair.protocol,
                id: slot.pair.id,
                result,
                retransmits: r,
                admitted_at: slot.admitted_at,
            }
        })
        .collect();
    // `failed` counted every Err outcome; unfinished sessions are their
    // own column, not protocol failures.
    failed = failed.saturating_sub(unfinished);

    registry.counter("gateway.completed", completed as u64);
    registry.counter("gateway.failed", failed as u64);
    registry.counter("gateway.unfinished", unfinished as u64);
    registry.counter("gateway.retransmits", retransmits);
    registry.counter("gateway.late_frames", late_frames);
    registry.counter("gateway.unroutable_frames", unroutable_frames);
    registry.counter("gateway.undecodable_frames", undecodable_frames);

    let report = GatewayReport {
        sessions: outcomes.len(),
        completed,
        failed,
        unfinished,
        ticks,
        retransmits,
        late_frames,
        unroutable_frames,
        undecodable_frames,
        peak_active,
        peak_staged,
        outcomes,
    };
    if tracer.is_enabled() {
        tracer.instant(
            ticks.saturating_sub(1),
            "gateway.result",
            vec![
                ("sessions", Value::from(report.sessions)),
                ("completed", Value::from(report.completed)),
                ("failed", Value::from(report.failed)),
                ("unfinished", Value::from(report.unfinished)),
                ("ticks", Value::from(report.ticks)),
                ("retransmits", Value::from(report.retransmits)),
                ("late_frames", Value::from(report.late_frames)),
                ("peak_active", Value::from(report.peak_active)),
            ],
        );
    }
    report
}

/// Steps one side of one active slot with at most one inbox frame,
/// mirroring the per-tick cadence of [`crate::wire::drive_traced`]: a
/// finished side with an empty inbox is left alone (its clock stops),
/// a finished side *with* a frame still steps so it can re-serve
/// duplicates, and a step failure closes the whole slot.
fn step_side<T: Transport>(
    transport: &mut T,
    slots: &mut [Slot<'_>],
    idx: usize,
    side: Side,
    _tick: u64,
) {
    let Some(slot) = slots.get_mut(idx) else {
        return;
    };
    if slot.result.is_some() {
        return;
    }
    let frame = match side {
        Side::A => slot.inbox_a.pop_front(),
        Side::B => slot.inbox_b.pop_front(),
    };
    let session: &mut dyn Session = match side {
        Side::A => slot.pair.initiator.as_mut(),
        Side::B => slot.pair.responder.as_mut(),
    };
    if frame.is_none() && session.done() {
        return;
    }
    match session.step(frame.as_deref()) {
        Ok(SessionAction::Send(f)) => transport.send(side, f),
        Ok(SessionAction::Wait | SessionAction::Done) => {}
        Err(e) => slot.result = Some(Err(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::{
        AttestationVerifier, AttestingDevice, TimingModel, WireAttestationVerifier,
        WireAttestingDevice,
    };
    use crate::eke::{EkeParty, WireEkeInitiator, WireEkeResponder};
    use crate::mutual_auth::{Device, Verifier, WireDevice, WireVerifier};
    use crate::secure_nn::{NetworkOwner, SecureAccelerator, WireNnClient, WireNnServer};
    use crate::transport::{Channel, FaultRates, FaultyChannel};
    use crate::wire::SessionConfig;
    use neuropuls_accel::config::NetworkConfig;
    use neuropuls_accel::engine::PhotonicEngine;
    use std::collections::BTreeMap;
    use neuropuls_photonic::process::DieId;
    use neuropuls_puf::bits::Response;
    use neuropuls_puf::photonic::PhotonicPuf;

    /// A bundle of endpoint state backing one four-protocol session mix.
    struct Endpoints {
        auth: Vec<(Device<PhotonicPuf>, Verifier)>,
        attest: Vec<(AttestingDevice, AttestationVerifier)>,
        eke: Vec<(EkeParty, EkeParty)>,
        nn: Vec<(SecureAccelerator, Vec<u8>, Vec<u8>)>,
    }

    fn endpoints(n: usize, seed: u8) -> Endpoints {
        let auth = (0..n)
            .map(|i| {
                let puf = PhotonicPuf::reference(DieId(40 + i as u64), 1);
                let (device, provisioned) =
                    Device::provision(puf, vec![seed; 512], format!("prov-{seed}-{i}").as_bytes())
                        .expect("provisions");
                let verifier = Verifier::new(provisioned, format!("verif-{seed}-{i}").as_bytes());
                (device, verifier)
            })
            .collect();
        let attest = (0..n)
            .map(|i| {
                let memory: Vec<u8> = (0..1024).map(|j| (j * 13 + i * 7) as u8).collect();
                let timing = TimingModel::photonic();
                let device = AttestingDevice::new(
                    PhotonicPuf::reference(DieId(60 + i as u64), 1),
                    memory.clone(),
                    timing,
                );
                let verifier = AttestationVerifier::new(
                    PhotonicPuf::reference(DieId(60 + i as u64), 2),
                    memory,
                    timing,
                );
                (device, verifier)
            })
            .collect();
        let eke = (0..n)
            .map(|i| {
                let crp = Response::from_u64(0x1234_5678 ^ (i as u64), 63);
                let initiator = EkeParty::new(&crp, format!("eke-i-{seed}-{i}").as_bytes());
                let responder = EkeParty::new(&crp, format!("eke-r-{seed}-{i}").as_bytes());
                (initiator, responder)
            })
            .collect();
        let nn = (0..n)
            .map(|i| {
                let key = [seed ^ i as u8; 32];
                let mut owner = NetworkOwner::new(key, format!("own-{seed}-{i}").as_bytes());
                let accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
                let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
                let network = owner.cipher_network(&config);
                let input = owner.cipher_input(&[1.0, 0.5, -0.25, 0.0]);
                (accel, network, input)
            })
            .collect();
        Endpoints {
            auth,
            attest,
            eke,
            nn,
        }
    }

    /// Builds one SessionPair per endpoint, all four protocols, with
    /// distinct session ids.
    fn pairs<'x>(ep: &'x mut Endpoints, cfg: SessionConfig) -> Vec<SessionPair<'x>> {
        let mut out: Vec<SessionPair<'x>> = Vec::new();
        let mut sid = 1u64;
        for (device, verifier) in &mut ep.auth {
            out.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: sid,
                initiator: Box::new(WireVerifier::new(verifier, sid, cfg)),
                responder: Box::new(WireDevice::new(device, cfg)),
            });
            sid += 1;
        }
        for (device, verifier) in &mut ep.attest {
            out.push(SessionPair {
                protocol: ProtocolId::Attestation,
                id: sid,
                initiator: Box::new(WireAttestationVerifier::new(verifier, sid, cfg)),
                responder: Box::new(WireAttestingDevice::new(device, cfg)),
            });
            sid += 1;
        }
        for (initiator, responder) in &mut ep.eke {
            out.push(SessionPair {
                protocol: ProtocolId::Eke,
                id: sid,
                initiator: Box::new(WireEkeInitiator::new(initiator, sid, cfg)),
                responder: Box::new(WireEkeResponder::new(responder, cfg)),
            });
            sid += 1;
        }
        for (accel, network, input) in &mut ep.nn {
            out.push(SessionPair {
                protocol: ProtocolId::SecureNn,
                id: sid,
                initiator: Box::new(WireNnClient::new(sid, network.clone(), input.clone(), cfg)),
                responder: Box::new(WireNnServer::new(accel, cfg)),
            });
            sid += 1;
        }
        out
    }

    /// Batched secure-NN sessions multiplexed by the gateway against
    /// ONE shared engine: a single owner loads the network out of
    /// band, every session streams its own chunked batch, and the
    /// per-session inference accounting folds into the registry.
    #[test]
    fn batched_nn_sessions_share_one_engine_through_the_gateway() {
        use crate::secure_nn::{share_accelerator, WireNnBatchClient, WireNnBatchServer};
        let key = [0x4E; 32];
        let mut owner = NetworkOwner::new(key, b"gw-batch-owner");
        let mut accel = SecureAccelerator::new(PhotonicEngine::reference(1), key);
        let config = NetworkConfig::mlp(&[4, 4], |_, o, j| if o == j { 1.0 } else { 0.0 });
        accel.load_network(&owner.cipher_network(&config)).unwrap();
        let shared = share_accelerator(accel);
        let registry = Registry::new();
        let cfg = SessionConfig::default();
        let k = 4usize;
        let per_session = 150usize; // ~64 B sealed each: > one chunk budget
        let blobs: Vec<Vec<Vec<u8>>> = (1..=k as u64)
            .map(|sid| {
                let inputs: Vec<Vec<f64>> = (0..per_session)
                    .map(|i| vec![(i as f64 + sid as f64) * 0.01; 4])
                    .collect();
                owner.cipher_inputs(&inputs)
            })
            .collect();
        let mut sessions: Vec<SessionPair<'_>> = Vec::new();
        for (i, input_blobs) in blobs.iter().enumerate() {
            let sid = i as u64 + 1;
            sessions.push(SessionPair {
                protocol: ProtocolId::SecureNn,
                id: sid,
                initiator: Box::new(WireNnBatchClient::execute_only(sid, input_blobs, cfg)),
                responder: Box::new(
                    WireNnBatchServer::new(shared.clone(), cfg).with_metrics(&registry),
                ),
            });
        }
        let mut channel = FaultyChannel::new(FaultRates::loss(0.05), 0xBA7C_6A7E);
        let mut tracer = Tracer::disabled();
        let report = run_gateway_traced(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut tracer,
            &registry,
        );
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(registry.counter_value("secure_nn.batch.executes"), k as u64);
        assert_eq!(
            registry.counter_value("secure_nn.batch.items"),
            (k * per_session) as u64
        );
        // All batches ran on the one engine.
        assert_eq!(
            shared.borrow().stats().inferences,
            (k * per_session) as u64
        );
    }

    #[test]
    fn mixed_protocols_share_one_lossless_transport() {
        let mut ep = endpoints(3, 0x11);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = Channel::new();
        let report = run_gateway(&mut channel, sessions, GatewayConfig::default());
        assert_eq!(report.sessions, n);
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.late_frames, 0);
        assert_eq!(report.unroutable_frames, 0);
        assert_eq!(report.undecodable_frames, 0);
        assert_eq!(report.peak_active, n);
        // Every EKE pair agreed on a key through the shared wire.
        for (initiator, responder) in &ep.eke {
            assert_eq!(initiator.session(), responder.session());
        }
    }

    #[test]
    fn mixed_protocols_survive_a_shared_lossy_transport() {
        let mut ep = endpoints(4, 0x22);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = FaultyChannel::new(FaultRates::loss(0.1), 0x6A7E_1055);
        let registry = Registry::new();
        let mut tracer = Tracer::disabled();
        let report = run_gateway_traced(
            &mut channel,
            sessions,
            GatewayConfig::default(),
            &mut tracer,
            &registry,
        );
        assert_eq!(report.sessions, n);
        assert!(report.all_completed(), "{report:?}");
        assert!(report.retransmits > 0, "10% loss must force retransmits");
        assert_eq!(registry.counter_value("gateway.completed"), n as u64);
        assert_eq!(
            registry.counter_value("gateway.retransmits"),
            report.retransmits
        );
        // Whatever the fault pattern left in flight after close is
        // accounted as late, never lost.
        let drained = channel.drain_late();
        assert_eq!(channel.stats().late_drained, drained);
    }

    #[test]
    fn bounded_admission_queues_sessions_without_timing_them_out() {
        let mut ep = endpoints(6, 0x33);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let n = sessions.len();
        let mut channel = Channel::new();
        let config = GatewayConfig {
            max_active: 2,
            accept_queue: 3,
            max_ticks: 4096,
        };
        let report = run_gateway(&mut channel, sessions, config);
        assert!(report.all_completed(), "{report:?}");
        assert!(report.peak_active <= 2);
        assert!(report.peak_staged <= 3);
        assert_eq!(report.retransmits, 0, "queued sessions must not tick ARQ");
        // Admission is staggered: not everyone got in on tick 0.
        let first = report
            .outcomes
            .iter()
            .filter(|o| o.admitted_at == Some(0))
            .count();
        assert_eq!(first, 2);
        assert!(report.outcomes.iter().all(|o| o.admitted_at.is_some()));
        assert_eq!(report.sessions, n);
    }

    /// The multiplexing property the whole module rests on: over a
    /// lossless shared transport, a gateway run with K interleaved
    /// sessions produces — per session — *byte-identical* wire
    /// transcripts to K independent `drive`-based runs. The gateway
    /// reproduces the single-session tick cadence exactly; only the
    /// interleaving on the shared wire differs.
    #[test]
    fn interleaved_sessions_match_independent_transcripts() {
        let cfg = SessionConfig::default();

        // Gateway run: 12 sessions (3 of each protocol) on one wire.
        let mut ep = endpoints(3, 0x77);
        let sessions = pairs(&mut ep, cfg);
        let keys: Vec<(ProtocolId, u64)> = sessions.iter().map(|p| (p.protocol, p.id)).collect();
        let mut shared = Channel::new();
        let report = run_gateway(&mut shared, sessions, GatewayConfig::default());
        assert!(report.all_completed(), "{report:?}");

        // Split the shared transcript by envelope key, preserving order.
        type SessionTranscript = Vec<(Side, Vec<u8>)>;
        let mut per_session: BTreeMap<(ProtocolId, u64), SessionTranscript> = BTreeMap::new();
        for (side, frame) in shared.transcript() {
            let env = Envelope::from_bytes(frame).expect("lossless frames decode");
            per_session
                .entry((env.protocol, env.session))
                .or_default()
                .push((*side, frame.clone()));
        }

        // Independent runs: identical endpoint states (same seeds) and
        // identical session ids, one dedicated channel each.
        let mut ep2 = endpoints(3, 0x77);
        let singles = pairs(&mut ep2, cfg);
        for (pair, key) in singles.into_iter().zip(keys) {
            let mut solo = Channel::new();
            let mut a = pair.initiator;
            let mut b = pair.responder;
            crate::wire::drive(
                &mut solo,
                a.as_mut(),
                b.as_mut(),
                crate::wire::DEFAULT_MAX_TICKS,
            )
            .expect("independent session completes");
            let expected = solo.transcript();
            let actual = per_session.get(&key).map(Vec::as_slice).unwrap_or(&[]);
            assert_eq!(
                actual,
                expected,
                "session {}/{} transcript diverged between gateway and solo run",
                protocol_label(key.0),
                key.1
            );
        }
    }

    #[test]
    fn duplicate_session_keys_fail_fast_without_corrupting_routing() {
        let mut ep = endpoints(2, 0x44);
        let cfg = SessionConfig::default();
        let mut sessions = Vec::new();
        for (device, verifier) in &mut ep.auth {
            sessions.push(SessionPair {
                protocol: ProtocolId::MutualAuth,
                id: 7, // same key on purpose
                initiator: Box::new(WireVerifier::new(verifier, 7, cfg)),
                responder: Box::new(WireDevice::new(device, cfg)),
            });
        }
        let mut channel = Channel::new();
        let report = run_gateway(&mut channel, sessions, GatewayConfig::default());
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 1);
        assert!(report
            .outcomes
            .iter()
            .any(|o| matches!(o.result, Err(ProtocolError::OutOfOrder(_)))));
    }

    #[test]
    fn tick_budget_reports_unfinished_sessions() {
        let mut ep = endpoints(2, 0x55);
        let sessions = pairs(&mut ep, SessionConfig::default());
        let mut channel = Channel::new();
        let config = GatewayConfig {
            max_active: 1,
            accept_queue: 1,
            max_ticks: 3, // far too few for eight sessions
        };
        let report = run_gateway(&mut channel, sessions, config);
        assert_eq!(report.ticks, 3);
        assert!(report.unfinished > 0);
        assert_eq!(
            report.completed + report.failed + report.unfinished,
            report.sessions
        );
    }
}
