//! Experiment harness: one module per table/figure of the paper's
//! evaluation plan (see `DESIGN.md` and `EXPERIMENTS.md` at the
//! workspace root).
//!
//! Each experiment exposes `run(scale)` returning the formatted
//! rows/series the paper's figure or table would show; the `exp_*`
//! binaries print them, and the integration tests assert the qualitative
//! shape at [`Scale::Smoke`].

pub mod experiments;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale: used by tests and CI.
    Smoke,
    /// The full configuration reported in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Picks between the smoke and full values.
    pub fn pick<T>(self, smoke: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Full => full,
        }
    }

    /// Parses the scale from argv (binaries default to Full, `--smoke`
    /// forces the small configuration).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Full
        }
    }
}

/// One line of a rendered experiment.
#[derive(Debug, Clone)]
enum Line {
    /// Simulation output: deterministic, part of the byte-diffable
    /// experiment record.
    Stable(String),
    /// Host measurement (wall-clock costs, throughput): varies run to
    /// run, excluded from [`Rendered::stable_string`] so the parallel
    /// determinism gate can diff experiment output byte for byte.
    Volatile(String),
}

/// A rendered experiment result: a title plus pre-formatted lines.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// Experiment identifier, e.g. "E1 (Fig. 3)".
    pub title: String,
    /// Table lines.
    lines: Vec<Line>,
}

impl Rendered {
    /// Creates a result.
    pub fn new(title: impl Into<String>) -> Self {
        Rendered {
            title: title.into(),
            lines: Vec::new(),
        }
    }

    /// Appends a deterministic simulation-output line.
    pub fn push(&mut self, line: impl Into<String>) {
        self.lines.push(Line::Stable(line.into()));
    }

    /// Appends a host-measured line (wall-clock timings and rates).
    /// Shown by `Display` but excluded from [`Self::stable_string`].
    pub fn push_volatile(&mut self, line: impl Into<String>) {
        self.lines.push(Line::Volatile(line.into()));
    }

    /// The deterministic portion of the report: the title and every
    /// stable line, formatted exactly like `Display` minus the
    /// volatile lines. `exp_all` prints this on stdout so its output
    /// is byte-identical at any thread count.
    pub fn stable_string(&self) -> String {
        let mut out = format!("==== {} ====\n", self.title);
        for line in &self.lines {
            if let Line::Stable(text) = line {
                out.push_str(text);
                out.push('\n');
            }
        }
        out
    }

    /// The host-measured lines, for routing to stderr.
    pub fn volatile_lines(&self) -> Vec<&str> {
        self.lines
            .iter()
            .filter_map(|l| match l {
                Line::Volatile(text) => Some(text.as_str()),
                Line::Stable(_) => None,
            })
            .collect()
    }
}

impl std::fmt::Display for Rendered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "==== {} ====", self.title)?;
        for line in &self.lines {
            match line {
                Line::Stable(text) | Line::Volatile(text) => writeln!(f, "{text}")?,
            }
        }
        Ok(())
    }
}
